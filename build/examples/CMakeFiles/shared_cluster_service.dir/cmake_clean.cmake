file(REMOVE_RECURSE
  "CMakeFiles/shared_cluster_service.dir/shared_cluster_service.cpp.o"
  "CMakeFiles/shared_cluster_service.dir/shared_cluster_service.cpp.o.d"
  "shared_cluster_service"
  "shared_cluster_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cluster_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
