# Empty compiler generated dependencies file for shared_cluster_service.
# This may be replaced when dependencies are built.
