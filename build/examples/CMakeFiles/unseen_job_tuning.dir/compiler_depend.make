# Empty compiler generated dependencies file for unseen_job_tuning.
# This may be replaced when dependencies are built.
