file(REMOVE_RECURSE
  "CMakeFiles/unseen_job_tuning.dir/unseen_job_tuning.cpp.o"
  "CMakeFiles/unseen_job_tuning.dir/unseen_job_tuning.cpp.o.d"
  "unseen_job_tuning"
  "unseen_job_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unseen_job_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
