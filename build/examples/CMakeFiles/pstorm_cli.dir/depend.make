# Empty dependencies file for pstorm_cli.
# This may be replaced when dependencies are built.
