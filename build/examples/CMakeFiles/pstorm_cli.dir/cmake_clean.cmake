file(REMOVE_RECURSE
  "CMakeFiles/pstorm_cli.dir/pstorm_cli.cpp.o"
  "CMakeFiles/pstorm_cli.dir/pstorm_cli.cpp.o.d"
  "pstorm_cli"
  "pstorm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
