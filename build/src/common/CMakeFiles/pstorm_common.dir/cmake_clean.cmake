file(REMOVE_RECURSE
  "CMakeFiles/pstorm_common.dir/coding.cc.o"
  "CMakeFiles/pstorm_common.dir/coding.cc.o.d"
  "CMakeFiles/pstorm_common.dir/logging.cc.o"
  "CMakeFiles/pstorm_common.dir/logging.cc.o.d"
  "CMakeFiles/pstorm_common.dir/random.cc.o"
  "CMakeFiles/pstorm_common.dir/random.cc.o.d"
  "CMakeFiles/pstorm_common.dir/statistics.cc.o"
  "CMakeFiles/pstorm_common.dir/statistics.cc.o.d"
  "CMakeFiles/pstorm_common.dir/status.cc.o"
  "CMakeFiles/pstorm_common.dir/status.cc.o.d"
  "CMakeFiles/pstorm_common.dir/strings.cc.o"
  "CMakeFiles/pstorm_common.dir/strings.cc.o.d"
  "libpstorm_common.a"
  "libpstorm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
