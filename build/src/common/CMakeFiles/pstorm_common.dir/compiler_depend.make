# Empty compiler generated dependencies file for pstorm_common.
# This may be replaced when dependencies are built.
