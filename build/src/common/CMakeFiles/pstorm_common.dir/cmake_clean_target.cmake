file(REMOVE_RECURSE
  "libpstorm_common.a"
)
