file(REMOVE_RECURSE
  "CMakeFiles/pstorm_staticanalysis.dir/cfg.cc.o"
  "CMakeFiles/pstorm_staticanalysis.dir/cfg.cc.o.d"
  "CMakeFiles/pstorm_staticanalysis.dir/cfg_matcher.cc.o"
  "CMakeFiles/pstorm_staticanalysis.dir/cfg_matcher.cc.o.d"
  "CMakeFiles/pstorm_staticanalysis.dir/features.cc.o"
  "CMakeFiles/pstorm_staticanalysis.dir/features.cc.o.d"
  "CMakeFiles/pstorm_staticanalysis.dir/ir.cc.o"
  "CMakeFiles/pstorm_staticanalysis.dir/ir.cc.o.d"
  "libpstorm_staticanalysis.a"
  "libpstorm_staticanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_staticanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
