file(REMOVE_RECURSE
  "libpstorm_staticanalysis.a"
)
