
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/staticanalysis/cfg.cc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/cfg.cc.o" "gcc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/cfg.cc.o.d"
  "/root/repo/src/staticanalysis/cfg_matcher.cc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/cfg_matcher.cc.o" "gcc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/cfg_matcher.cc.o.d"
  "/root/repo/src/staticanalysis/features.cc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/features.cc.o" "gcc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/features.cc.o.d"
  "/root/repo/src/staticanalysis/ir.cc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/ir.cc.o" "gcc" "src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/ir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
