# Empty compiler generated dependencies file for pstorm_staticanalysis.
# This may be replaced when dependencies are built.
