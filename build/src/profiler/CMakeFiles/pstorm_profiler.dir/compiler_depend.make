# Empty compiler generated dependencies file for pstorm_profiler.
# This may be replaced when dependencies are built.
