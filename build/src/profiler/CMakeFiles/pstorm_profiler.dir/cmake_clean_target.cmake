file(REMOVE_RECURSE
  "libpstorm_profiler.a"
)
