file(REMOVE_RECURSE
  "CMakeFiles/pstorm_profiler.dir/profile.cc.o"
  "CMakeFiles/pstorm_profiler.dir/profile.cc.o.d"
  "CMakeFiles/pstorm_profiler.dir/profiler.cc.o"
  "CMakeFiles/pstorm_profiler.dir/profiler.cc.o.d"
  "libpstorm_profiler.a"
  "libpstorm_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
