# Empty dependencies file for pstorm_optimizer.
# This may be replaced when dependencies are built.
