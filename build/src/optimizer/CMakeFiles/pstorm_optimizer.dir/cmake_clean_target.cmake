file(REMOVE_RECURSE
  "libpstorm_optimizer.a"
)
