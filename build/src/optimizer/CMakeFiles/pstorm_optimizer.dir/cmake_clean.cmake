file(REMOVE_RECURSE
  "CMakeFiles/pstorm_optimizer.dir/cbo.cc.o"
  "CMakeFiles/pstorm_optimizer.dir/cbo.cc.o.d"
  "CMakeFiles/pstorm_optimizer.dir/rbo.cc.o"
  "CMakeFiles/pstorm_optimizer.dir/rbo.cc.o.d"
  "libpstorm_optimizer.a"
  "libpstorm_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
