# Empty compiler generated dependencies file for pstorm_storage.
# This may be replaced when dependencies are built.
