file(REMOVE_RECURSE
  "libpstorm_storage.a"
)
