
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/pstorm_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/bloom.cc" "src/storage/CMakeFiles/pstorm_storage.dir/bloom.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/bloom.cc.o.d"
  "/root/repo/src/storage/db.cc" "src/storage/CMakeFiles/pstorm_storage.dir/db.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/db.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/pstorm_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/storage/CMakeFiles/pstorm_storage.dir/memtable.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/memtable.cc.o.d"
  "/root/repo/src/storage/merging_iterator.cc" "src/storage/CMakeFiles/pstorm_storage.dir/merging_iterator.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/merging_iterator.cc.o.d"
  "/root/repo/src/storage/sstable.cc" "src/storage/CMakeFiles/pstorm_storage.dir/sstable.cc.o" "gcc" "src/storage/CMakeFiles/pstorm_storage.dir/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
