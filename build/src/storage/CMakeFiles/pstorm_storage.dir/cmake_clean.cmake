file(REMOVE_RECURSE
  "CMakeFiles/pstorm_storage.dir/block.cc.o"
  "CMakeFiles/pstorm_storage.dir/block.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/bloom.cc.o"
  "CMakeFiles/pstorm_storage.dir/bloom.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/db.cc.o"
  "CMakeFiles/pstorm_storage.dir/db.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/env.cc.o"
  "CMakeFiles/pstorm_storage.dir/env.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/memtable.cc.o"
  "CMakeFiles/pstorm_storage.dir/memtable.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/merging_iterator.cc.o"
  "CMakeFiles/pstorm_storage.dir/merging_iterator.cc.o.d"
  "CMakeFiles/pstorm_storage.dir/sstable.cc.o"
  "CMakeFiles/pstorm_storage.dir/sstable.cc.o.d"
  "libpstorm_storage.a"
  "libpstorm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
