file(REMOVE_RECURSE
  "libpstorm_mrsim.a"
)
