
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrsim/cluster.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/cluster.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/cluster.cc.o.d"
  "/root/repo/src/mrsim/configuration.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/configuration.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/configuration.cc.o.d"
  "/root/repo/src/mrsim/dataset.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/dataset.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/dataset.cc.o.d"
  "/root/repo/src/mrsim/jobspec.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/jobspec.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/jobspec.cc.o.d"
  "/root/repo/src/mrsim/simulator.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/simulator.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/simulator.cc.o.d"
  "/root/repo/src/mrsim/task_model.cc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/task_model.cc.o" "gcc" "src/mrsim/CMakeFiles/pstorm_mrsim.dir/task_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
