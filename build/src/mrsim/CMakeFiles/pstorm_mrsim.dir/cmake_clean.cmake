file(REMOVE_RECURSE
  "CMakeFiles/pstorm_mrsim.dir/cluster.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/cluster.cc.o.d"
  "CMakeFiles/pstorm_mrsim.dir/configuration.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/configuration.cc.o.d"
  "CMakeFiles/pstorm_mrsim.dir/dataset.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/dataset.cc.o.d"
  "CMakeFiles/pstorm_mrsim.dir/jobspec.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/jobspec.cc.o.d"
  "CMakeFiles/pstorm_mrsim.dir/simulator.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/simulator.cc.o.d"
  "CMakeFiles/pstorm_mrsim.dir/task_model.cc.o"
  "CMakeFiles/pstorm_mrsim.dir/task_model.cc.o.d"
  "libpstorm_mrsim.a"
  "libpstorm_mrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_mrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
