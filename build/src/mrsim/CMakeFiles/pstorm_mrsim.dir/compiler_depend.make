# Empty compiler generated dependencies file for pstorm_mrsim.
# This may be replaced when dependencies are built.
