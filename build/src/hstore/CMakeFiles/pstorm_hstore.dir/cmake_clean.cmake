file(REMOVE_RECURSE
  "CMakeFiles/pstorm_hstore.dir/filter.cc.o"
  "CMakeFiles/pstorm_hstore.dir/filter.cc.o.d"
  "CMakeFiles/pstorm_hstore.dir/table.cc.o"
  "CMakeFiles/pstorm_hstore.dir/table.cc.o.d"
  "libpstorm_hstore.a"
  "libpstorm_hstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_hstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
