
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hstore/filter.cc" "src/hstore/CMakeFiles/pstorm_hstore.dir/filter.cc.o" "gcc" "src/hstore/CMakeFiles/pstorm_hstore.dir/filter.cc.o.d"
  "/root/repo/src/hstore/table.cc" "src/hstore/CMakeFiles/pstorm_hstore.dir/table.cc.o" "gcc" "src/hstore/CMakeFiles/pstorm_hstore.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/pstorm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
