# Empty dependencies file for pstorm_hstore.
# This may be replaced when dependencies are built.
