file(REMOVE_RECURSE
  "libpstorm_hstore.a"
)
