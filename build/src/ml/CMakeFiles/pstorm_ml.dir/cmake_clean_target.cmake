file(REMOVE_RECURSE
  "libpstorm_ml.a"
)
