file(REMOVE_RECURSE
  "CMakeFiles/pstorm_ml.dir/feature_selection.cc.o"
  "CMakeFiles/pstorm_ml.dir/feature_selection.cc.o.d"
  "CMakeFiles/pstorm_ml.dir/gbrt.cc.o"
  "CMakeFiles/pstorm_ml.dir/gbrt.cc.o.d"
  "CMakeFiles/pstorm_ml.dir/regression_tree.cc.o"
  "CMakeFiles/pstorm_ml.dir/regression_tree.cc.o.d"
  "libpstorm_ml.a"
  "libpstorm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
