# Empty compiler generated dependencies file for pstorm_ml.
# This may be replaced when dependencies are built.
