# Empty compiler generated dependencies file for pstorm_core.
# This may be replaced when dependencies are built.
