file(REMOVE_RECURSE
  "libpstorm_core.a"
)
