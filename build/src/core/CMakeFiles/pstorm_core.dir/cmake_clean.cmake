file(REMOVE_RECURSE
  "CMakeFiles/pstorm_core.dir/evaluator.cc.o"
  "CMakeFiles/pstorm_core.dir/evaluator.cc.o.d"
  "CMakeFiles/pstorm_core.dir/explain.cc.o"
  "CMakeFiles/pstorm_core.dir/explain.cc.o.d"
  "CMakeFiles/pstorm_core.dir/feature_vector.cc.o"
  "CMakeFiles/pstorm_core.dir/feature_vector.cc.o.d"
  "CMakeFiles/pstorm_core.dir/matcher.cc.o"
  "CMakeFiles/pstorm_core.dir/matcher.cc.o.d"
  "CMakeFiles/pstorm_core.dir/profile_store.cc.o"
  "CMakeFiles/pstorm_core.dir/profile_store.cc.o.d"
  "CMakeFiles/pstorm_core.dir/pstorm.cc.o"
  "CMakeFiles/pstorm_core.dir/pstorm.cc.o.d"
  "libpstorm_core.a"
  "libpstorm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
