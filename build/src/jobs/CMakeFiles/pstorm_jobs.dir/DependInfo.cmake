
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jobs/benchmark_jobs.cc" "src/jobs/CMakeFiles/pstorm_jobs.dir/benchmark_jobs.cc.o" "gcc" "src/jobs/CMakeFiles/pstorm_jobs.dir/benchmark_jobs.cc.o.d"
  "/root/repo/src/jobs/datasets.cc" "src/jobs/CMakeFiles/pstorm_jobs.dir/datasets.cc.o" "gcc" "src/jobs/CMakeFiles/pstorm_jobs.dir/datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mrsim/CMakeFiles/pstorm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
