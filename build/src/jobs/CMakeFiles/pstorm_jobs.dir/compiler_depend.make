# Empty compiler generated dependencies file for pstorm_jobs.
# This may be replaced when dependencies are built.
