file(REMOVE_RECURSE
  "CMakeFiles/pstorm_jobs.dir/benchmark_jobs.cc.o"
  "CMakeFiles/pstorm_jobs.dir/benchmark_jobs.cc.o.d"
  "CMakeFiles/pstorm_jobs.dir/datasets.cc.o"
  "CMakeFiles/pstorm_jobs.dir/datasets.cc.o.d"
  "libpstorm_jobs.a"
  "libpstorm_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
