file(REMOVE_RECURSE
  "libpstorm_jobs.a"
)
