file(REMOVE_RECURSE
  "CMakeFiles/pstorm_whatif.dir/cluster_transfer.cc.o"
  "CMakeFiles/pstorm_whatif.dir/cluster_transfer.cc.o.d"
  "CMakeFiles/pstorm_whatif.dir/whatif_engine.cc.o"
  "CMakeFiles/pstorm_whatif.dir/whatif_engine.cc.o.d"
  "libpstorm_whatif.a"
  "libpstorm_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
