# Empty compiler generated dependencies file for pstorm_whatif.
# This may be replaced when dependencies are built.
