
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/whatif/cluster_transfer.cc" "src/whatif/CMakeFiles/pstorm_whatif.dir/cluster_transfer.cc.o" "gcc" "src/whatif/CMakeFiles/pstorm_whatif.dir/cluster_transfer.cc.o.d"
  "/root/repo/src/whatif/whatif_engine.cc" "src/whatif/CMakeFiles/pstorm_whatif.dir/whatif_engine.cc.o" "gcc" "src/whatif/CMakeFiles/pstorm_whatif.dir/whatif_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiler/CMakeFiles/pstorm_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mrsim/CMakeFiles/pstorm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
