file(REMOVE_RECURSE
  "libpstorm_whatif.a"
)
