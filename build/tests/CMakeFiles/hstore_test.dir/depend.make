# Empty dependencies file for hstore_test.
# This may be replaced when dependencies are built.
