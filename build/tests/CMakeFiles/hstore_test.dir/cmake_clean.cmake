file(REMOVE_RECURSE
  "CMakeFiles/hstore_test.dir/hstore/filter_test.cc.o"
  "CMakeFiles/hstore_test.dir/hstore/filter_test.cc.o.d"
  "CMakeFiles/hstore_test.dir/hstore/table_test.cc.o"
  "CMakeFiles/hstore_test.dir/hstore/table_test.cc.o.d"
  "hstore_test"
  "hstore_test.pdb"
  "hstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
