file(REMOVE_RECURSE
  "CMakeFiles/mrsim_test.dir/mrsim/simulator_property_test.cc.o"
  "CMakeFiles/mrsim_test.dir/mrsim/simulator_property_test.cc.o.d"
  "CMakeFiles/mrsim_test.dir/mrsim/simulator_test.cc.o"
  "CMakeFiles/mrsim_test.dir/mrsim/simulator_test.cc.o.d"
  "CMakeFiles/mrsim_test.dir/mrsim/task_model_test.cc.o"
  "CMakeFiles/mrsim_test.dir/mrsim/task_model_test.cc.o.d"
  "mrsim_test"
  "mrsim_test.pdb"
  "mrsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
