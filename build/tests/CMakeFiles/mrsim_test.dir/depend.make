# Empty dependencies file for mrsim_test.
# This may be replaced when dependencies are built.
