
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer/cbo_property_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cbo_property_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/cbo_property_test.cc.o.d"
  "/root/repo/tests/optimizer/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/pstorm_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/pstorm_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/whatif/CMakeFiles/pstorm_whatif.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/pstorm_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mrsim/CMakeFiles/pstorm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
