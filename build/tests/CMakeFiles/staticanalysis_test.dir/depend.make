# Empty dependencies file for staticanalysis_test.
# This may be replaced when dependencies are built.
