file(REMOVE_RECURSE
  "CMakeFiles/staticanalysis_test.dir/staticanalysis/cfg_test.cc.o"
  "CMakeFiles/staticanalysis_test.dir/staticanalysis/cfg_test.cc.o.d"
  "CMakeFiles/staticanalysis_test.dir/staticanalysis/features_test.cc.o"
  "CMakeFiles/staticanalysis_test.dir/staticanalysis/features_test.cc.o.d"
  "staticanalysis_test"
  "staticanalysis_test.pdb"
  "staticanalysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staticanalysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
