# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/jobs_test[1]_include.cmake")
include("/root/repo/build/tests/staticanalysis_test[1]_include.cmake")
include("/root/repo/build/tests/mrsim_test[1]_include.cmake")
include("/root/repo/build/tests/hstore_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
