# Empty compiler generated dependencies file for bench_fig4_3_map_phase_times.
# This may be replaced when dependencies are built.
