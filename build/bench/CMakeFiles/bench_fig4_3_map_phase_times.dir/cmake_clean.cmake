file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_3_map_phase_times.dir/bench_fig4_3_map_phase_times.cc.o"
  "CMakeFiles/bench_fig4_3_map_phase_times.dir/bench_fig4_3_map_phase_times.cc.o.d"
  "bench_fig4_3_map_phase_times"
  "bench_fig4_3_map_phase_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_3_map_phase_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
