file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_phase_similarity.dir/bench_fig4_5_phase_similarity.cc.o"
  "CMakeFiles/bench_fig4_5_phase_similarity.dir/bench_fig4_5_phase_similarity.cc.o.d"
  "bench_fig4_5_phase_similarity"
  "bench_fig4_5_phase_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_phase_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
