# Empty dependencies file for bench_fig4_5_phase_similarity.
# This may be replaced when dependencies are built.
