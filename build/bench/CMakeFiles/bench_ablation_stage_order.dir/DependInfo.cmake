
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_stage_order.cc" "bench/CMakeFiles/bench_ablation_stage_order.dir/bench_ablation_stage_order.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_stage_order.dir/bench_ablation_stage_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pstorm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pstorm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hstore/CMakeFiles/pstorm_hstore.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pstorm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/pstorm_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/whatif/CMakeFiles/pstorm_whatif.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/pstorm_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pstorm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/pstorm_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/mrsim/CMakeFiles/pstorm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
