# Empty compiler generated dependencies file for bench_fig4_1_sampling_overhead.
# This may be replaced when dependencies are built.
