
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_2_cfgs.cc" "bench/CMakeFiles/bench_fig4_2_cfgs.dir/bench_fig4_2_cfgs.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_2_cfgs.dir/bench_fig4_2_cfgs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pstorm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/pstorm_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/mrsim/CMakeFiles/pstorm_mrsim.dir/DependInfo.cmake"
  "/root/repo/build/src/staticanalysis/CMakeFiles/pstorm_staticanalysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstorm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
