# Empty dependencies file for bench_fig4_2_cfgs.
# This may be replaced when dependencies are built.
