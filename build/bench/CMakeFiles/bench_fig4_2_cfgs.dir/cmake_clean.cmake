file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_2_cfgs.dir/bench_fig4_2_cfgs.cc.o"
  "CMakeFiles/bench_fig4_2_cfgs.dir/bench_fig4_2_cfgs.cc.o.d"
  "bench_fig4_2_cfgs"
  "bench_fig4_2_cfgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_2_cfgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
