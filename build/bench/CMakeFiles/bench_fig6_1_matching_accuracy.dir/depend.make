# Empty dependencies file for bench_fig6_1_matching_accuracy.
# This may be replaced when dependencies are built.
