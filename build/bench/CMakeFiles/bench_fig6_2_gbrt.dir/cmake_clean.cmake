file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_2_gbrt.dir/bench_fig6_2_gbrt.cc.o"
  "CMakeFiles/bench_fig6_2_gbrt.dir/bench_fig6_2_gbrt.cc.o.d"
  "bench_fig6_2_gbrt"
  "bench_fig6_2_gbrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_2_gbrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
