# Empty dependencies file for bench_fig6_2_gbrt.
# This may be replaced when dependencies are built.
