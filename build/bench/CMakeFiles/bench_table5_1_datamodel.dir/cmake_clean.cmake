file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_1_datamodel.dir/bench_table5_1_datamodel.cc.o"
  "CMakeFiles/bench_table5_1_datamodel.dir/bench_table5_1_datamodel.cc.o.d"
  "bench_table5_1_datamodel"
  "bench_table5_1_datamodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_1_datamodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
