file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_2_default_runtimes.dir/bench_table6_2_default_runtimes.cc.o"
  "CMakeFiles/bench_table6_2_default_runtimes.dir/bench_table6_2_default_runtimes.cc.o.d"
  "bench_table6_2_default_runtimes"
  "bench_table6_2_default_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_2_default_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
