# Empty compiler generated dependencies file for bench_table6_2_default_runtimes.
# This may be replaced when dependencies are built.
