# Empty compiler generated dependencies file for pstorm_benchlib.
# This may be replaced when dependencies are built.
