file(REMOVE_RECURSE
  "libpstorm_benchlib.a"
)
