file(REMOVE_RECURSE
  "CMakeFiles/pstorm_benchlib.dir/report.cc.o"
  "CMakeFiles/pstorm_benchlib.dir/report.cc.o.d"
  "libpstorm_benchlib.a"
  "libpstorm_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstorm_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
