# Empty dependencies file for bench_fig6_3_speedups.
# This may be replaced when dependencies are built.
