# Empty compiler generated dependencies file for bench_fig4_6_shuffle_times.
# This may be replaced when dependencies are built.
