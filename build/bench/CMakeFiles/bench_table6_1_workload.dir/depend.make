# Empty dependencies file for bench_table6_1_workload.
# This may be replaced when dependencies are built.
