#ifndef PSTORM_TOOLS_SYNTHETIC_CORPUS_H_
#define PSTORM_TOOLS_SYNTHETIC_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/profile_store.h"
#include "profiler/profile.h"
#include "staticanalysis/features.h"

namespace pstorm::tools {

/// Bump when the generator's output changes for a fixed (seed, index):
/// the scale-tier CI job keys its corpus cache on this value, so a stale
/// cache can never masquerade as the current generator's output.
inline constexpr int kSyntheticCorpusVersion = 1;

/// Knobs of the deterministic profile-corpus generator. Every profile is
/// a pure function of (options, index) — no global state, no clock — so
/// two processes with equal options agree bit-for-bit on profile i
/// without materializing profiles 0..i-1.
struct SyntheticCorpusOptions {
  uint64_t seed = 42;
  /// Corpus size. Scale tests run 10^4..10^7.
  size_t num_profiles = 10000;
  /// Distinct job families (mapper/reducer code shapes). Profiles of one
  /// archetype share static features and CFGs, so the funnel's static
  /// stages stay discriminative at any corpus size.
  int num_archetypes = 12;
  /// Dataset variants per archetype; each gets its own input-size decade
  /// and dataflow skew (cluster structure in the dynamic features).
  int num_datasets = 8;
  /// Relative sigma of the per-profile log-normal jitter applied to the
  /// dataflow statistics and cost factors (intra-cluster spread).
  double jitter = 0.08;
};

/// One generated job: exactly what ProfileStore::PutProfile consumes.
struct SyntheticProfile {
  std::string job_key;
  profiler::ExecutionProfile profile;
  staticanalysis::StaticFeatures statics;
};

/// Deterministic synthetic corpus of MR job profiles with controlled
/// cluster/job diversity, for scale benches and index-vs-exhaustive
/// equivalence tests (DESIGN.md §13).
class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(SyntheticCorpusOptions options = {});

  size_t size() const { return options_.num_profiles; }
  const SyntheticCorpusOptions& options() const { return options_; }

  /// Profile `index` (0-based, < size()). Deterministic random access.
  SyntheticProfile Make(size_t index) const;

  /// A probe near (same archetype and dataset as) profile `index`, with
  /// fresh jitter — what a re-submission of that job over a slightly
  /// different day's data looks like. `salt` decorrelates repeated probes.
  SyntheticProfile MakeProbe(size_t index, uint64_t salt = 1) const;

  /// Bulk-loads profiles [0, limit) — or the whole corpus when limit is
  /// 0 — into `store` with eager flushing off, then flushes once.
  Status LoadInto(core::ProfileStore* store, size_t limit = 0) const;

 private:
  SyntheticProfile MakeInternal(size_t index, uint64_t salt) const;

  SyntheticCorpusOptions options_;
  /// Statics are constant per archetype; extracted once at construction
  /// (CFG building per profile would dominate corpus generation).
  std::vector<staticanalysis::StaticFeatures> archetype_statics_;
};

}  // namespace pstorm::tools

#endif  // PSTORM_TOOLS_SYNTHETIC_CORPUS_H_
