#include "tools/synthetic_corpus.h"

#include <cmath>
#include <utility>

#include "common/random.h"
#include "staticanalysis/ir.h"

namespace pstorm::tools {
namespace {

using staticanalysis::Emit;
using staticanalysis::If;
using staticanalysis::Loop;
using staticanalysis::Op;
using staticanalysis::Seq;
using staticanalysis::StmtPtr;

/// The job family's "bytecode": control structure, type names, combiner
/// presence and helper calls all vary with the archetype id, so distinct
/// archetypes have distinct CFGs and categorical features while members
/// of one archetype match each other exactly in the static stages.
staticanalysis::MrProgram ArchetypeProgram(int archetype) {
  staticanalysis::MrProgram p;
  const std::string id = "Synth" + std::to_string(archetype);
  p.job_class_name = id + "Job";
  p.mapper_class = id + "Mapper";
  p.reducer_class = id + "Reducer";
  p.map_out_key = (archetype % 2 == 0) ? "Text" : "LongWritable";
  p.map_out_value = (archetype % 3 == 0) ? "DoubleWritable" : "IntWritable";
  p.reduce_out_key = p.map_out_key;
  p.reduce_out_value = (archetype % 4 == 0) ? "Text" : p.map_out_value;
  const bool has_combiner = archetype % 3 != 0;
  if (has_combiner) p.combiner_class = id + "Combiner";

  StmtPtr emit_one =
      Seq({staticanalysis::Call("helper" + std::to_string(archetype % 5)),
           Emit()});
  StmtPtr inner = (archetype % 2 == 0)
                      ? If("token.isValid", emit_one)
                      : Seq({Op("token = normalize(token)"), emit_one});
  StmtPtr loop_body = inner;
  for (int depth = 0; depth < 1 + (archetype / 4) % 2; ++depth) {
    loop_body = Loop("it" + std::to_string(depth) + ".hasNext", loop_body);
  }
  p.map_function = {p.mapper_class + ".map",
                    Seq({Op("tokens = parse(line)"), loop_body})};

  StmtPtr reduce_body =
      (archetype % 2 == 0)
          ? Seq({Op("sum = 0"), Loop("values.hasNext", Op("sum += value")),
                 Emit()})
          : Loop("values.hasNext", Seq({Op("acc.update(value)"), Emit()}));
  p.reduce_function = {p.reducer_class + ".reduce", reduce_body};
  return p;
}

/// Stream ids for Rng::Fork, disjoint across uses.
constexpr uint64_t kClusterStream = uint64_t{1} << 40;
constexpr uint64_t kProfileStream = uint64_t{2} << 40;

}  // namespace

SyntheticCorpus::SyntheticCorpus(SyntheticCorpusOptions options)
    : options_(options) {
  if (options_.num_archetypes < 1) options_.num_archetypes = 1;
  if (options_.num_datasets < 1) options_.num_datasets = 1;
  archetype_statics_.reserve(options_.num_archetypes);
  for (int a = 0; a < options_.num_archetypes; ++a) {
    archetype_statics_.push_back(
        staticanalysis::ExtractStaticFeatures(ArchetypeProgram(a)));
  }
}

SyntheticProfile SyntheticCorpus::Make(size_t index) const {
  return MakeInternal(index, 0);
}

SyntheticProfile SyntheticCorpus::MakeProbe(size_t index, uint64_t salt) const {
  return MakeInternal(index, salt == 0 ? 1 : salt);
}

SyntheticProfile SyntheticCorpus::MakeInternal(size_t index,
                                               uint64_t salt) const {
  const int archetype = static_cast<int>(index % options_.num_archetypes);
  const int dataset = static_cast<int>(
      (index / options_.num_archetypes) % options_.num_datasets);

  // Cluster center: a pure function of (seed, archetype, dataset).
  Rng root(options_.seed);
  Rng cluster = root.Fork(kClusterStream + static_cast<uint64_t>(archetype) *
                                               options_.num_datasets +
                          dataset);
  // Per-profile jitter: a pure function of (seed, index, salt), so probes
  // (salt != 0) land near — not on — the stored member.
  Rng noise = root.Fork(kProfileStream + index * 64 + salt);
  auto jitter = [&] { return noise.LogNormal(0.0, options_.jitter); };

  SyntheticProfile out;
  profiler::ExecutionProfile& prof = out.profile;
  prof.job_name = "synth-a" + std::to_string(archetype);
  prof.data_set = "ds" + std::to_string(dataset);
  out.job_key = prof.job_name + "-" + std::to_string(index) + "@" +
                prof.data_set + (salt != 0 ? "-probe" : "");

  // Input sizes span decades across datasets (10^7 .. 10^12 bytes).
  const double input_bytes =
      std::pow(10.0, 7.0 + dataset % 6 + cluster.NextDouble()) * jitter();
  const double record_bytes = cluster.Uniform(40.0, 400.0);
  prof.input_data_bytes = input_bytes;

  profiler::MapSideProfile& m = prof.map_side;
  m.num_tasks = static_cast<int>(input_bytes / (128.0 * 1024 * 1024)) + 1;
  m.input_bytes = input_bytes;
  m.input_records = input_bytes / record_bytes;
  m.size_selectivity = cluster.Uniform(0.05, 2.5) * jitter();
  m.pairs_selectivity = cluster.Uniform(0.2, 8.0) * jitter();
  const bool has_combiner = archetype % 3 != 0;
  if (has_combiner) {
    m.combine_size_selectivity = cluster.Uniform(0.05, 0.6) * jitter();
    m.combine_pairs_selectivity = cluster.Uniform(0.02, 0.5) * jitter();
  }
  m.output_bytes = m.input_bytes * m.size_selectivity;
  m.output_records = m.input_records * m.pairs_selectivity;
  m.final_output_bytes = m.output_bytes * m.combine_size_selectivity;
  m.final_output_records = m.output_records * m.combine_pairs_selectivity;
  m.read_hdfs_io_cost = cluster.Uniform(2.0, 20.0) * jitter();
  m.read_local_io_cost = cluster.Uniform(1.0, 8.0) * jitter();
  m.write_local_io_cost = cluster.Uniform(1.5, 12.0) * jitter();
  m.map_cpu_cost = cluster.Uniform(20.0, 900.0) * jitter();
  m.combine_cpu_cost = has_combiner ? cluster.Uniform(10.0, 300.0) * jitter()
                                    : 0.0;
  m.map_cpu_cost_cv = cluster.Uniform(0.02, 0.3);
  m.read_s = m.input_bytes / m.num_tasks * m.read_hdfs_io_cost * 1e-9;
  m.map_s = m.input_records / m.num_tasks * m.map_cpu_cost * 1e-9;

  profiler::ReduceSideProfile& r = prof.reduce_side;
  r.num_tasks = (m.num_tasks + 3) / 4;
  r.input_bytes = m.final_output_bytes;
  r.input_records = m.final_output_records;
  r.size_selectivity = cluster.Uniform(0.05, 1.5) * jitter();
  r.pairs_selectivity = cluster.Uniform(0.01, 1.0) * jitter();
  r.output_bytes = r.input_bytes * r.size_selectivity;
  r.output_records = r.input_records * r.pairs_selectivity;
  r.write_hdfs_io_cost = cluster.Uniform(3.0, 25.0) * jitter();
  r.read_local_io_cost = cluster.Uniform(1.0, 8.0) * jitter();
  r.write_local_io_cost = cluster.Uniform(1.5, 12.0) * jitter();
  r.reduce_cpu_cost = cluster.Uniform(30.0, 1200.0) * jitter();
  r.shuffle_s = r.input_bytes / std::max(r.num_tasks, 1) * 4e-9;
  r.reduce_s =
      r.input_records / std::max(r.num_tasks, 1) * r.reduce_cpu_cost * 1e-9;

  out.statics = archetype_statics_[archetype];
  return out;
}

Status SyntheticCorpus::LoadInto(core::ProfileStore* store,
                                 size_t limit) const {
  const size_t n = limit == 0 ? size() : std::min(limit, size());
  for (size_t i = 0; i < n; ++i) {
    SyntheticProfile p = Make(i);
    Status s = store->PutProfile(p.job_key, p.profile, p.statics);
    if (!s.ok()) return s;
  }
  return store->Flush();
}

}  // namespace pstorm::tools
