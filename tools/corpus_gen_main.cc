// Deterministic synthetic profile-corpus generator CLI: materializes a
// PStorM profile store on disk for the scale-tier tests and benches.
// The scale CI job caches the output directory keyed on --version, so
// regenerating a 10^5-profile store happens once per generator change.
//
// Usage:
//   pstorm_corpus_gen --version
//   pstorm_corpus_gen --scale 100000 [--seed 42] --out /path/to/store

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/profile_store.h"
#include "storage/env.h"
#include "tools/synthetic_corpus.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pstorm_corpus_gen --version\n"
               "       pstorm_corpus_gen --scale N [--seed S] --out DIR\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 0;
  uint64_t seed = 42;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%d\n", pstorm::tools::kSyntheticCorpusVersion);
      return 0;
    }
    if (arg == "--scale" && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (scale == 0 || out.empty()) return Usage();

  pstorm::tools::SyntheticCorpusOptions corpus_options;
  corpus_options.seed = seed;
  corpus_options.num_profiles = scale;
  pstorm::tools::SyntheticCorpus corpus(corpus_options);

  pstorm::storage::PosixEnv env;
  pstorm::core::ProfileStoreOptions store_options;
  store_options.eager_flush = false;
  auto store = pstorm::core::ProfileStore::Open(&env, out, store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "open %s: %s\n", out.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  pstorm::Status s = corpus.LoadInto(store->get(), 0);
  if (!s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu profiles (corpus version %d, seed %llu) to %s\n",
              (*store)->num_profiles(), pstorm::tools::kSyntheticCorpusVersion,
              static_cast<unsigned long long>(seed), out.c_str());
  return 0;
}
