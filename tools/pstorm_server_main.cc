// pstorm_server — the networked PStorM tuning service: a binary-framed RPC
// server routing tenants across N sharded PStorM instances.
//
//   ./build/tools/pstorm_server --port 7070 --shards 4 --workers 4
//   ./build/tools/pstorm_server --store /var/lib/pstorm   # persistent
//
// The process serves until SIGINT/SIGTERM, then drains and exits 0. With
// --store the profile shards live on disk under <store>/shard-<i> and
// survive restarts; without it everything is in memory.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "mrsim/cluster.h"
#include "mrsim/simulator.h"
#include "rpc/server.h"
#include "rpc/shard_router.h"
#include "storage/env.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }

struct Flags {
  std::string bind = "127.0.0.1";
  int port = 7070;
  int shards = 1;
  int workers = 4;
  int tenant_quota = 0;
  int max_inflight = 64;
  std::string store;  // Empty = in-memory.
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--bind ADDR] [--port N] [--shards N] [--workers N]\n"
      "          [--tenant-quota N] [--max-inflight N] [--store DIR]\n",
      argv0);
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v;
    if (arg == "--bind" && (v = next())) {
      flags->bind = v;
    } else if (arg == "--port" && (v = next())) {
      flags->port = std::atoi(v);
    } else if (arg == "--shards" && (v = next())) {
      flags->shards = std::atoi(v);
    } else if (arg == "--workers" && (v = next())) {
      flags->workers = std::atoi(v);
    } else if (arg == "--tenant-quota" && (v = next())) {
      flags->tenant_quota = std::atoi(v);
    } else if (arg == "--max-inflight" && (v = next())) {
      flags->max_inflight = std::atoi(v);
    } else if (arg == "--store" && (v = next())) {
      flags->store = v;
    } else {
      return false;
    }
  }
  return flags->port >= 0 && flags->port <= 65535 && flags->shards >= 1 &&
         flags->workers >= 1 && flags->max_inflight >= 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage(argv[0]);

  const pstorm::mrsim::Simulator simulator(pstorm::mrsim::ThesisCluster());
  std::unique_ptr<pstorm::storage::Env> env;
  std::string base_path;
  if (flags.store.empty()) {
    env = std::make_unique<pstorm::storage::InMemoryEnv>();
    base_path = "/pstorm";
  } else {
    env = std::make_unique<pstorm::storage::PosixEnv>();
    base_path = flags.store;
    if (auto s = env->CreateDir(base_path); !s.ok()) {
      std::fprintf(stderr, "create %s: %s\n", base_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }

  pstorm::rpc::ShardRouterOptions router_options;
  router_options.num_shards = static_cast<uint32_t>(flags.shards);
  router_options.tenant_inflight_limit =
      static_cast<uint32_t>(flags.tenant_quota);
  auto router = pstorm::rpc::ShardRouter::Create(&simulator, env.get(),
                                                 base_path, router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "router: %s\n", router.status().ToString().c_str());
    return 1;
  }

  pstorm::rpc::ServerOptions server_options;
  server_options.bind_address = flags.bind;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.num_workers = static_cast<size_t>(flags.workers);
  server_options.max_inflight_requests =
      static_cast<size_t>(flags.max_inflight);
  auto server = pstorm::rpc::Server::Start(router->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("pstorm_server listening on %s:%u (%d shard%s, %s store)\n",
              flags.bind.c_str(), (*server)->port(), flags.shards,
              flags.shards == 1 ? "" : "s",
              flags.store.empty() ? "in-memory" : flags.store.c_str());
  std::fflush(stdout);

  sigset_t mask;
  sigemptyset(&mask);
  while (g_shutdown == 0) sigsuspend(&mask);

  std::printf("pstorm_server: draining (%llu requests served, "
              "%llu backpressure rejections)\n",
              static_cast<unsigned long long>((*server)->requests_served()),
              static_cast<unsigned long long>(
                  (*server)->backpressure_rejections()));
  (*server)->Stop();
  return 0;
}
