#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance PCT]
                              [--metric real_time|cpu_time]

Both files are google-benchmark JSON reports produced with aggregates, e.g.

    bench_micro --benchmark_repetitions=5 \
                --benchmark_report_aggregates_only=true \
                --benchmark_out=current.json --benchmark_out_format=json

Only the per-benchmark *median* aggregates are compared (means are too
noisy on shared CI runners). A benchmark regresses when its current median
is more than --tolerance percent slower than the baseline median; it is
reported (but never fails the check) when it is that much faster, which
means the committed baseline is stale and should be refreshed.

Benchmarks present on only one side are reported and skipped: a freshly
added benchmark has no baseline until someone refreshes it, and a deleted
one should be cleaned from the baseline eventually, but neither should
break an unrelated PR. The exception is --require NAME (repeatable):
benchmarks the gate must actually gate on. A required name missing from
either report fails the check, so a filter typo or a renamed benchmark
cannot silently drop coverage.

To refresh the baseline, rerun the command above on the CI runner class
and commit the output as bench/baseline.json (see README "Refreshing the
bench baseline").

Exit status: 0 when no benchmark regressed, 1 otherwise, 2 on bad input.
"""

import argparse
import json
import sys


def load_medians(path, metric):
    """Returns {benchmark name: median metric value} for one report."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    medians = {}
    for bench in report.get("benchmarks", []):
        # Aggregate rows carry e.g. "BM_Foo/8_median"; plain rows (a run
        # without --benchmark_repetitions) have no aggregate_name, and the
        # single measurement serves as its own median.
        name = bench.get("run_name", bench.get("name", ""))
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
        if not name or metric not in bench:
            continue
        medians[name] = float(bench[metric])
    if not medians:
        sys.exit(f"error: no usable benchmark entries in {path}")
    return medians


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=25.0,
        help="allowed slowdown of the median, in percent (default 25)",
    )
    parser.add_argument(
        "--metric",
        choices=("real_time", "cpu_time"),
        default="cpu_time",
        help="which per-iteration time to compare (default cpu_time: it is "
        "far less sensitive to noisy-neighbour CI runners)",
    )
    parser.add_argument(
        "--normalize-by",
        metavar="BENCHMARK",
        help="divide every median by this benchmark's median from the same "
        "report before comparing. A runner class uniformly faster or slower "
        "than the baseline machine then cancels out, and only *relative* "
        "shifts between benchmarks count as regressions. The reference "
        "benchmark itself trivially compares equal.",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCHMARK",
        help="benchmark name that must be present in both reports; missing "
        "required benchmarks fail the check instead of being skipped. "
        "Repeatable.",
    )
    args = parser.parse_args()
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    baseline = load_medians(args.baseline, args.metric)
    current = load_medians(args.current, args.metric)

    missing_required = [
        (name, side)
        for name in args.require
        for side, medians in (("baseline", baseline), ("current", current))
        if name not in medians
    ]
    if missing_required:
        for name, side in missing_required:
            print(f"required benchmark {name!r} missing from the {side} report")
        print(f"\nFAIL: {len(missing_required)} required benchmark(s) missing")
        return 1

    if args.normalize_by:
        for side, medians in (("baseline", baseline), ("current", current)):
            ref = medians.get(args.normalize_by)
            if ref is None or ref <= 0:
                sys.exit(
                    f"error: --normalize-by benchmark {args.normalize_by!r} "
                    f"is missing or non-positive in the {side} report"
                )
            for name in medians:
                medians[name] /= ref
        print(f"medians normalized by {args.normalize_by}")

    regressions = []
    improvements = []
    width = max(map(len, baseline | current))
    print(f"comparing {args.metric} medians, tolerance ±{args.tolerance:g}%")
    for name in sorted(baseline):
        if name not in current:
            print(f"  {name:<{width}}  MISSING from current run (skipped)")
            continue
        base, cur = baseline[name], current[name]
        if base <= 0:
            print(f"  {name:<{width}}  non-positive baseline (skipped)")
            continue
        delta_pct = (cur - base) / base * 100.0
        verdict = "ok"
        if delta_pct > args.tolerance:
            verdict = "REGRESSION"
            regressions.append((name, delta_pct))
        elif delta_pct < -args.tolerance:
            verdict = "faster (baseline stale?)"
            improvements.append((name, delta_pct))
        print(
            f"  {name:<{width}}  base {base:12.1f}  cur {cur:12.1f}"
            f"  {delta_pct:+7.1f}%  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  NEW (no baseline; refresh to cover it)")

    if improvements:
        print(
            f"\n{len(improvements)} benchmark(s) ran >"
            f"{args.tolerance:g}% faster than the baseline — consider "
            "refreshing bench/baseline.json so future regressions are "
            "measured from the improved numbers."
        )
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed:")
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%")
        return 1
    print("\nOK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
