#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance PCT]
                              [--metric real_time|cpu_time]

Both files are google-benchmark JSON reports produced with aggregates, e.g.

    bench_micro --benchmark_repetitions=5 \
                --benchmark_report_aggregates_only=true \
                --benchmark_out=current.json --benchmark_out_format=json

Only the per-benchmark *median* aggregates are compared (means are too
noisy on shared CI runners). A benchmark regresses when its current median
is more than --tolerance percent slower than the baseline median; it is
reported (but never fails the check) when it is that much faster, which
means the committed baseline is stale and should be refreshed.

Benchmarks present on only one side are reported and skipped: a freshly
added benchmark has no baseline until someone refreshes it, and a deleted
one should be cleaned from the baseline eventually, but neither should
break an unrelated PR. The exception is --require NAME (repeatable):
benchmarks the gate must actually gate on. A required name missing from
either report fails the check, so a filter typo or a renamed benchmark
cannot silently drop coverage.

To refresh the baseline, rerun the command above on the CI runner class
and commit the output as bench/baseline.json (see README "Refreshing the
bench baseline").

Exit status: 0 when no benchmark regressed, 1 otherwise, 2 on bad input.
"""

import argparse
import json
import os
import sys


def die(message):
    """Bad input: actionable message on stderr, distinct exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_medians(path, metric):
    """Returns {benchmark name: median metric value} for one report."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        die(
            f"cannot read {path}: {e}\n"
            "(a truncated report usually means the benchmark binary died "
            "mid-run or the runner ran out of disk; rerun the benchmark "
            "step instead of trusting this comparison)"
        )
    if not isinstance(report, dict) or not isinstance(
        report.get("benchmarks"), list
    ):
        die(
            f"{path} is not a google-benchmark JSON report (no "
            '"benchmarks" array); regenerate it with '
            "--benchmark_out_format=json"
        )
    medians = {}
    for bench in report["benchmarks"]:
        # Aggregate rows carry e.g. "BM_Foo/8_median"; plain rows (a run
        # without --benchmark_repetitions) have no aggregate_name, and the
        # single measurement serves as its own median.
        name = bench.get("run_name", bench.get("name", ""))
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
        if not name:
            continue
        if metric not in bench:
            # Silently skipping would drop the benchmark from the gate and
            # report a green "OK" with coverage quietly lost.
            die(
                f"{path}: entry {bench.get('name', name)!r} has no "
                f"{metric!r} field; the report is malformed or was produced "
                "by an incompatible google-benchmark version — regenerate "
                "it (and the baseline, if that is the malformed side)"
            )
        medians[name] = float(bench[metric])
    if not medians:
        die(f"no usable benchmark entries in {path}")
    return medians


def write_job_summary(rows, metric, tolerance):
    """Markdown per-benchmark table into $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        f"### Bench regression gate ({metric} medians, ±{tolerance:g}%)",
        "",
        "| benchmark | baseline | current | delta | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, cur, delta_pct, verdict in rows:
        base_s = f"{base:.1f}" if base is not None else "—"
        cur_s = f"{cur:.1f}" if cur is not None else "—"
        delta_s = f"{delta_pct:+.1f}%" if delta_pct is not None else "—"
        lines.append(f"| `{name}` | {base_s} | {cur_s} | {delta_s} | {verdict} |")
    with open(path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=25.0,
        help="allowed slowdown of the median, in percent (default 25)",
    )
    parser.add_argument(
        "--metric",
        choices=("real_time", "cpu_time"),
        default="cpu_time",
        help="which per-iteration time to compare (default cpu_time: it is "
        "far less sensitive to noisy-neighbour CI runners)",
    )
    parser.add_argument(
        "--normalize-by",
        metavar="BENCHMARK",
        help="divide every median by this benchmark's median from the same "
        "report before comparing. A runner class uniformly faster or slower "
        "than the baseline machine then cancels out, and only *relative* "
        "shifts between benchmarks count as regressions. The reference "
        "benchmark itself trivially compares equal.",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCHMARK",
        help="benchmark name that must be present in both reports; missing "
        "required benchmarks fail the check instead of being skipped. "
        "Repeatable.",
    )
    args = parser.parse_args()
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    baseline = load_medians(args.baseline, args.metric)
    current = load_medians(args.current, args.metric)

    missing_required = [
        (name, side)
        for name in args.require
        for side, medians in (("baseline", baseline), ("current", current))
        if name not in medians
    ]
    if missing_required:
        for name, side in missing_required:
            print(f"required benchmark {name!r} missing from the {side} report")
        print(f"\nFAIL: {len(missing_required)} required benchmark(s) missing")
        return 1

    if args.normalize_by:
        for side, medians in (("baseline", baseline), ("current", current)):
            ref = medians.get(args.normalize_by)
            if ref is None or ref <= 0:
                die(
                    f"--normalize-by benchmark {args.normalize_by!r} "
                    f"is missing or non-positive in the {side} report"
                )
            for name in medians:
                medians[name] /= ref
        print(f"medians normalized by {args.normalize_by}")

    regressions = []
    improvements = []
    summary_rows = []
    width = max(map(len, baseline | current))
    print(f"comparing {args.metric} medians, tolerance ±{args.tolerance:g}%")
    for name in sorted(baseline):
        if name not in current:
            print(f"  {name:<{width}}  MISSING from current run (skipped)")
            summary_rows.append((name, baseline[name], None, None, "missing"))
            continue
        base, cur = baseline[name], current[name]
        if base <= 0:
            print(f"  {name:<{width}}  non-positive baseline (skipped)")
            summary_rows.append((name, base, cur, None, "bad baseline"))
            continue
        delta_pct = (cur - base) / base * 100.0
        verdict = "ok"
        if delta_pct > args.tolerance:
            verdict = "REGRESSION"
            regressions.append((name, delta_pct))
        elif delta_pct < -args.tolerance:
            verdict = "faster (baseline stale?)"
            improvements.append((name, delta_pct))
        print(
            f"  {name:<{width}}  base {base:12.1f}  cur {cur:12.1f}"
            f"  {delta_pct:+7.1f}%  {verdict}"
        )
        summary_rows.append((name, base, cur, delta_pct, verdict))
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  NEW (no baseline; refresh to cover it)")
        summary_rows.append((name, None, current[name], None, "new"))
    write_job_summary(summary_rows, args.metric, args.tolerance)

    if improvements:
        print(
            f"\n{len(improvements)} benchmark(s) ran >"
            f"{args.tolerance:g}% faster than the baseline — consider "
            "refreshing bench/baseline.json so future regressions are "
            "measured from the improved numbers."
        )
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed:")
        for name, delta_pct in regressions:
            print(f"  {name}: {delta_pct:+.1f}%")
        return 1
    print("\nOK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
