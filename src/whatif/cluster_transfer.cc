#include "whatif/cluster_transfer.h"

namespace pstorm::whatif {

namespace {
double Ratio(double target, double source) {
  return source > 0.0 ? target / source : 1.0;
}
}  // namespace

profiler::ExecutionProfile AdjustProfileForCluster(
    const profiler::ExecutionProfile& profile,
    const mrsim::ClusterSpec& source, const mrsim::ClusterSpec& target) {
  profiler::ExecutionProfile out = profile;
  out.job_name = profile.job_name + "@transferred";

  const double hdfs_read = Ratio(target.hdfs_read_ns_per_byte,
                                 source.hdfs_read_ns_per_byte);
  const double hdfs_write = Ratio(target.hdfs_write_ns_per_byte,
                                  source.hdfs_write_ns_per_byte);
  const double local_read = Ratio(target.local_read_ns_per_byte,
                                  source.local_read_ns_per_byte);
  const double local_write = Ratio(target.local_write_ns_per_byte,
                                   source.local_write_ns_per_byte);
  const double cpu = Ratio(target.cpu_cost_factor, source.cpu_cost_factor);

  profiler::MapSideProfile& m = out.map_side;
  m.read_hdfs_io_cost *= hdfs_read;
  m.read_local_io_cost *= local_read;
  m.write_local_io_cost *= local_write;
  m.map_cpu_cost *= cpu;
  m.combine_cpu_cost *= cpu;
  // Timings: scale by the phase's dominant rate for plausible diagnostics.
  m.read_s *= hdfs_read;
  m.map_s *= cpu;
  m.spill_s *= local_write;
  m.merge_s *= 0.5 * (local_read + local_write);

  profiler::ReduceSideProfile& r = out.reduce_side;
  r.write_hdfs_io_cost *= hdfs_write;
  r.read_local_io_cost *= local_read;
  r.write_local_io_cost *= local_write;
  r.reduce_cpu_cost *= cpu;
  r.shuffle_s *= Ratio(target.network_ns_per_byte,
                       source.network_ns_per_byte);
  r.sort_s *= 0.5 * (local_read + local_write);
  r.reduce_s *= cpu;
  r.write_s *= hdfs_write;

  return out;
}

}  // namespace pstorm::whatif
