#include "whatif/map_outcome_cache.h"

#include <bit>

namespace pstorm::whatif {

MapModelKey MapRelevantSubset(const mrsim::Configuration& config) {
  MapModelKey key;
  key.io_sort_mb = config.io_sort_mb;
  key.io_sort_record_percent = config.io_sort_record_percent;
  key.io_sort_spill_percent = config.io_sort_spill_percent;
  key.io_sort_factor = config.io_sort_factor;
  key.use_combiner = config.use_combiner;
  key.min_num_spills_for_combine = config.min_num_spills_for_combine;
  key.compress_map_output = config.compress_map_output;
  return key;
}

size_t MapModelKeyHash::operator()(const MapModelKey& k) const {
  uint64_t h = Mix64(std::bit_cast<uint64_t>(k.io_sort_mb));
  h = HashCombine(h, std::bit_cast<uint64_t>(k.io_sort_record_percent));
  h = HashCombine(h, std::bit_cast<uint64_t>(k.io_sort_spill_percent));
  h = HashCombine(h, static_cast<uint64_t>(k.io_sort_factor));
  h = HashCombine(h, (static_cast<uint64_t>(k.use_combiner) << 1) |
                         static_cast<uint64_t>(k.compress_map_output));
  h = HashCombine(h, static_cast<uint64_t>(k.min_num_spills_for_combine));
  return static_cast<size_t>(h);
}

}  // namespace pstorm::whatif
