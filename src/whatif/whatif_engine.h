#ifndef PSTORM_WHATIF_WHATIF_ENGINE_H_
#define PSTORM_WHATIF_WHATIF_ENGINE_H_

#include "common/result.h"
#include "mrsim/cluster.h"
#include "mrsim/configuration.h"
#include "mrsim/dataset.h"
#include "mrsim/task_model.h"
#include "profiler/profile.h"
#include "whatif/map_outcome_cache.h"

namespace pstorm::whatif {

/// A what-if answer: predicted job runtime plus the phase-level breakdown
/// behind it.
struct Prediction {
  double runtime_s = 0;
  double map_phase_s = 0;
  double map_task_s = 0;     // Predicted duration of one map task.
  double reduce_task_s = 0;  // Predicted duration of one reduce task.
  mrsim::MapTaskOutcome map_outcome;
  mrsim::ReduceTaskOutcome reduce_outcome;
};

/// The Starfish What-If engine stand-in: predicts the runtime of an MR job
/// under a hypothetical configuration, given an execution profile of the
/// job (or of a *similar* job — PStorM's entire premise) and the target
/// data/cluster.
///
/// The prediction derives a "virtual profile" — per-task model parameters
/// taken from the profile's data-flow statistics and cost factors — and
/// evaluates the same analytical phase models the simulator uses, followed
/// by deterministic wave scheduling. It never sees the hidden JobSpec:
/// prediction quality is bounded by profile quality, exactly the dynamic
/// the thesis exploits.
class WhatIfEngine {
 public:
  explicit WhatIfEngine(mrsim::ClusterSpec cluster);

  const mrsim::ClusterSpec& cluster() const { return cluster_; }

  /// Predicts the runtime of the profiled job on `data` under `config`.
  ///
  /// `map_cache`, when non-null, memoizes the map half of the model keyed
  /// by the map-relevant subset of `config` — candidates that differ only
  /// in reduce-side parameters then skip ModelMapTask and the map-wave
  /// schedule entirely. The cache is only valid for a fixed
  /// (profile, data) pair on this engine's cluster; callers sweeping
  /// configurations (the CBO) own one cache per sweep. Predict itself is
  /// const and safe to call concurrently; the cache serializes internally.
  Result<Prediction> Predict(const profiler::ExecutionProfile& profile,
                             const mrsim::DataSetSpec& data,
                             const mrsim::Configuration& config,
                             MapOutcomeCache* map_cache = nullptr) const;

 private:
  mrsim::ClusterSpec cluster_;
};

}  // namespace pstorm::whatif

#endif  // PSTORM_WHATIF_WHATIF_ENGINE_H_
