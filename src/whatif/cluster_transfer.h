#ifndef PSTORM_WHATIF_CLUSTER_TRANSFER_H_
#define PSTORM_WHATIF_CLUSTER_TRANSFER_H_

#include "mrsim/cluster.h"
#include "profiler/profile.h"

namespace pstorm::whatif {

/// Rewrites a profile collected on `source` so its cost factors describe
/// the job running on `target` instead (thesis §7.2.3 / §7.2.6: sharing
/// one profile store across clusters, or bootstrapping PStorM on a new
/// cluster from another cluster's profiles).
///
/// Data-flow statistics are properties of the job and transfer as-is; the
/// cost factors are scaled by the ratio of the clusters' baseline rates
/// (the "crucial role" the thesis flags as the challenge). Phase timings
/// are scaled alongside their dominant rate so diagnostic output stays
/// plausible, though only the cost factors matter to the what-if engine.
profiler::ExecutionProfile AdjustProfileForCluster(
    const profiler::ExecutionProfile& profile,
    const mrsim::ClusterSpec& source, const mrsim::ClusterSpec& target);

}  // namespace pstorm::whatif

#endif  // PSTORM_WHATIF_CLUSTER_TRANSFER_H_
