#include "whatif/whatif_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mrsim/simulator.h"
#include "obs/metrics.h"

namespace pstorm::whatif {

WhatIfEngine::WhatIfEngine(mrsim::ClusterSpec cluster) : cluster_(cluster) {}

Result<Prediction> WhatIfEngine::Predict(
    const profiler::ExecutionProfile& profile, const mrsim::DataSetSpec& data,
    const mrsim::Configuration& config, MapOutcomeCache* map_cache) const {
  PSTORM_RETURN_IF_ERROR(cluster_.Validate());
  PSTORM_RETURN_IF_ERROR(data.Validate());
  PSTORM_RETURN_IF_ERROR(config.Validate());
  const profiler::MapSideProfile& m = profile.map_side;
  const profiler::ReduceSideProfile& r = profile.reduce_side;
  if (m.num_tasks <= 0 || m.input_bytes <= 0 || m.input_records <= 0) {
    return Status::InvalidArgument("profile has no usable map observations");
  }

  const uint64_t num_splits = data.num_splits();
  if (num_splits == 0) return Status::InvalidArgument("no input splits");

  // ---- Virtual map-task parameters from the profile -------------------
  const double record_bytes = m.input_bytes / m.input_records;

  mrsim::MapTaskParams map_params;
  // Average actual split: a data set smaller than one HDFS block yields a
  // single short split, not a full-block one.
  map_params.input_bytes = static_cast<double>(data.size_bytes) /
                           static_cast<double>(num_splits);
  map_params.input_records = map_params.input_bytes / record_bytes;
  map_params.map_pairs_selectivity = m.pairs_selectivity;
  map_params.map_size_selectivity = m.size_selectivity;
  map_params.map_cpu_ns_per_record = m.map_cpu_cost;
  // A combiner is known to exist iff the profile shows it collapsed
  // records.
  map_params.combiner_defined = m.combine_pairs_selectivity < 1.0 ||
                                m.combine_cpu_cost > 0.0;
  map_params.combine_pairs_selectivity = m.combine_pairs_selectivity;
  map_params.combine_size_selectivity = m.combine_size_selectivity;
  // The profile's combine selectivities already capture the total effect
  // across spill and merge combining; no further merge-time collapsing.
  map_params.combine_merge_pairs_selectivity = 1.0;
  map_params.combine_merge_size_selectivity = 1.0;
  map_params.combine_cpu_ns_per_record = m.combine_cpu_cost;
  // Format read cost is folded into the measured READ_HDFS_IO_COST.
  map_params.input_format_cost_factor = 1.0;
  map_params.intermediate_compress_ratio = m.intermediate_compress_ratio;
  map_params.hdfs_read_ns_per_byte = m.read_hdfs_io_cost;
  map_params.local_read_ns_per_byte = m.read_local_io_cost;
  map_params.local_write_ns_per_byte = m.write_local_io_cost;
  // Framework-level CPU rates are cluster facts, not job facts.
  map_params.collect_ns_per_record = cluster_.collect_ns_per_record;
  map_params.sort_ns_per_compare = cluster_.sort_ns_per_compare;
  map_params.merge_cpu_ns_per_byte = cluster_.merge_cpu_ns_per_byte;
  map_params.compress_cpu_ns_per_byte = cluster_.compress_cpu_ns_per_byte;
  map_params.decompress_cpu_ns_per_byte =
      cluster_.decompress_cpu_ns_per_byte;
  map_params.startup_seconds = cluster_.task_startup_seconds;
  map_params.spill_setup_seconds = cluster_.spill_setup_seconds;

  // The whole map half — task model plus wave schedule — is a pure
  // function of the map-relevant configuration subset, so a sweep over
  // candidates can memoize it.
  static obs::Counter& predictions = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_whatif_predictions_total");
  static obs::Counter& map_cache_hits =
      obs::MetricsRegistry::Global().GetCounter(
          "pstorm_whatif_map_cache_hits_total");
  static obs::Counter& map_cache_misses =
      obs::MetricsRegistry::Global().GetCounter(
          "pstorm_whatif_map_cache_misses_total");
  predictions.Increment();
  std::shared_ptr<const MapModelEntry> map_entry;
  const MapModelKey map_key = MapRelevantSubset(config);
  if (map_cache != nullptr) map_entry = map_cache->Lookup(map_key);
  if (map_entry != nullptr) {
    map_cache_hits.Increment();
  } else {
    map_cache_misses.Increment();
  }
  if (map_entry == nullptr) {
    auto fresh = std::make_shared<MapModelEntry>();
    fresh->outcome = mrsim::ModelMapTask(map_params, config);
    fresh->map_task_s = fresh->outcome.total_s;

    // Wave scheduling of identical map tasks; keep the end times sorted
    // so any slowstart fraction can index into them.
    const std::vector<double> map_durations(num_splits, fresh->map_task_s);
    const auto map_schedule =
        mrsim::ListSchedule(cluster_.total_map_slots(), map_durations);
    fresh->sorted_end_times.reserve(map_schedule.size());
    for (const auto& [start, end] : map_schedule) {
      fresh->sorted_end_times.push_back(end);
    }
    std::sort(fresh->sorted_end_times.begin(),
              fresh->sorted_end_times.end());
    fresh->map_phase_s = fresh->sorted_end_times.empty()
                             ? 0.0
                             : fresh->sorted_end_times.back();
    map_entry = std::move(fresh);
    if (map_cache != nullptr) map_cache->Insert(map_key, map_entry);
  }

  Prediction prediction;
  prediction.map_outcome = map_entry->outcome;
  prediction.map_task_s = map_entry->map_task_s;
  const double map_phase_end = map_entry->map_phase_s;
  prediction.map_phase_s = map_phase_end;

  if (config.num_reduce_tasks == 0) {
    prediction.runtime_s = map_phase_end;
    return prediction;
  }

  // ---- Virtual reduce-task parameters ---------------------------------
  const double total_uncompressed =
      prediction.map_outcome.final_output_uncompressed_bytes *
      static_cast<double>(num_splits);
  const double total_wire = prediction.map_outcome.final_output_wire_bytes *
                            static_cast<double>(num_splits);
  const double total_records = prediction.map_outcome.final_output_records *
                               static_cast<double>(num_splits);
  const double share = 1.0 / static_cast<double>(config.num_reduce_tasks);

  mrsim::ReduceTaskParams reduce_params;
  reduce_params.shuffle_wire_bytes = total_wire * share;
  reduce_params.shuffle_uncompressed_bytes = total_uncompressed * share;
  reduce_params.input_records = total_records * share;
  reduce_params.num_map_segments = static_cast<double>(num_splits);
  reduce_params.intermediate_compressed = config.compress_map_output;
  reduce_params.reduce_pairs_selectivity = r.pairs_selectivity;
  reduce_params.reduce_size_selectivity = r.size_selectivity;
  reduce_params.reduce_cpu_ns_per_record = r.reduce_cpu_cost;
  reduce_params.output_format_cost_factor = 1.0;  // Folded into WRITE_HDFS.
  reduce_params.output_compress_ratio = r.output_compress_ratio;
  reduce_params.heap_mb = cluster_.task_heap_mb;
  reduce_params.network_ns_per_byte = cluster_.network_ns_per_byte;
  reduce_params.local_read_ns_per_byte =
      r.read_local_io_cost > 0 ? r.read_local_io_cost
                               : cluster_.local_read_ns_per_byte;
  reduce_params.local_write_ns_per_byte =
      r.write_local_io_cost > 0 ? r.write_local_io_cost
                                : cluster_.local_write_ns_per_byte;
  reduce_params.hdfs_write_ns_per_byte =
      r.write_hdfs_io_cost > 0 ? r.write_hdfs_io_cost
                               : cluster_.hdfs_write_ns_per_byte;
  reduce_params.sort_ns_per_compare = cluster_.sort_ns_per_compare;
  reduce_params.merge_cpu_ns_per_byte = cluster_.merge_cpu_ns_per_byte;
  reduce_params.compress_cpu_ns_per_byte = cluster_.compress_cpu_ns_per_byte;
  reduce_params.decompress_cpu_ns_per_byte =
      cluster_.decompress_cpu_ns_per_byte;
  reduce_params.startup_seconds = cluster_.task_startup_seconds;

  prediction.reduce_outcome = mrsim::ModelReduceTask(reduce_params, config);
  prediction.reduce_task_s = prediction.reduce_outcome.total_s;

  // Reducers wait for the slowstart share of maps, and no shuffle ends
  // before the last map does.
  const std::vector<double>& map_ends = map_entry->sorted_end_times;
  const size_t slowstart_index = static_cast<size_t>(std::ceil(
      config.reduce_slowstart_completed_maps *
      static_cast<double>(num_splits)));
  const double slowstart_time =
      slowstart_index == 0
          ? 0.0
          : map_ends[std::min<size_t>(slowstart_index, num_splits) - 1];

  // Wave scheduling of identical reduce tasks with the shuffle barrier.
  const int reduce_slots = cluster_.total_reduce_slots();
  std::vector<double> slot_free(reduce_slots, 0.0);
  double reduce_end = 0.0;
  const auto& ro = prediction.reduce_outcome;
  for (int t = 0; t < config.num_reduce_tasks; ++t) {
    auto slot =
        std::min_element(slot_free.begin(), slot_free.end());
    const double start = std::max(*slot, slowstart_time);
    const double shuffle_end = std::max(
        start + cluster_.task_startup_seconds + ro.shuffle_s, map_phase_end);
    const double end =
        shuffle_end + ro.merge_s + ro.reduce_s + ro.write_s;
    *slot = end;
    reduce_end = std::max(reduce_end, end);
  }
  prediction.runtime_s = std::max(map_phase_end, reduce_end);
  return prediction;
}

}  // namespace pstorm::whatif
