#ifndef PSTORM_WHATIF_MAP_OUTCOME_CACHE_H_
#define PSTORM_WHATIF_MAP_OUTCOME_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "mrsim/configuration.h"
#include "mrsim/task_model.h"

namespace pstorm::whatif {

/// The subset of the 14 tuning parameters that the map-side model —
/// ModelMapTask plus the map-wave schedule — actually reads. Candidates
/// that differ only in reduce-side parameters (reducer count, shuffle
/// buffers, slowstart, output compression) share one map outcome, which
/// is what makes memoizing it worthwhile: the CBO's local-refinement
/// rounds perturb reduce-side knobs far more often than they change the
/// map-side buffer geometry.
struct MapModelKey {
  double io_sort_mb = 0;
  double io_sort_record_percent = 0;
  double io_sort_spill_percent = 0;
  int io_sort_factor = 0;
  bool use_combiner = false;
  int min_num_spills_for_combine = 0;
  bool compress_map_output = false;

  friend bool operator==(const MapModelKey&, const MapModelKey&) = default;
};

/// Extracts the map-relevant subset of `config`.
MapModelKey MapRelevantSubset(const mrsim::Configuration& config);

struct MapModelKeyHash {
  size_t operator()(const MapModelKey& k) const;
};

/// Everything Predict derives from the map-relevant subset alone (for a
/// fixed profile, data set, and cluster): the task outcome and the
/// full map-wave schedule digest the reduce side needs.
struct MapModelEntry {
  mrsim::MapTaskOutcome outcome;
  double map_task_s = 0;
  double map_phase_s = 0;
  /// Map-task end times sorted ascending — the slowstart barrier indexes
  /// into this for any reduce_slowstart_completed_maps value.
  std::vector<double> sorted_end_times;
};

/// Memo table for the map half of WhatIfEngine::Predict. One cache is
/// valid for exactly one (profile, data, cluster) triple — the CBO owns
/// one per Optimize call — and is safe to share across the thread pool:
/// entries are immutable once inserted and the map is mutex-protected.
/// A racing double-compute inserts the same pure-function value twice,
/// so results never depend on thread interleaving.
class MapOutcomeCache {
 public:
  std::shared_ptr<const MapModelEntry> Lookup(const MapModelKey& key) const {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  void Insert(const MapModelKey& key,
              std::shared_ptr<const MapModelEntry> entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, std::move(entry));
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Lifetime hit accounting (racy-exact under concurrency: relaxed
  /// atomics, so totals are exact once the threads join).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::mutex mu_;
  std::unordered_map<MapModelKey, std::shared_ptr<const MapModelEntry>,
                     MapModelKeyHash>
      entries_;
};

}  // namespace pstorm::whatif

#endif  // PSTORM_WHATIF_MAP_OUTCOME_CACHE_H_
