#include "mrsim/dataset.h"

namespace pstorm::mrsim {

Status DataSetSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("data set needs a name");
  if (size_bytes == 0) return Status::InvalidArgument("empty data set");
  if (avg_record_bytes <= 0.0) {
    return Status::InvalidArgument("avg_record_bytes must be positive");
  }
  if (split_bytes == 0) {
    return Status::InvalidArgument("split_bytes must be positive");
  }
  if (compress_ratio <= 0.0 || compress_ratio > 1.0) {
    return Status::InvalidArgument("compress_ratio must be in (0,1]");
  }
  if (vocabulary_mb < 0.0) {
    return Status::InvalidArgument("vocabulary_mb must be >= 0");
  }
  return Status::OK();
}

}  // namespace pstorm::mrsim
