#include "mrsim/cluster.h"

namespace pstorm::mrsim {

Status ClusterSpec::Validate() const {
  if (num_worker_nodes < 1) {
    return Status::InvalidArgument("cluster needs at least one worker");
  }
  if (map_slots_per_node < 1 || reduce_slots_per_node < 1) {
    return Status::InvalidArgument("each worker needs map and reduce slots");
  }
  if (task_heap_mb < 32.0) {
    return Status::InvalidArgument("task heap must be at least 32 MB");
  }
  const double costs[] = {hdfs_read_ns_per_byte,   hdfs_write_ns_per_byte,
                          local_read_ns_per_byte,  local_write_ns_per_byte,
                          network_ns_per_byte,     collect_ns_per_record,
                          sort_ns_per_compare,     merge_cpu_ns_per_byte,
                          compress_cpu_ns_per_byte,
                          decompress_cpu_ns_per_byte};
  for (double c : costs) {
    if (c <= 0.0) return Status::InvalidArgument("costs must be positive");
  }
  if (cpu_cost_factor <= 0.0) {
    return Status::InvalidArgument("cpu_cost_factor must be positive");
  }
  if (node_speed_sigma < 0.0 || split_size_jitter < 0.0 ||
      task_noise_sigma < 0.0) {
    return Status::InvalidArgument("noise parameters must be >= 0");
  }
  return Status::OK();
}

ClusterSpec ThesisCluster() { return ClusterSpec{}; }

}  // namespace pstorm::mrsim
