#include "mrsim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/random.h"

namespace pstorm::mrsim {

namespace {

/// (free_time, slot) min-heap entry.
struct Slot {
  double free_time;
  int slot_id;
  bool operator>(const Slot& other) const {
    if (free_time != other.free_time) return free_time > other.free_time;
    return slot_id > other.slot_id;
  }
};

using SlotQueue = std::priority_queue<Slot, std::vector<Slot>, std::greater<>>;

SlotQueue MakeSlots(int num_slots) {
  SlotQueue queue;
  for (int i = 0; i < num_slots; ++i) queue.push({0.0, i});
  return queue;
}

}  // namespace

std::vector<std::pair<double, double>> ListSchedule(
    int num_slots, const std::vector<double>& durations,
    double release_time) {
  PSTORM_CHECK(num_slots > 0);
  SlotQueue slots = MakeSlots(num_slots);
  std::vector<std::pair<double, double>> out;
  out.reserve(durations.size());
  for (double duration : durations) {
    Slot slot = slots.top();
    slots.pop();
    const double start = std::max(slot.free_time, release_time);
    const double end = start + duration;
    out.emplace_back(start, end);
    slots.push({end, slot.slot_id});
  }
  return out;
}

Simulator::Simulator(ClusterSpec cluster) : cluster_(cluster) {}

Result<JobRunResult> Simulator::RunJob(const JobSpec& job,
                                       const DataSetSpec& data,
                                       const Configuration& config,
                                       const RunOptions& options) const {
  PSTORM_RETURN_IF_ERROR(cluster_.Validate());
  PSTORM_RETURN_IF_ERROR(job.Validate());
  PSTORM_RETURN_IF_ERROR(data.Validate());
  PSTORM_RETURN_IF_ERROR(config.Validate());

  const uint64_t total_splits = data.num_splits();
  if (total_splits == 0) return Status::InvalidArgument("no input splits");

  std::vector<uint64_t> splits = options.split_subset;
  if (splits.empty()) {
    splits.resize(total_splits);
    for (uint64_t i = 0; i < total_splits; ++i) splits[i] = i;
  } else {
    for (uint64_t s : splits) {
      if (s >= total_splits) {
        return Status::OutOfRange("split index out of range");
      }
    }
  }

  Rng rng(options.seed);
  Rng node_rng = rng.Fork(1);
  Rng split_rng = rng.Fork(2);
  Rng partition_rng = rng.Fork(3);
  Rng task_rng = rng.Fork(4);

  // Per-node speed factor: fixed for the duration of the run; models node
  // heterogeneity / co-located load. >1 means slower.
  std::vector<double> node_factor(cluster_.num_worker_nodes);
  for (double& f : node_factor) {
    f = node_rng.LogNormal(0.0, cluster_.node_speed_sigma);
  }

  // Memory gate: the map function's own working set plus the serialization
  // buffer must fit the task heap.
  const double split_mb = static_cast<double>(data.split_bytes) / (1 << 20);
  const double map_heap_demand_mb =
      job.map_heap_demand_base_mb +
      job.map_heap_demand_mb_per_input_mb * split_mb +
      job.map_heap_demand_mb_per_vocab_mb * data.vocabulary_mb +
      config.io_sort_mb;
  if (map_heap_demand_mb > cluster_.task_heap_mb) {
    return Status::ResourceExhausted(
        "map task OOM: needs " + std::to_string(map_heap_demand_mb) +
        " MB but task heap is " + std::to_string(cluster_.task_heap_mb) +
        " MB (java.lang.OutOfMemoryError)");
  }

  const double profiling_factor =
      options.profiling_enabled ? 1.0 + options.profiling_slowdown : 1.0;

  JobRunResult result;
  result.config = config;
  result.map_tasks.reserve(splits.size());

  // ---- Map phase: greedy assignment to the earliest-free map slot. ----
  SlotQueue map_slots = MakeSlots(cluster_.total_map_slots());
  for (uint64_t split_index : splits) {
    Slot slot = map_slots.top();
    map_slots.pop();
    const int node = slot.slot_id / cluster_.map_slots_per_node;

    // Split size: nominal, except a short tail split, plus jitter.
    double split_bytes = static_cast<double>(data.split_bytes);
    if (split_index == total_splits - 1) {
      const uint64_t tail =
          data.size_bytes - (total_splits - 1) * data.split_bytes;
      split_bytes = static_cast<double>(tail);
    }
    split_bytes *=
        std::max(0.2, 1.0 + split_rng.Gaussian(0.0, cluster_.split_size_jitter));

    const double rate_factor = node_factor[node] *
                               task_rng.LogNormal(0.0, cluster_.task_noise_sigma) *
                               profiling_factor;

    // Split contents differ slightly, so observed selectivities jitter.
    const double sel_jitter = std::max(
        0.5, 1.0 + task_rng.Gaussian(0.0, cluster_.dataflow_jitter_sigma));

    MapTaskParams params;
    params.input_bytes = split_bytes;
    params.input_records = split_bytes / (data.avg_record_bytes *
                                          job.input_record_granularity);
    params.map_pairs_selectivity = job.map.pairs_selectivity * sel_jitter;
    params.map_size_selectivity = job.map.size_selectivity * sel_jitter;
    params.map_cpu_ns_per_record =
        job.map.cpu_ns_per_record * cluster_.cpu_cost_factor * rate_factor;
    params.combiner_defined = job.combine.defined;
    params.combine_pairs_selectivity = job.combine.pairs_selectivity;
    params.combine_size_selectivity = job.combine.size_selectivity;
    params.combine_merge_pairs_selectivity =
        job.combine.merge_pairs_selectivity;
    params.combine_merge_size_selectivity = job.combine.merge_size_selectivity;
    params.combine_cpu_ns_per_record = job.combine.cpu_ns_per_record *
                                       cluster_.cpu_cost_factor * rate_factor;
    params.input_format_cost_factor = job.input_format_cost_factor;
    params.intermediate_compress_ratio = job.intermediate_compress_ratio;
    params.hdfs_read_ns_per_byte =
        cluster_.hdfs_read_ns_per_byte * rate_factor;
    params.local_read_ns_per_byte =
        cluster_.local_read_ns_per_byte * rate_factor;
    params.local_write_ns_per_byte =
        cluster_.local_write_ns_per_byte * rate_factor;
    params.collect_ns_per_record =
        cluster_.collect_ns_per_record * rate_factor;
    params.sort_ns_per_compare = cluster_.sort_ns_per_compare * rate_factor;
    params.merge_cpu_ns_per_byte =
        cluster_.merge_cpu_ns_per_byte * rate_factor;
    params.compress_cpu_ns_per_byte =
        cluster_.compress_cpu_ns_per_byte * rate_factor;
    params.decompress_cpu_ns_per_byte =
        cluster_.decompress_cpu_ns_per_byte * rate_factor;
    params.startup_seconds = cluster_.task_startup_seconds;
    params.spill_setup_seconds = cluster_.spill_setup_seconds;

    MapTaskResult task;
    task.split_index = split_index;
    task.node = node;
    task.input_bytes = params.input_bytes;
    task.input_records = params.input_records;
    task.outcome = ModelMapTask(params, config);
    task.start_s = slot.free_time;
    task.end_s = task.start_s + task.outcome.total_s;
    map_slots.push({task.end_s, slot.slot_id});

    result.total_map_output_wire_bytes += task.outcome.final_output_wire_bytes;
    result.total_map_output_uncompressed_bytes +=
        task.outcome.final_output_uncompressed_bytes;
    result.total_map_output_records += task.outcome.final_output_records;
    result.map_tasks.push_back(task);
  }

  std::vector<double> map_ends;
  map_ends.reserve(result.map_tasks.size());
  for (const auto& task : result.map_tasks) map_ends.push_back(task.end_s);
  std::sort(map_ends.begin(), map_ends.end());
  result.map_phase_end_s = map_ends.empty() ? 0.0 : map_ends.back();

  if (config.num_reduce_tasks == 0) {
    result.runtime_s = result.map_phase_end_s;
    return result;
  }

  // Reducers are scheduled once `slowstart` of the maps have completed.
  const size_t slowstart_index = static_cast<size_t>(std::ceil(
      config.reduce_slowstart_completed_maps *
      static_cast<double>(map_ends.size())));
  const double slowstart_time =
      slowstart_index == 0
          ? 0.0
          : map_ends[std::min(slowstart_index, map_ends.size()) - 1];

  // Partition weights: hash partitioning is approximately even with mild
  // key-skew jitter.
  const int num_reducers = config.num_reduce_tasks;
  std::vector<double> weights(num_reducers);
  double weight_sum = 0.0;
  for (double& w : weights) {
    w = std::max(0.2, 1.0 + partition_rng.Gaussian(0.0, 0.08));
    weight_sum += w;
  }

  // ---- Reduce phase: earliest-free reduce slot; a reducer's shuffle can
  // only complete once every map has finished. ----
  SlotQueue reduce_slots = MakeSlots(cluster_.total_reduce_slots());
  result.reduce_tasks.reserve(num_reducers);
  for (int r = 0; r < num_reducers; ++r) {
    Slot slot = reduce_slots.top();
    reduce_slots.pop();
    const int node = slot.slot_id / cluster_.reduce_slots_per_node;
    const double share = weights[r] / weight_sum;
    const double rate_factor = node_factor[node] *
                               task_rng.LogNormal(0.0, cluster_.task_noise_sigma) *
                               profiling_factor;

    ReduceTaskParams params;
    params.shuffle_wire_bytes = result.total_map_output_wire_bytes * share;
    params.shuffle_uncompressed_bytes =
        result.total_map_output_uncompressed_bytes * share;
    params.input_records = result.total_map_output_records * share;
    params.num_map_segments = static_cast<double>(result.map_tasks.size());
    params.intermediate_compressed = config.compress_map_output;
    const double sel_jitter = std::max(
        0.5, 1.0 + task_rng.Gaussian(0.0, cluster_.dataflow_jitter_sigma));
    params.reduce_pairs_selectivity = job.reduce.pairs_selectivity * sel_jitter;
    params.reduce_size_selectivity = job.reduce.size_selectivity * sel_jitter;
    params.reduce_cpu_ns_per_record = job.reduce.cpu_ns_per_record *
                                      cluster_.cpu_cost_factor * rate_factor;
    params.output_format_cost_factor = job.output_format_cost_factor;
    params.output_compress_ratio = job.output_compress_ratio;
    params.heap_mb = cluster_.task_heap_mb;
    params.network_ns_per_byte = cluster_.network_ns_per_byte * rate_factor;
    params.local_read_ns_per_byte =
        cluster_.local_read_ns_per_byte * rate_factor;
    params.local_write_ns_per_byte =
        cluster_.local_write_ns_per_byte * rate_factor;
    params.hdfs_write_ns_per_byte =
        cluster_.hdfs_write_ns_per_byte * rate_factor;
    params.sort_ns_per_compare = cluster_.sort_ns_per_compare * rate_factor;
    params.merge_cpu_ns_per_byte =
        cluster_.merge_cpu_ns_per_byte * rate_factor;
    params.compress_cpu_ns_per_byte =
        cluster_.compress_cpu_ns_per_byte * rate_factor;
    params.decompress_cpu_ns_per_byte =
        cluster_.decompress_cpu_ns_per_byte * rate_factor;
    params.startup_seconds = cluster_.task_startup_seconds;

    ReduceTaskResult task;
    task.reduce_index = r;
    task.node = node;
    task.input_wire_bytes = params.shuffle_wire_bytes;
    task.input_uncompressed_bytes = params.shuffle_uncompressed_bytes;
    task.input_records = params.input_records;
    task.outcome = ModelReduceTask(params, config);

    task.start_s = std::max(slot.free_time, slowstart_time);
    // Shuffle ends no earlier than the last map task.
    const double shuffle_end =
        std::max(task.start_s + cluster_.task_startup_seconds +
                     task.outcome.shuffle_s,
                 result.map_phase_end_s);
    task.end_s = shuffle_end + task.outcome.merge_s + task.outcome.reduce_s +
                 task.outcome.write_s;
    reduce_slots.push({task.end_s, slot.slot_id});

    result.total_output_bytes += task.outcome.output_bytes;
    result.reduce_tasks.push_back(task);
  }

  double reduce_end = 0.0;
  for (const auto& task : result.reduce_tasks) {
    reduce_end = std::max(reduce_end, task.end_s);
  }
  result.runtime_s = std::max(result.map_phase_end_s, reduce_end);
  return result;
}

}  // namespace pstorm::mrsim
