#include "mrsim/jobspec.h"

namespace pstorm::mrsim {

Status JobSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("job needs a name");
  if (map.pairs_selectivity < 0.0 || map.size_selectivity < 0.0) {
    return Status::InvalidArgument("map selectivities must be >= 0");
  }
  if (map.cpu_ns_per_record < 0.0) {
    return Status::InvalidArgument("map cpu cost must be >= 0");
  }
  if (combine.defined) {
    if (combine.pairs_selectivity <= 0.0 || combine.pairs_selectivity > 1.0 ||
        combine.size_selectivity <= 0.0 || combine.size_selectivity > 1.0) {
      return Status::InvalidArgument(
          "combiner selectivities must be in (0,1]");
    }
    if (combine.merge_pairs_selectivity <= 0.0 ||
        combine.merge_pairs_selectivity > 1.0 ||
        combine.merge_size_selectivity <= 0.0 ||
        combine.merge_size_selectivity > 1.0) {
      return Status::InvalidArgument(
          "combiner merge selectivities must be in (0,1]");
    }
  }
  if (reduce.pairs_selectivity < 0.0 || reduce.size_selectivity < 0.0) {
    return Status::InvalidArgument("reduce selectivities must be >= 0");
  }
  if (input_format_cost_factor <= 0.0 || output_format_cost_factor <= 0.0) {
    return Status::InvalidArgument("format cost factors must be positive");
  }
  if (input_record_granularity < 1.0) {
    return Status::InvalidArgument("input_record_granularity must be >= 1");
  }
  if (intermediate_compress_ratio <= 0.0 ||
      intermediate_compress_ratio > 1.0 || output_compress_ratio <= 0.0 ||
      output_compress_ratio > 1.0) {
    return Status::InvalidArgument("compress ratios must be in (0,1]");
  }
  if (map_heap_demand_base_mb < 0.0 || map_heap_demand_mb_per_input_mb < 0.0 ||
      map_heap_demand_mb_per_vocab_mb < 0.0) {
    return Status::InvalidArgument("heap demands must be >= 0");
  }
  return Status::OK();
}

}  // namespace pstorm::mrsim
