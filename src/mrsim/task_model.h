#ifndef PSTORM_MRSIM_TASK_MODEL_H_
#define PSTORM_MRSIM_TASK_MODEL_H_

#include "mrsim/configuration.h"

namespace pstorm::mrsim {

/// Inputs of the analytical map-task model. Deliberately neutral about
/// where the numbers come from: the simulator fills them from the hidden
/// JobSpec truth plus node noise, while the what-if engine fills them from
/// an execution profile (Starfish's "virtual profile" trick) — both then
/// evaluate the identical phase formulas below.
struct MapTaskParams {
  // Input assigned to the task.
  double input_bytes = 0;
  double input_records = 0;

  // Job behaviour.
  double map_pairs_selectivity = 1.0;
  double map_size_selectivity = 1.0;
  double map_cpu_ns_per_record = 0;
  bool combiner_defined = false;
  double combine_pairs_selectivity = 1.0;
  double combine_size_selectivity = 1.0;
  double combine_merge_pairs_selectivity = 1.0;
  double combine_merge_size_selectivity = 1.0;
  double combine_cpu_ns_per_record = 0;
  double input_format_cost_factor = 1.0;
  double intermediate_compress_ratio = 0.4;

  // Effective cost rates for this task (baseline x node speed x noise).
  double hdfs_read_ns_per_byte = 0;
  double local_read_ns_per_byte = 0;
  double local_write_ns_per_byte = 0;
  double collect_ns_per_record = 0;
  double sort_ns_per_compare = 0;
  double merge_cpu_ns_per_byte = 0;
  double compress_cpu_ns_per_byte = 0;
  double decompress_cpu_ns_per_byte = 0;
  double startup_seconds = 0;
  double spill_setup_seconds = 0;
};

/// Phase timings and dataflow of one simulated/predicted map task.
struct MapTaskOutcome {
  // Phase durations, seconds.
  double read_s = 0;
  double map_s = 0;
  double collect_s = 0;   // Serialization + partitioning into the buffer.
  double spill_s = 0;     // Sort + combine + compress + spill writes.
  double merge_s = 0;     // Multi-pass merge of spill files.
  double total_s = 0;     // Including startup.

  // Sub-phase measurements (what per-phase instrumentation would report).
  double combine_cpu_s = 0;      // Inside spill_s/merge_s.
  double spill_write_s = 0;      // Disk-write share of spill_s.
  double merge_read_s = 0;       // Disk-read share of merge_s.
  double merge_write_s = 0;      // Disk-write share of merge_s.
  double merge_io_bytes = 0;     // Bytes read (= written) per merge pass sum.

  // Dataflow.
  double map_output_records = 0;  // Emitted by the map function.
  double map_output_bytes = 0;
  double num_spills = 0;
  double spilled_bytes = 0;       // Bytes written across all spill files.
  double merge_passes = 0;
  double combine_input_records = 0;
  double combine_output_records = 0;
  /// Final materialized map output, as shuffled (compressed if enabled).
  double final_output_wire_bytes = 0;
  double final_output_uncompressed_bytes = 0;
  double final_output_records = 0;
};

/// Evaluates the map-side phase model under `config`.
MapTaskOutcome ModelMapTask(const MapTaskParams& params,
                            const Configuration& config);

/// Inputs of the analytical reduce-task model.
struct ReduceTaskParams {
  /// This reducer's partition of the total map output.
  double shuffle_wire_bytes = 0;          // As moved over the network.
  double shuffle_uncompressed_bytes = 0;  // Logical size.
  double input_records = 0;
  /// Number of map-output segments shuffled (= number of map tasks).
  double num_map_segments = 0;
  bool intermediate_compressed = false;

  // Job behaviour.
  double reduce_pairs_selectivity = 1.0;
  double reduce_size_selectivity = 1.0;
  double reduce_cpu_ns_per_record = 0;
  double output_format_cost_factor = 1.0;
  double output_compress_ratio = 0.45;

  // Cluster/task facts.
  double heap_mb = 300.0;

  // Effective cost rates for this task.
  double network_ns_per_byte = 0;
  double local_read_ns_per_byte = 0;
  double local_write_ns_per_byte = 0;
  double hdfs_write_ns_per_byte = 0;
  double sort_ns_per_compare = 0;
  double merge_cpu_ns_per_byte = 0;
  double compress_cpu_ns_per_byte = 0;
  double decompress_cpu_ns_per_byte = 0;
  double startup_seconds = 0;
};

/// Phase timings and dataflow of one simulated/predicted reduce task.
struct ReduceTaskOutcome {
  double shuffle_s = 0;  // Network + shuffle-time disk spills.
  double merge_s = 0;    // On-disk merge rounds before the reduce phase.
  double reduce_s = 0;   // Final merge feed + the reduce function itself.
  double write_s = 0;    // Output to HDFS.
  double total_s = 0;    // Including startup.

  // Sub-phase measurements.
  double shuffle_network_s = 0;   // Network share of shuffle_s.
  double shuffle_disk_write_s = 0;
  double shuffle_disk_bytes = 0;  // Bytes staged to local disk.
  double merge_read_s = 0;
  double merge_write_s = 0;
  double merge_io_bytes = 0;
  double reduce_cpu_s = 0;        // The reduce function alone.
  double reduce_read_s = 0;       // Disk-read share of reduce_s.

  double disk_segments = 0;
  double merge_passes = 0;
  double output_records = 0;
  double output_bytes = 0;  // As written (compressed if enabled).
  double output_uncompressed_bytes = 0;  // Logical output size.
};

/// Evaluates the reduce-side phase model under `config`.
ReduceTaskOutcome ModelReduceTask(const ReduceTaskParams& params,
                                  const Configuration& config);

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_TASK_MODEL_H_
