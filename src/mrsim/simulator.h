#ifndef PSTORM_MRSIM_SIMULATOR_H_
#define PSTORM_MRSIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mrsim/cluster.h"
#include "mrsim/configuration.h"
#include "mrsim/dataset.h"
#include "mrsim/jobspec.h"
#include "mrsim/task_model.h"

namespace pstorm::mrsim {

/// Knobs of one simulated run.
struct RunOptions {
  /// Run only these split indices (Starfish sampler semantics: unselected
  /// splits are eliminated, so only |split_subset| map tasks execute and
  /// the reducers process just their output). Empty means every split.
  std::vector<uint64_t> split_subset;
  /// Whether the dynamic-instrumentation profiler is attached; profiled
  /// tasks run slower by `profiling_slowdown`.
  bool profiling_enabled = false;
  double profiling_slowdown = 0.08;
  /// Seed of this run's noise (node speeds, split jitter, stragglers).
  uint64_t seed = 42;
};

/// One executed (simulated) map task.
struct MapTaskResult {
  uint64_t split_index = 0;
  int node = 0;
  double start_s = 0;
  double end_s = 0;
  double input_bytes = 0;
  double input_records = 0;
  MapTaskOutcome outcome;
};

/// One executed (simulated) reduce task.
struct ReduceTaskResult {
  int reduce_index = 0;
  int node = 0;
  double start_s = 0;
  double end_s = 0;
  double input_wire_bytes = 0;
  double input_uncompressed_bytes = 0;
  double input_records = 0;
  ReduceTaskOutcome outcome;
};

/// Everything observable about one simulated job run.
struct JobRunResult {
  double runtime_s = 0;
  /// When the last map task finished.
  double map_phase_end_s = 0;
  std::vector<MapTaskResult> map_tasks;
  std::vector<ReduceTaskResult> reduce_tasks;
  /// Total map output across tasks, as shuffled.
  double total_map_output_wire_bytes = 0;
  double total_map_output_uncompressed_bytes = 0;
  double total_map_output_records = 0;
  double total_output_bytes = 0;
  Configuration config;
};

/// Deterministic simulator of Hadoop MR job execution on a cluster: the
/// repository's stand-in for the thesis's 16-node EC2 Hadoop deployment.
/// Identical (job, data, config, seed) inputs reproduce identical results;
/// different seeds model run-to-run variance (node load, stragglers).
class Simulator {
 public:
  explicit Simulator(ClusterSpec cluster);

  const ClusterSpec& cluster() const { return cluster_; }

  /// Simulates one run. Fails with ResourceExhausted when a map task's
  /// memory demand plus the serialization buffer exceeds the task heap
  /// (the OOM that kills co-occurrence "stripes" on the large data set),
  /// and with InvalidArgument on malformed specs/config.
  Result<JobRunResult> RunJob(const JobSpec& job, const DataSetSpec& data,
                              const Configuration& config,
                              const RunOptions& options = RunOptions()) const;

 private:
  ClusterSpec cluster_;
};

/// Greedy list scheduling of `durations` onto `num_slots` identical slots,
/// all tasks ready at `release_time`. Returns (start, end) per task in
/// input order. Exposed for tests.
std::vector<std::pair<double, double>> ListSchedule(
    int num_slots, const std::vector<double>& durations,
    double release_time = 0.0);

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_SIMULATOR_H_
