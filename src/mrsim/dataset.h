#ifndef PSTORM_MRSIM_DATASET_H_
#define PSTORM_MRSIM_DATASET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pstorm::mrsim {

/// Statistical description of an input data set: enough to derive split
/// counts, record counts, and compressibility — the properties that drive
/// MR dataflow. Content is never materialized; the simulator works on these
/// aggregates.
struct DataSetSpec {
  std::string name;
  uint64_t size_bytes = 0;
  /// Average serialized size of one input record (e.g. one text line).
  double avg_record_bytes = 100.0;
  /// HDFS block/split size; Hadoop launches one map task per split.
  uint64_t split_bytes = 64ull << 20;
  /// Size ratio achieved when this data is compressed (output size /
  /// input size); text compresses well, random bytes do not.
  double compress_ratio = 0.35;
  /// Working-set proxy for the distinct-key population of the data (e.g.
  /// vocabulary of a text corpus), in MB. Jobs that hold per-key state in
  /// the mapper (stripes, association maps) need heap proportional to
  /// this.
  double vocabulary_mb = 10.0;

  uint64_t num_splits() const {
    if (size_bytes == 0) return 0;
    return (size_bytes + split_bytes - 1) / split_bytes;
  }

  uint64_t num_records() const {
    return static_cast<uint64_t>(static_cast<double>(size_bytes) /
                                 avg_record_bytes);
  }

  Status Validate() const;
};

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_DATASET_H_
