#include "mrsim/configuration.h"

#include "common/strings.h"

namespace pstorm::mrsim {

namespace {
Status CheckFraction(double v, const char* name) {
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument(std::string(name) + " must be in [0,1]");
  }
  return Status::OK();
}
}  // namespace

Status Configuration::Validate() const {
  if (io_sort_mb < 1.0 || io_sort_mb > 4096.0) {
    return Status::InvalidArgument("io.sort.mb must be in [1, 4096]");
  }
  PSTORM_RETURN_IF_ERROR(
      CheckFraction(io_sort_record_percent, "io.sort.record.percent"));
  if (io_sort_record_percent >= 1.0) {
    return Status::InvalidArgument("io.sort.record.percent must be < 1");
  }
  PSTORM_RETURN_IF_ERROR(
      CheckFraction(io_sort_spill_percent, "io.sort.spill.percent"));
  if (io_sort_spill_percent <= 0.0) {
    return Status::InvalidArgument("io.sort.spill.percent must be > 0");
  }
  if (io_sort_factor < 2) {
    return Status::InvalidArgument("io.sort.factor must be >= 2");
  }
  if (min_num_spills_for_combine < 1) {
    return Status::InvalidArgument("min.num.spills.for.combine must be >= 1");
  }
  PSTORM_RETURN_IF_ERROR(CheckFraction(reduce_slowstart_completed_maps,
                                       "mapred.reduce.slowstart"));
  if (num_reduce_tasks < 0) {
    return Status::InvalidArgument("mapred.reduce.tasks must be >= 0");
  }
  PSTORM_RETURN_IF_ERROR(CheckFraction(shuffle_input_buffer_percent,
                                       "shuffle.input.buffer.percent"));
  PSTORM_RETURN_IF_ERROR(
      CheckFraction(shuffle_merge_percent, "shuffle.merge.percent"));
  if (inmem_merge_threshold < 1) {
    return Status::InvalidArgument("inmem.merge.threshold must be >= 1");
  }
  PSTORM_RETURN_IF_ERROR(CheckFraction(reduce_input_buffer_percent,
                                       "reduce.input.buffer.percent"));
  return Status::OK();
}

std::string Configuration::ToString() const {
  std::string out;
  out += "io.sort.mb=" + FormatDouble(io_sort_mb, 0);
  out += " io.sort.record.percent=" + FormatDouble(io_sort_record_percent, 3);
  out += " io.sort.spill.percent=" + FormatDouble(io_sort_spill_percent, 2);
  out += " io.sort.factor=" + std::to_string(io_sort_factor);
  out += std::string(" combiner=") + (use_combiner ? "on" : "off");
  out += " min.num.spills.for.combine=" +
         std::to_string(min_num_spills_for_combine);
  out += std::string(" compress.map.output=") +
         (compress_map_output ? "true" : "false");
  out += " slowstart=" + FormatDouble(reduce_slowstart_completed_maps, 2);
  out += " reduce.tasks=" + std::to_string(num_reduce_tasks);
  out += " shuffle.input.buffer=" +
         FormatDouble(shuffle_input_buffer_percent, 2);
  out += " shuffle.merge=" + FormatDouble(shuffle_merge_percent, 2);
  out += " inmem.merge.threshold=" + std::to_string(inmem_merge_threshold);
  out += " reduce.input.buffer=" +
         FormatDouble(reduce_input_buffer_percent, 2);
  out += std::string(" output.compress=") +
         (compress_output ? "true" : "false");
  return out;
}

const std::vector<ParameterInfo>& ConfigurationParameterTable() {
  static const auto* kTable = new std::vector<ParameterInfo>{
      {"io.sort.mb", "Size in MB of the map-side memory buffer", "100"},
      {"io.sort.record.percent",
       "Percentage of the map-side buffer used to store meta-data about the "
       "intermediate key-value pairs",
       "0.05"},
      {"io.sort.spill.percent",
       "Threshold percentage of the map-side buffer that should be reached "
       "before a buffer spill to disk is triggered",
       "0.8"},
      {"io.sort.factor",
       "Number of open streams used during the external merge-sort phase",
       "10"},
      {"mapreduce.combine.class", "Class name of the combiner (Optional)",
       "NULL"},
      {"min.num.spills.for.combine",
       "Minimum number of disk spills that should exist before the combiner "
       "is triggered",
       "3"},
      {"mapred.compress.map.output",
       "Whether or not to compress intermediate data", "false"},
      {"mapred.reduce.slowstart.completed.maps",
       "Percentage of map tasks that should be completed before the "
       "JobTracker can start scheduling the reduce tasks",
       "0.05"},
      {"mapred.reduce.tasks",
       "Number of reduce tasks spawned during the reduce phase", "1"},
      {"mapred.job.shuffle.input.buffer.percent",
       "Percentage of the reduce-side heap memory used to buffer the "
       "shuffled data",
       "0.7"},
      {"mapred.job.shuffle.merge.percent",
       "Percentage of the reduce-side shuffle-buffer that should be filled "
       "before merging is triggered",
       "0.66"},
      {"mapred.inmem.merge.threshold",
       "Number of map tasks whose intermediate data should be shuffled "
       "before the shuffle-buffer is merged",
       "1000"},
      {"mapred.job.reduce.input.buffer.percent",
       "Percentage of the reduce-side heap memory used to buffer the "
       "intermediate data before being fed to the reduce function",
       "0"},
      {"mapred.output.compress", "Whether or not to compress output data",
       "false"},
  };
  return *kTable;
}

}  // namespace pstorm::mrsim
