#include "mrsim/task_model.h"

#include <algorithm>
#include <cmath>

namespace pstorm::mrsim {

namespace {

constexpr double kNsToS = 1e-9;
constexpr double kMb = 1024.0 * 1024.0;
/// Hadoop accounting record: 16 bytes of metadata per buffered record.
constexpr double kMetaBytesPerRecord = 16.0;

double Log2Compares(double records) {
  return records * std::log2(std::max(records, 2.0));
}

double MergePasses(double segments, int factor) {
  if (segments <= 1.0) return 0.0;
  return std::ceil(std::log(segments) / std::log(static_cast<double>(factor)));
}

}  // namespace

MapTaskOutcome ModelMapTask(const MapTaskParams& p,
                            const Configuration& config) {
  MapTaskOutcome out;

  // READ: pull the split off HDFS through the input format.
  out.read_s = p.input_bytes * p.hdfs_read_ns_per_byte *
               p.input_format_cost_factor * kNsToS;

  // MAP: run the user map function over every input record.
  out.map_s = p.input_records * p.map_cpu_ns_per_record * kNsToS;

  out.map_output_records = p.input_records * p.map_pairs_selectivity;
  out.map_output_bytes = p.input_bytes * p.map_size_selectivity;

  // COLLECT: serialize + partition each intermediate record into the
  // map-side buffer.
  out.collect_s = out.map_output_records * p.collect_ns_per_record * kNsToS;

  if (out.map_output_records <= 0.0) {
    out.total_s = p.startup_seconds + out.read_s + out.map_s;
    return out;
  }

  // SPILL: the buffer (io.sort.mb) is split between record data and
  // 16-byte-per-record metadata (io.sort.record.percent); a spill triggers
  // when either side passes io.sort.spill.percent. Whichever side fills
  // first determines the spill count.
  const double buffer_bytes = config.io_sort_mb * kMb;
  const double data_capacity = buffer_bytes *
                               (1.0 - config.io_sort_record_percent) *
                               config.io_sort_spill_percent;
  const double meta_capacity_records =
      buffer_bytes * config.io_sort_record_percent *
      config.io_sort_spill_percent / kMetaBytesPerRecord;

  double spills = 1.0;
  if (data_capacity > 0.0) {
    spills = std::max(spills, std::ceil(out.map_output_bytes / data_capacity));
  }
  if (meta_capacity_records > 0.0) {
    spills = std::max(spills,
                      std::ceil(out.map_output_records / meta_capacity_records));
  }
  out.num_spills = spills;

  const double records_per_spill = out.map_output_records / spills;
  const double bytes_per_spill = out.map_output_bytes / spills;

  // Sort each spill's records before writing, plus the fixed per-spill
  // file overhead.
  double spill_cpu_s =
      spills * Log2Compares(records_per_spill) * p.sort_ns_per_compare *
          kNsToS +
      spills * p.spill_setup_seconds;

  // Combine each spill if a combiner is defined and enabled.
  const bool combining = p.combiner_defined && config.use_combiner;
  double post_combine_records = records_per_spill;
  double post_combine_bytes = bytes_per_spill;
  if (combining) {
    out.combine_input_records = out.map_output_records;
    const double combine_s = spills * records_per_spill *
                             p.combine_cpu_ns_per_record * kNsToS;
    out.combine_cpu_s += combine_s;
    spill_cpu_s += combine_s;
    post_combine_records *= p.combine_pairs_selectivity;
    post_combine_bytes *= p.combine_size_selectivity;
    out.combine_output_records = spills * post_combine_records;
  }

  // Optionally compress before hitting disk.
  double wire_bytes_per_spill = post_combine_bytes;
  if (config.compress_map_output) {
    spill_cpu_s += spills * post_combine_bytes * p.compress_cpu_ns_per_byte *
                   kNsToS;
    wire_bytes_per_spill *= p.intermediate_compress_ratio;
  }

  const double spill_write_s = spills * wire_bytes_per_spill *
                               p.local_write_ns_per_byte * kNsToS;
  out.spill_write_s = spill_write_s;
  out.spilled_bytes = spills * wire_bytes_per_spill;
  out.spill_s = spill_cpu_s + spill_write_s;

  // MERGE: combine the spill files into the final map output in rounds of
  // io.sort.factor streams.
  double final_records = spills * post_combine_records;
  double final_uncompressed = spills * post_combine_bytes;
  double final_wire = spills * wire_bytes_per_spill;
  out.merge_passes = MergePasses(spills, config.io_sort_factor);
  if (out.merge_passes > 0.0) {
    out.merge_read_s = out.merge_passes * final_wire *
                       p.local_read_ns_per_byte * kNsToS;
    out.merge_write_s = out.merge_passes * final_wire *
                        p.local_write_ns_per_byte * kNsToS;
    out.merge_io_bytes = out.merge_passes * final_wire;
    double merge_cpu_s = out.merge_passes * final_wire *
                         p.merge_cpu_ns_per_byte * kNsToS;
    if (config.compress_map_output) {
      // Each pass decompresses and recompresses the stream contents.
      merge_cpu_s += out.merge_passes * final_uncompressed *
                     (p.decompress_cpu_ns_per_byte +
                      p.compress_cpu_ns_per_byte) *
                     kNsToS;
    }
    // Merge-time key comparisons: log2(fan-in) compares per record per pass.
    merge_cpu_s +=
        out.merge_passes * final_records *
        std::log2(std::max(static_cast<double>(config.io_sort_factor), 2.0)) *
        p.sort_ns_per_compare * kNsToS;
    out.merge_s = out.merge_read_s + out.merge_write_s + merge_cpu_s;

    // The combiner re-runs on the merged stream when enough spills exist,
    // collapsing residual duplicate keys.
    if (combining &&
        spills >= static_cast<double>(config.min_num_spills_for_combine)) {
      final_records *= p.combine_merge_pairs_selectivity;
      final_uncompressed *= p.combine_merge_size_selectivity;
      final_wire *= p.combine_merge_size_selectivity;
      const double merge_combine_s =
          final_records * p.combine_cpu_ns_per_record * kNsToS;
      out.combine_cpu_s += merge_combine_s;
      out.merge_s += merge_combine_s;
    }
  }

  out.final_output_records = final_records;
  out.final_output_uncompressed_bytes = final_uncompressed;
  out.final_output_wire_bytes = final_wire;

  out.total_s = p.startup_seconds + out.read_s + out.map_s + out.collect_s +
                out.spill_s + out.merge_s;
  return out;
}

ReduceTaskOutcome ModelReduceTask(const ReduceTaskParams& p,
                                  const Configuration& config) {
  ReduceTaskOutcome out;
  const double heap_bytes = p.heap_mb * kMb;

  // SHUFFLE: move this reducer's partition across the network; whatever
  // cannot be retained in heap is staged to local disk.
  out.shuffle_network_s =
      p.shuffle_wire_bytes * p.network_ns_per_byte * kNsToS;
  const double retain_bytes = heap_bytes * config.reduce_input_buffer_percent;
  const double disk_wire_bytes =
      std::max(0.0, p.shuffle_wire_bytes - retain_bytes);
  out.shuffle_disk_bytes = disk_wire_bytes;
  out.shuffle_disk_write_s =
      disk_wire_bytes * p.local_write_ns_per_byte * kNsToS;
  out.shuffle_s = out.shuffle_network_s + out.shuffle_disk_write_s;

  // Segment accounting: an in-memory merge flushes to disk whenever the
  // shuffle buffer passes shuffle.merge.percent, or every
  // inmem.merge.threshold map outputs.
  if (disk_wire_bytes > 0.0) {
    const double merge_trigger_bytes = std::max(
        1.0 * kMb, heap_bytes * config.shuffle_input_buffer_percent *
                       config.shuffle_merge_percent);
    const double by_bytes = std::ceil(disk_wire_bytes / merge_trigger_bytes);
    const double by_count =
        std::ceil(p.num_map_segments /
                  static_cast<double>(config.inmem_merge_threshold));
    out.disk_segments = std::max({1.0, by_bytes, by_count});
  }

  // MERGE: reduce disk segments down to io.sort.factor streams; the final
  // merge streams straight into the reduce function, so one pass is free.
  out.merge_passes =
      std::max(0.0, MergePasses(out.disk_segments, config.io_sort_factor) -
                        1.0);
  if (out.merge_passes > 0.0) {
    out.merge_read_s = out.merge_passes * disk_wire_bytes *
                       p.local_read_ns_per_byte * kNsToS;
    out.merge_write_s = out.merge_passes * disk_wire_bytes *
                        p.local_write_ns_per_byte * kNsToS;
    out.merge_io_bytes = out.merge_passes * disk_wire_bytes;
    double merge_cpu_s = out.merge_passes * disk_wire_bytes *
                         p.merge_cpu_ns_per_byte * kNsToS;
    if (p.intermediate_compressed) {
      merge_cpu_s += out.merge_passes * p.shuffle_uncompressed_bytes *
                     (p.decompress_cpu_ns_per_byte +
                      p.compress_cpu_ns_per_byte) *
                     kNsToS;
    }
    out.merge_s = out.merge_read_s + out.merge_write_s + merge_cpu_s;
  }
  // Final-merge key comparisons ahead of the reduce function.
  out.merge_s += p.input_records *
                 std::log2(std::max(out.disk_segments + 1.0, 2.0)) *
                 p.sort_ns_per_compare * kNsToS;

  // REDUCE: stream the merged run off disk through the reduce function.
  out.reduce_read_s = disk_wire_bytes * p.local_read_ns_per_byte * kNsToS;
  double reduce_s = out.reduce_read_s;
  if (p.intermediate_compressed) {
    reduce_s += p.shuffle_uncompressed_bytes * p.decompress_cpu_ns_per_byte *
                kNsToS;
  }
  out.reduce_cpu_s = p.input_records * p.reduce_cpu_ns_per_record * kNsToS;
  reduce_s += out.reduce_cpu_s;
  out.reduce_s = reduce_s;

  // WRITE: emit output through the output format to HDFS.
  out.output_records = p.input_records * p.reduce_pairs_selectivity;
  const double out_uncompressed =
      p.shuffle_uncompressed_bytes * p.reduce_size_selectivity;
  out.output_uncompressed_bytes = out_uncompressed;
  double write_s = 0.0;
  double written_bytes = out_uncompressed;
  if (config.compress_output) {
    write_s += out_uncompressed * p.compress_cpu_ns_per_byte * kNsToS;
    written_bytes *= p.output_compress_ratio;
  }
  write_s += written_bytes * p.hdfs_write_ns_per_byte *
             p.output_format_cost_factor * kNsToS;
  out.output_bytes = written_bytes;
  out.write_s = write_s;

  out.total_s = p.startup_seconds + out.shuffle_s + out.merge_s +
                out.reduce_s + out.write_s;
  return out;
}

}  // namespace pstorm::mrsim
