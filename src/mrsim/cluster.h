#ifndef PSTORM_MRSIM_CLUSTER_H_
#define PSTORM_MRSIM_CLUSTER_H_

#include <cstdint>

#include "common/status.h"

namespace pstorm::mrsim {

/// Hardware and baseline-cost description of a Hadoop cluster. All per-byte
/// and per-record costs are calibrated to a 2012-era EC2 c1.medium worker
/// (the thesis evaluation cluster): moderate disks, one JobTracker master,
/// 15 workers with 2 map and 2 reduce slots each, 300 MB task heaps.
struct ClusterSpec {
  int num_worker_nodes = 15;
  int map_slots_per_node = 2;
  int reduce_slots_per_node = 2;
  /// Maximum JVM heap of a task child process, in MB.
  double task_heap_mb = 300.0;

  // --- IO costs (ns per byte) -------------------------------------------
  double hdfs_read_ns_per_byte = 15.0;    // ~66 MB/s
  double hdfs_write_ns_per_byte = 30.0;   // ~33 MB/s effective (replication)
  double local_read_ns_per_byte = 10.0;   // ~100 MB/s
  double local_write_ns_per_byte = 12.0;  // ~83 MB/s
  /// Per-byte cost of moving map output to a reducer, including the
  /// map-side disk read it implies.
  double network_ns_per_byte = 18.0;      // ~55 MB/s effective per reducer

  // --- CPU costs --------------------------------------------------------
  /// Multiplier on all per-record user-code CPU costs (map/combine/reduce
  /// functions) relative to the reference c1.medium core. 0.5 = cores
  /// twice as fast. Framework CPU rates below are absolute.
  double cpu_cost_factor = 1.0;
  /// Serialize + partition one intermediate record in the collect phase.
  double collect_ns_per_record = 350.0;
  /// One key comparison during sorting/merging.
  double sort_ns_per_compare = 80.0;
  /// Merge bookkeeping per byte moved through a merge pass.
  double merge_cpu_ns_per_byte = 1.0;
  double compress_cpu_ns_per_byte = 20.0;   // LZO on a weak 2012 core.
  double decompress_cpu_ns_per_byte = 8.0;

  // --- Overheads and noise ----------------------------------------------
  /// JVM start + task setup/cleanup, seconds.
  double task_startup_seconds = 2.0;
  /// Fixed cost of opening/closing one spill file, seconds.
  double spill_setup_seconds = 0.05;
  /// Sigma of the per-node log-normal speed factor (heterogeneity; the
  /// source of cost-factor variance across sample tasks, thesis §4.1.1).
  double node_speed_sigma = 0.12;
  /// Relative jitter of split sizes around the nominal split size.
  double split_size_jitter = 0.04;
  /// Sigma of the per-task residual noise factor.
  double task_noise_sigma = 0.03;
  /// Sigma of the per-task jitter on observed data-flow selectivities
  /// (different splits contain slightly different data). Kept an order of
  /// magnitude below the cost noise: the §4.1.1 contrast between stable
  /// data-flow statistics and noisy cost factors.
  double dataflow_jitter_sigma = 0.01;

  int total_map_slots() const { return num_worker_nodes * map_slots_per_node; }
  int total_reduce_slots() const {
    return num_worker_nodes * reduce_slots_per_node;
  }

  Status Validate() const;
};

/// The 16-node EC2 c1.medium cluster of thesis chapter 6 (defaults above).
ClusterSpec ThesisCluster();

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_CLUSTER_H_
