#ifndef PSTORM_MRSIM_JOBSPEC_H_
#define PSTORM_MRSIM_JOBSPEC_H_

#include <string>

#include "common/status.h"

namespace pstorm::mrsim {

/// Behaviour of a map function, as dataflow aggregates. These values are
/// the hidden ground truth of a job; the profiler estimates them from
/// (simulated) execution and tuning decisions are made from those
/// estimates, never from this struct directly.
struct MapBehavior {
  /// Intermediate records emitted per input record (MAP_PAIRS_SEL truth).
  double pairs_selectivity = 1.0;
  /// Intermediate bytes emitted per input byte (MAP_SIZE_SEL truth).
  double size_selectivity = 1.0;
  /// CPU spent in the map function per input record, ns.
  double cpu_ns_per_record = 1000.0;
};

/// Behaviour of a combiner when one is defined for the job.
struct CombineBehavior {
  /// Whether the job ships a combiner class at all. The configuration knob
  /// `use_combiner` can only enable a combiner that exists here.
  bool defined = false;
  /// Output/input record ratio of one combiner application over a spill.
  double pairs_selectivity = 1.0;
  double size_selectivity = 1.0;
  /// Residual duplicate-key collapsing achieved when the combiner re-runs
  /// during the map-side merge of many spill files.
  double merge_pairs_selectivity = 0.9;
  double merge_size_selectivity = 0.9;
  double cpu_ns_per_record = 500.0;
};

/// Behaviour of a reduce function.
struct ReduceBehavior {
  /// Output records per input (intermediate) record.
  double pairs_selectivity = 1.0;
  /// Output bytes per input (intermediate) byte.
  double size_selectivity = 1.0;
  double cpu_ns_per_record = 1000.0;
};

/// The execution-relevant description of one MR job: what Hadoop would
/// learn by actually running the program. Static code features (class
/// names, CFGs — thesis Table 4.3) live with the jobs/ module, keeping the
/// simulator independent of the static analyzer.
struct JobSpec {
  std::string name;

  MapBehavior map;
  CombineBehavior combine;
  ReduceBehavior reduce;

  /// Cost multiplier of the input format's record reader relative to plain
  /// TextInputFormat (e.g. CompositeInputFormat joins are pricier).
  double input_format_cost_factor = 1.0;
  /// How many of the data set's base records the job's input format packs
  /// into one *input record* (1 = line-oriented; an XML/document reader
  /// that hands whole documents to the mapper uses ~40).
  double input_record_granularity = 1.0;
  /// Cost multiplier of the output format's record writer.
  double output_format_cost_factor = 1.0;

  /// Size ratio when intermediate data is compressed.
  double intermediate_compress_ratio = 0.40;
  /// Size ratio when final output is compressed.
  double output_compress_ratio = 0.45;

  /// Memory the map function itself needs (e.g. in-memory stripes /
  /// association maps), in MB: base + per input MB of the split + per MB
  /// of the data set's distinct-key working set (vocabulary). A map task
  /// fails with an OOM when this plus the serialization buffer exceeds the
  /// task heap — how the word co-occurrence "stripes" job dies on the
  /// 35 GB Wikipedia data set but survives the small corpus (§6.1.1).
  double map_heap_demand_base_mb = 20.0;
  double map_heap_demand_mb_per_input_mb = 0.0;
  double map_heap_demand_mb_per_vocab_mb = 0.0;

  Status Validate() const;
};

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_JOBSPEC_H_
