#ifndef PSTORM_MRSIM_CONFIGURATION_H_
#define PSTORM_MRSIM_CONFIGURATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pstorm::mrsim {

/// The 14 job-level Hadoop tuning parameters of thesis Table 2.1, with the
/// stock Hadoop defaults. These are the knobs the rule-based and cost-based
/// optimizers set.
struct Configuration {
  /// io.sort.mb — size in MB of the map-side serialization buffer.
  double io_sort_mb = 100.0;
  /// io.sort.record.percent — fraction of the map-side buffer reserved for
  /// per-record metadata (16 bytes per intermediate record).
  double io_sort_record_percent = 0.05;
  /// io.sort.spill.percent — buffer fill threshold that triggers a spill.
  double io_sort_spill_percent = 0.8;
  /// io.sort.factor — number of streams merged at once in external sorts.
  int io_sort_factor = 10;
  /// mapreduce.combine.class — whether the job's combiner (if it defines
  /// one) runs. The Hadoop default is NULL *at the cluster level*, but a
  /// job that sets a combiner class keeps it under the default submission,
  /// so the emulation default is "enabled"; the optimizers may disable it.
  bool use_combiner = true;
  /// min.num.spills.for.combine — minimum spill files before the combiner
  /// is re-run during the map-side merge.
  int min_num_spills_for_combine = 3;
  /// mapred.compress.map.output — compress intermediate (shuffled) data.
  bool compress_map_output = false;
  /// mapred.reduce.slowstart.completed.maps — fraction of map tasks that
  /// must finish before reducers are scheduled.
  double reduce_slowstart_completed_maps = 0.05;
  /// mapred.reduce.tasks — number of reduce tasks.
  int num_reduce_tasks = 1;
  /// mapred.job.shuffle.input.buffer.percent — fraction of reduce heap
  /// buffering shuffled segments.
  double shuffle_input_buffer_percent = 0.70;
  /// mapred.job.shuffle.merge.percent — shuffle-buffer fill threshold that
  /// triggers an in-memory merge to disk.
  double shuffle_merge_percent = 0.66;
  /// mapred.inmem.merge.threshold — number of map-output segments that
  /// triggers an in-memory merge to disk.
  int inmem_merge_threshold = 1000;
  /// mapred.job.reduce.input.buffer.percent — fraction of reduce heap that
  /// may retain map output during the reduce function (0 = spill all).
  double reduce_input_buffer_percent = 0.0;
  /// mapred.output.compress — compress the final job output.
  bool compress_output = false;

  /// Range-checks every field (e.g. percents in [0,1], io.sort.factor >= 2).
  Status Validate() const;

  /// One "name=value" pair per parameter, in Table 2.1 order.
  std::string ToString() const;

  friend bool operator==(const Configuration&, const Configuration&) =
      default;
};

/// Metadata row of Table 2.1 (used by the table bench and docs).
struct ParameterInfo {
  std::string_view hadoop_name;
  std::string_view description;
  std::string_view default_value;
};

/// The 14 rows of Table 2.1, in the thesis order.
const std::vector<ParameterInfo>& ConfigurationParameterTable();

}  // namespace pstorm::mrsim

#endif  // PSTORM_MRSIM_CONFIGURATION_H_
