#include "storage/replication.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace pstorm::storage {

namespace {

obs::Counter& ShippedBatches() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_shipped_batches_total");
  return c;
}
obs::Counter& ShippedRecords() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_shipped_records_total");
  return c;
}
obs::Counter& ShippedBytes() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_shipped_bytes_total");
  return c;
}
obs::Counter& CheckpointShips() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_checkpoint_ships_total");
  return c;
}
obs::Counter& ShipRetries() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_ship_retries_total");
  return c;
}
obs::Counter& ApplierFenceRejections() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_fence_rejections_total");
  return c;
}
obs::Counter& Divergences() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_repl_divergence_total");
  return c;
}
/// Follower lag in records, sampled after every ship round.
obs::Histogram& LagRecordsHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pstorm_repl_lag_records");
  return h;
}

/// Jittered capped exponential backoff shared by the fetch and checkpoint
/// retry loops: half the window fixed, half random, never zero-delay when a
/// backoff is configured.
uint64_t NextBackoff(uint64_t* backoff, uint64_t max_micros, Rng* rng) {
  const uint64_t capped = std::min(*backoff, max_micros);
  *backoff = std::min(*backoff * 2, max_micros);
  return capped / 2 + rng->NextUint64(capped / 2 + 1);
}

}  // namespace

// --- WalApplier -----------------------------------------------------------

WalApplier::WalApplier(Db* follower, size_t divergence_window)
    : follower_(follower),
      divergence_window_(divergence_window == 0 ? 1 : divergence_window) {
  PSTORM_CHECK(follower_ != nullptr);
}

uint64_t WalApplier::applied_sequence() const {
  return follower_->last_sequence();
}

uint64_t WalApplier::overlap_records_skipped() const {
  return overlap_records_skipped_.load(std::memory_order_relaxed);
}

uint64_t WalApplier::divergences() const {
  return divergences_.load(std::memory_order_relaxed);
}

uint64_t WalApplier::fence_rejections() const {
  return fence_rejections_.load(std::memory_order_relaxed);
}

Status WalApplier::Apply(uint64_t primary_epoch, const WalSegment& segment) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t applied = follower_->last_sequence();

  if (!segment.empty() && segment.first_sequence() > applied + 1) {
    return Status::InvalidArgument(
        "replication gap: shipped batch starts at " +
        std::to_string(segment.first_sequence()) + " but follower is at " +
        std::to_string(applied));
  }

  // An overlapping prefix means a retried/raced ship of already-applied
  // sequences. Legal — but only if it is byte-for-byte the same history:
  // the frame checksum doubles as the identity of record `seq`, so a
  // mismatch is a fork (two primaries wrote different record N), which must
  // surface, never be papered over.
  for (const WalRecordRef& ref : segment.records) {
    if (ref.sequence > applied) break;
    if (recent_.empty() || ref.sequence < recent_.front().sequence) {
      // Older than the divergence ring remembers; nothing to compare
      // against. Skip it (the follower already holds *a* record with this
      // sequence; divergence that old is caught by the crash harness's
      // full-content comparison instead).
      overlap_records_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const WalRecordRef& mine =
        recent_[ref.sequence - recent_.front().sequence];
    if (mine.checksum != ref.checksum) {
      divergences_.fetch_add(1, std::memory_order_relaxed);
      Divergences().Increment();
      return Status::Corruption(
          "replication fork: sequence " + std::to_string(ref.sequence) +
          " re-shipped with a different checksum");
    }
    overlap_records_skipped_.fetch_add(1, std::memory_order_relaxed);
  }

  const WalSegment fresh = SliceWalSegment(segment, applied + 1);
  const Status s = follower_->ApplyReplicated(primary_epoch, fresh);
  if (!s.ok()) {
    if (s.code() == StatusCode::kFailedPrecondition) {
      fence_rejections_.fetch_add(1, std::memory_order_relaxed);
      ApplierFenceRejections().Increment();
    }
    return s;
  }
  for (const WalRecordRef& ref : fresh.records) {
    recent_.push_back(WalRecordRef{ref.sequence, ref.checksum, 0, 0});
    if (recent_.size() > divergence_window_) recent_.pop_front();
  }
  return Status::OK();
}

// --- WalShipper -----------------------------------------------------------

WalShipper::WalShipper(Db* primary, WalApplier* applier,
                       const ReplicationOptions& options, StopLatch* stop)
    : primary_(primary),
      applier_(applier),
      options_(options),
      stop_(stop != nullptr ? stop : &own_stop_),
      rng_(options.retry_seed) {
  PSTORM_CHECK(primary_ != nullptr);
  PSTORM_CHECK(applier_ != nullptr);
}

Result<Db::ShipBatch> WalShipper::FetchWithRetries(uint64_t from_sequence) {
  uint64_t backoff = options_.retry_backoff_micros;
  for (int attempt = 0;; ++attempt) {
    Result<Db::ShipBatch> batch = primary_->FetchWalSince(from_sequence);
    if (batch.ok() || attempt >= options_.max_retries ||
        !batch.status().IsIoError()) {
      // Only transient (IoError) failures are worth retrying; everything
      // else — fencing, corruption — is a decision for the caller.
      return batch;
    }
    ++retries_;
    ShipRetries().Increment();
    const uint64_t sleep_micros = NextBackoff(
        &backoff, options_.retry_backoff_max_micros, &rng_);
    PSTORM_LOG(Warning) << "replication: fetch from sequence "
                        << from_sequence << " failed ("
                        << batch.status().ToString() << "); retry "
                        << (attempt + 1) << "/" << options_.max_retries
                        << " in " << sleep_micros << "us";
    if (stop_->WaitFor(sleep_micros)) {
      // Teardown raced the backoff: surface the transient error instead of
      // finishing the sleep (callers are shutting the replica down).
      return batch;
    }
  }
}

Result<WalShipper::ShipOutcome> WalShipper::ShipOnce() {
  ++ship_rounds_;
  const uint64_t from_sequence = applier_->applied_sequence() + 1;
  PSTORM_ASSIGN_OR_RETURN(Db::ShipBatch batch,
                          FetchWithRetries(from_sequence));
  ShipOutcome out;
  if (batch.need_checkpoint) {
    out.need_checkpoint = true;
    const uint64_t primary_last = primary_->last_sequence();
    const uint64_t applied = applier_->applied_sequence();
    out.lag = primary_last > applied ? primary_last - applied : 0;
    return out;
  }
  WalSegment segment = std::move(batch.segment);
  if (segment.records.size() > options_.max_batch_records) {
    const WalRecordRef& cut = segment.records[options_.max_batch_records];
    segment.raw.resize(cut.offset);
    segment.records.resize(options_.max_batch_records);
  }
  // Apply even when empty: an empty round still forwards the primary's
  // epoch (heartbeat fencing keeps an idle follower's fence fresh).
  PSTORM_RETURN_IF_ERROR(applier_->Apply(batch.epoch, segment));
  if (!segment.empty()) {
    ++shipped_batches_;
    shipped_records_ += segment.records.size();
    shipped_bytes_ += segment.raw.size();
    ShippedBatches().Increment();
    ShippedRecords().Add(segment.records.size());
    ShippedBytes().Add(segment.raw.size());
    out.shipped_records = segment.records.size();
  }
  const uint64_t primary_last = primary_->last_sequence();
  const uint64_t applied = applier_->applied_sequence();
  out.lag = primary_last > applied ? primary_last - applied : 0;
  LagRecordsHist().Record(out.lag);
  return out;
}

Result<WalShipper::ShipOutcome> WalShipper::CatchUp() {
  while (true) {
    PSTORM_ASSIGN_OR_RETURN(ShipOutcome out, ShipOnce());
    if (out.need_checkpoint) return out;
    if (out.lag <= options_.max_lag_records) return out;
    if (out.shipped_records == 0) return out;  // No more progress possible.
  }
}

// --- ReplicaSession -------------------------------------------------------

ReplicaSession::ReplicaSession(Db* primary, Env* follower_env,
                               std::string follower_path, Options options)
    : primary_(primary),
      follower_env_(follower_env),
      follower_path_(std::move(follower_path)),
      options_(std::move(options)) {}

Result<std::unique_ptr<ReplicaSession>> ReplicaSession::Open(
    Db* primary, Env* follower_env, std::string follower_path,
    Options options) {
  PSTORM_CHECK(primary != nullptr);
  PSTORM_CHECK(follower_env != nullptr);
  // The whole point of a warm standby is taking writes only from the
  // primary's log.
  options.follower_db.read_only_replica = true;
  auto session = std::unique_ptr<ReplicaSession>(new ReplicaSession(
      primary, follower_env, std::move(follower_path), std::move(options)));
  std::lock_guard<std::mutex> lock(session->session_mu_);
  Result<std::unique_ptr<Db>> follower = Db::Open(
      follower_env, session->follower_path_, session->options_.follower_db);
  if (follower.ok()) {
    session->follower_ = std::move(follower).value();
    session->applier_ = std::make_unique<WalApplier>(
        session->follower_.get(),
        session->options_.replication.divergence_window);
    session->shipper_ = std::make_unique<WalShipper>(
        primary, session->applier_.get(), session->options_.replication,
        &session->stop_latch_);
  } else {
    // E.g. a corrupt manifest after a crashed install: rebuild the
    // follower from a fresh checkpoint instead of failing the session.
    PSTORM_LOG(Warning) << "replica session: follower open failed ("
                        << follower.status().ToString()
                        << "); bootstrapping from checkpoint";
    PSTORM_RETURN_IF_ERROR(session->BootstrapLocked());
  }
  return session;
}

ReplicaSession::~ReplicaSession() {
  StopTailing();
  std::lock_guard<std::mutex> lock(session_mu_);
  if (sync_enabled_) {
    (void)primary_->SetCommitListener(nullptr);
    sync_enabled_ = false;
  }
}

Status ReplicaSession::BootstrapLocked() {
  // Sync mode: detach the forwarder FIRST. SetCommitListener waits out any
  // in-flight batch (including its OnCommit into our applier), so after
  // this no commit can race the teardown below.
  if (sync_enabled_) {
    PSTORM_RETURN_IF_ERROR(primary_->SetCommitListener(nullptr));
  }

  // Fold the about-to-be-recreated components' counters into the session
  // accumulators so stats() survives bootstraps.
  if (shipper_ != nullptr) {
    base_.ship_rounds += shipper_->ship_rounds();
    base_.shipped_batches += shipper_->shipped_batches();
    base_.shipped_records += shipper_->shipped_records();
    base_.shipped_bytes += shipper_->shipped_bytes();
    base_.retries += shipper_->retries();
  }
  if (applier_ != nullptr) {
    base_.overlap_records_skipped += applier_->overlap_records_skipped();
    base_.divergences += applier_->divergences();
    base_.fence_rejections += applier_->fence_rejections();
  }
  if (follower_ != nullptr) {
    const DbStats fs = follower_->stats();
    base_.applied_batches += fs.replicated_batches;
    base_.applied_records += fs.replicated_records;
  }

  Rng backoff_rng(options_.replication.retry_seed + 1);
  uint64_t backoff = options_.replication.retry_backoff_micros;
  Result<DbCheckpoint> checkpoint = primary_->Checkpoint();
  for (int attempt = 0;
       !checkpoint.ok() && checkpoint.status().IsIoError() &&
       attempt < options_.replication.max_retries;
       ++attempt) {
    ++checkpoint_retry_count_;
    ShipRetries().Increment();
    const uint64_t sleep_micros = NextBackoff(
        &backoff, options_.replication.retry_backoff_max_micros,
        &backoff_rng);
    PSTORM_LOG(Warning) << "replica session: checkpoint failed ("
                        << checkpoint.status().ToString() << "); retry "
                        << (attempt + 1) << "/"
                        << options_.replication.max_retries << " in "
                        << sleep_micros << "us";
    if (stop_latch_.WaitFor(sleep_micros)) break;  // Teardown in progress.
    checkpoint = primary_->Checkpoint();
  }
  if (!checkpoint.ok()) return checkpoint.status();

  // Close before install: InstallCheckpoint rewrites the directory under
  // the Db's feet otherwise.
  shipper_.reset();
  applier_.reset();
  follower_.reset();
  PSTORM_RETURN_IF_ERROR(Db::InstallCheckpoint(
      follower_env_, follower_path_, checkpoint.value()));
  Result<std::unique_ptr<Db>> reopened =
      Db::Open(follower_env_, follower_path_, options_.follower_db);
  if (!reopened.ok()) return reopened.status();
  follower_ = std::move(reopened).value();
  applier_ = std::make_unique<WalApplier>(
      follower_.get(), options_.replication.divergence_window);
  shipper_ = std::make_unique<WalShipper>(primary_, applier_.get(),
                                          options_.replication, &stop_latch_);
  ++checkpoint_ships_;
  CheckpointShips().Increment();
  PSTORM_LOG(Info) << "replica session: bootstrapped " << follower_path_
                   << " from checkpoint (epoch "
                   << checkpoint.value().epoch << ", flushed sequence "
                   << checkpoint.value().flushed_sequence << ")";

  if (sync_enabled_) {
    forwarder_ = std::make_unique<SyncForwarder>(applier_.get());
    PSTORM_RETURN_IF_ERROR(primary_->SetCommitListener(forwarder_.get()));
  }
  return Status::OK();
}

Status ReplicaSession::TickLocked() {
  Result<WalShipper::ShipOutcome> outcome = shipper_->ShipOnce();
  PSTORM_RETURN_IF_ERROR(outcome.status());
  if (outcome.value().need_checkpoint) {
    PSTORM_RETURN_IF_ERROR(BootstrapLocked());
    // Pick up whatever committed past the checkpoint's snapshot.
    Result<WalShipper::ShipOutcome> after = shipper_->ShipOnce();
    PSTORM_RETURN_IF_ERROR(after.status());
  }
  return Status::OK();
}

Status ReplicaSession::TickOnce() {
  std::lock_guard<std::mutex> lock(session_mu_);
  const Status s = TickLocked();
  last_tail_error_ = s;
  return s;
}

Status ReplicaSession::CatchUp() {
  std::lock_guard<std::mutex> lock(session_mu_);
  // A bootstrap can be demanded at most once per pass in practice (the
  // fresh checkpoint covers everything flushed); the bound is paranoia
  // against a primary flushing between rounds every time.
  for (int attempt = 0; attempt < 4; ++attempt) {
    Result<WalShipper::ShipOutcome> outcome = shipper_->CatchUp();
    PSTORM_RETURN_IF_ERROR(outcome.status());
    if (!outcome.value().need_checkpoint) {
      last_tail_error_ = Status::OK();
      return Status::OK();
    }
    PSTORM_RETURN_IF_ERROR(BootstrapLocked());
  }
  return Status::Internal(
      "replica catch-up kept requiring checkpoints; primary flushing "
      "faster than the follower can bootstrap");
}

Status ReplicaSession::Rebootstrap() {
  std::lock_guard<std::mutex> lock(session_mu_);
  return BootstrapLocked();
}

Status ReplicaSession::EnableSyncCommit() {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (sync_enabled_) return Status::OK();
  // Listener first, then heal: with the forwarder registered no further
  // batch can be missed, and the CatchUp below closes the gap behind any
  // batch that committed before registration. A batch interleaving between
  // the two steps arrives gapped, fails its writers once with
  // InvalidArgument, and is healed by the same CatchUp (or the next tick).
  forwarder_ = std::make_unique<SyncForwarder>(applier_.get());
  PSTORM_RETURN_IF_ERROR(primary_->SetCommitListener(forwarder_.get()));
  sync_enabled_ = true;
  Result<WalShipper::ShipOutcome> outcome = shipper_->CatchUp();
  PSTORM_RETURN_IF_ERROR(outcome.status());
  if (outcome.value().need_checkpoint) {
    PSTORM_RETURN_IF_ERROR(BootstrapLocked());
  }
  return Status::OK();
}

Status ReplicaSession::DisableSyncCommit() {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (!sync_enabled_) return Status::OK();
  PSTORM_RETURN_IF_ERROR(primary_->SetCommitListener(nullptr));
  sync_enabled_ = false;
  forwarder_.reset();
  return Status::OK();
}

void ReplicaSession::StartTailing(uint64_t poll_micros) {
  if (tailing_.exchange(true)) return;
  stop_latch_.Reset();
  tail_thread_ = std::thread([this, poll_micros] {
    while (!stop_latch_.stopped()) {
      // Errors are remembered in last_tail_error_ and retried next tick;
      // the tailer itself never dies.
      (void)TickOnce();
      // Interruptible poll sleep: StopTailing wakes it instead of waiting
      // out the interval.
      if (stop_latch_.WaitFor(poll_micros)) break;
    }
  });
}

void ReplicaSession::StopTailing() {
  if (!tailing_.load(std::memory_order_acquire)) return;
  stop_latch_.Stop();
  if (tail_thread_.joinable()) tail_thread_.join();
  tailing_.store(false);
}

Result<std::unique_ptr<Db>> ReplicaSession::Promote() {
  StopTailing();
  std::lock_guard<std::mutex> lock(session_mu_);
  if (follower_ == nullptr) {
    return Status::FailedPrecondition("replica session already promoted");
  }
  if (sync_enabled_) {
    // Requires the primary object to still be alive; an async session
    // never touches the (possibly dead) primary here.
    PSTORM_RETURN_IF_ERROR(primary_->SetCommitListener(nullptr));
    sync_enabled_ = false;
    forwarder_.reset();
  }
  PSTORM_RETURN_IF_ERROR(follower_->PromoteToPrimary());
  shipper_.reset();
  applier_.reset();
  PSTORM_LOG(Info) << "replica session: promoted " << follower_path_
                   << " to primary at epoch " << follower_->epoch();
  return std::move(follower_);
}

uint64_t ReplicaSession::lag() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  if (follower_ == nullptr) return 0;
  const uint64_t primary_last = primary_->last_sequence();
  const uint64_t applied = follower_->last_sequence();
  return primary_last > applied ? primary_last - applied : 0;
}

ReplicationStats ReplicaSession::stats() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  ReplicationStats out = base_;
  if (shipper_ != nullptr) {
    out.ship_rounds += shipper_->ship_rounds();
    out.shipped_batches += shipper_->shipped_batches();
    out.shipped_records += shipper_->shipped_records();
    out.shipped_bytes += shipper_->shipped_bytes();
    out.retries += shipper_->retries();
  }
  out.retries += checkpoint_retry_count_;
  if (applier_ != nullptr) {
    out.overlap_records_skipped += applier_->overlap_records_skipped();
    out.divergences += applier_->divergences();
    out.fence_rejections += applier_->fence_rejections();
  }
  if (follower_ != nullptr) {
    const DbStats fs = follower_->stats();
    out.applied_batches += fs.replicated_batches;
    out.applied_records += fs.replicated_records;
  }
  out.checkpoint_ships = checkpoint_ships_;
  return out;
}

Status ReplicaSession::last_tail_error() const {
  std::lock_guard<std::mutex> lock(session_mu_);
  return last_tail_error_;
}

}  // namespace pstorm::storage
