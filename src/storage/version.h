#ifndef PSTORM_STORAGE_VERSION_H_
#define PSTORM_STORAGE_VERSION_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/sstable.h"

namespace pstorm::storage {

/// One live sstable file of a Db. Versions share handles by shared_ptr;
/// when a compaction supersedes a file it marks the handle obsolete, and
/// the file is deleted from the env only when the last Version pinning it
/// is released — the refcounting that lets readers keep serving from a
/// compacted-away table while it is still on "disk".
class TableHandle {
 public:
  /// `env` must outlive the handle (the Db guarantees this for every
  /// version it publishes; iterators must not outlive the Db).
  TableHandle(Env* env, std::string dir, std::string name,
              std::shared_ptr<Table> table)
      : env_(env),
        dir_(std::move(dir)),
        name_(std::move(name)),
        table_(std::move(table)) {}

  TableHandle(const TableHandle&) = delete;
  TableHandle& operator=(const TableHandle&) = delete;

  /// Best-effort deletes the file if the handle was marked obsolete; a
  /// failure leaves an orphan for the next Open's sweep.
  ~TableHandle();

  /// Called by the compaction that stopped referencing this file in the
  /// manifest. Deletion happens at destruction, not here.
  void MarkObsolete() { obsolete_.store(true, std::memory_order_release); }

  const std::string& name() const { return name_; }
  const Table& table() const { return *table_; }

 private:
  Env* env_;
  std::string dir_;
  std::string name_;
  std::shared_ptr<Table> table_;
  std::atomic<bool> obsolete_{false};
};

/// An immutable snapshot of a Db's on-disk state: the newest-first level-0
/// list and the key-disjoint, sorted level-1 run. Readers pin a Version
/// with a shared_ptr and search it without any lock; writers build a new
/// Version and swap it in under the Db's state mutex. A Version is never
/// mutated after publication.
struct Version {
  std::vector<std::shared_ptr<TableHandle>> l0;  // Newest first.
  std::vector<std::shared_ptr<TableHandle>> l1;  // Sorted, key-disjoint.

  /// Searches level 0 (newest first) then level 1 for `key`. Returns the
  /// record (tombstone included) or nothing when no table holds the key.
  Result<std::optional<Table::GetResult>> Get(std::string_view key) const;

  /// Appends one iterator per table, newest-first (L0 order, then L1) —
  /// the child order NewMergingIterator expects after the memtable.
  void AppendIterators(std::vector<std::unique_ptr<Iterator>>* out) const;

  /// Like AppendIterators, but skips every table whose prefix bloom filter
  /// proves it holds no key starting with `prefix` (see
  /// Table::MayContainPrefix for which prefixes are probeable).
  void AppendIteratorsForPrefix(
      std::string_view prefix,
      std::vector<std::unique_ptr<Iterator>>* out) const;

  /// Serialized bytes of every referenced table.
  size_t TotalTableBytes() const;

  /// Marks every referenced handle obsolete (compaction superseded them
  /// all); files die when their last pinning version does.
  void MarkAllObsolete() const;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_VERSION_H_
