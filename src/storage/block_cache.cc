#include "storage/block_cache.h"

#include <atomic>

#include "common/hash.h"
#include "obs/metrics.h"

namespace pstorm::storage {

namespace {

obs::Counter& HitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_block_cache_hits_total");
  return c;
}

obs::Counter& MissesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_block_cache_misses_total");
  return c;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_block_cache_evictions_total");
  return c;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "pstorm_block_cache_bytes");
  return g;
}

struct Key {
  uint64_t file_id;
  uint64_t offset;
  bool operator==(const Key& o) const {
    return file_id == o.file_id && offset == o.offset;
  }
};

struct KeyHash {
  size_t operator()(const Key& k) const {
    return static_cast<size_t>(Mix64(k.file_id * 0x9e3779b97f4a7c15ull ^
                                     Mix64(k.offset)));
  }
};

}  // namespace

/// One LRU node. prev/next form an intrusive list through a sentinel whose
/// prev is the LRU tail (eviction victim) and next the MRU front.
struct BlockCache::Entry {
  uint64_t file_id = 0;
  uint64_t offset = 0;
  std::shared_ptr<const Block> block;
  size_t charge = 0;
  Entry* prev = nullptr;
  Entry* next = nullptr;
};

struct BlockCache::Shard {
  std::mutex mu;
  std::unordered_map<Key, Entry*, KeyHash> index;
  Entry lru;  // Sentinel.
  size_t bytes_used = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;

  Shard() { lru.prev = lru.next = &lru; }

  ~Shard() {
    Entry* e = lru.next;
    while (e != &lru) {
      Entry* next = e->next;
      delete e;
      e = next;
    }
  }

  static void Unlink(Entry* e) {
    e->prev->next = e->next;
    e->next->prev = e->prev;
  }

  void PushFront(Entry* e) {
    e->next = lru.next;
    e->prev = &lru;
    lru.next->prev = e;
    lru.next = e;
  }
};

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_bytes_(capacity_bytes / kNumShards),
      shards_(new Shard[kNumShards]) {}

BlockCache::~BlockCache() {
  BytesGauge().Add(-static_cast<int64_t>(GetStats().bytes_used));
}

BlockCache::Shard* BlockCache::ShardFor(uint64_t file_id, uint64_t offset) {
  const size_t h = KeyHash{}(Key{file_id, offset});
  return &shards_[h % kNumShards];
}

std::shared_ptr<const Block> BlockCache::Lookup(uint64_t file_id,
                                                uint64_t offset) {
  Shard* shard = ShardFor(file_id, offset);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(Key{file_id, offset});
  if (it == shard->index.end()) {
    ++shard->misses;
    MissesCounter().Increment();
    return nullptr;
  }
  Entry* e = it->second;
  Shard::Unlink(e);
  shard->PushFront(e);
  ++shard->hits;
  HitsCounter().Increment();
  return e->block;
}

void BlockCache::Insert(uint64_t file_id, uint64_t offset,
                        std::shared_ptr<const Block> block, size_t charge) {
  Shard* shard = ShardFor(file_id, offset);
  int64_t bytes_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    const Key key{file_id, offset};
    auto it = shard->index.find(key);
    if (it != shard->index.end()) {
      Entry* old = it->second;
      Shard::Unlink(old);
      shard->bytes_used -= old->charge;
      bytes_delta -= static_cast<int64_t>(old->charge);
      shard->index.erase(it);
      delete old;
    }
    Entry* e = new Entry;
    e->file_id = file_id;
    e->offset = offset;
    e->block = std::move(block);
    e->charge = charge;
    shard->PushFront(e);
    shard->index.emplace(key, e);
    shard->bytes_used += charge;
    bytes_delta += static_cast<int64_t>(charge);
    ++shard->inserts;
    while (shard->bytes_used > shard_capacity_bytes_ &&
           shard->lru.prev != &shard->lru) {
      Entry* victim = shard->lru.prev;
      Shard::Unlink(victim);
      shard->index.erase(Key{victim->file_id, victim->offset});
      shard->bytes_used -= victim->charge;
      bytes_delta -= static_cast<int64_t>(victim->charge);
      ++shard->evictions;
      ++evicted;
      delete victim;
    }
  }
  BytesGauge().Add(bytes_delta);
  if (evicted > 0) EvictionsCounter().Add(evicted);
}

BlockCache::Stats BlockCache::GetStats() const {
  Stats stats;
  for (int i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.inserts += shard.inserts;
    stats.bytes_used += shard.bytes_used;
  }
  return stats;
}

double BlockCache::HitRate() const {
  const Stats stats = GetStats();
  const uint64_t total = stats.hits + stats.misses;
  return total == 0 ? 0.0 : static_cast<double>(stats.hits) / total;
}

uint64_t BlockCache::NewFileId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pstorm::storage
