#ifndef PSTORM_STORAGE_MEMTABLE_H_
#define PSTORM_STORAGE_MEMTABLE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "storage/iterator.h"

namespace pstorm::storage {

/// In-memory write buffer. Last write to a key wins in place; deletions are
/// tombstones so a delete can shadow an older value living in an SSTable.
class Memtable {
 public:
  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);

  struct Entry {
    std::string value;
    EntryType type;
  };
  /// The current record for `key`, tombstone included, or nothing if the
  /// memtable has no opinion (the caller then consults older sources).
  std::optional<Entry> Get(std::string_view key) const;

  /// Iterates records in key order, tombstones included. The iterator must
  /// not outlive the memtable and observes a frozen snapshot only if the
  /// memtable is no longer written to (the DB guarantees this for flushes).
  std::unique_ptr<Iterator> NewIterator() const;

  size_t num_entries() const { return entries_.size(); }
  /// Approximate bytes of key + value payload buffered.
  size_t ApproximateBytes() const { return bytes_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
  size_t bytes_ = 0;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_MEMTABLE_H_
