#ifndef PSTORM_STORAGE_REPLICATION_H_
#define PSTORM_STORAGE_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace pstorm::storage {

/// WAL-shipping replication: a primary Db streams its framed, CRC-verified,
/// sequence-numbered log records to a warm-standby follower Db that replays
/// them into its own WAL + memtable — the primary/mirror shape of
/// PostgreSQL/Greenplum WAL replication, scaled to this repo's
/// whole-file-Env world.
///
/// Protocol (pull-based, per ship round):
///   1. The shipper asks the primary for records after the follower's last
///      applied sequence (Db::FetchWalSince). The primary answers with a
///      byte-identical segment of its log — rotated WAL.imm first, then the
///      active WAL — or with `need_checkpoint` when a flush already
///      truncated those records away.
///   2. The applier hands the segment to the follower's ApplyReplicated:
///      epoch-fenced, contiguity-checked, appended verbatim to the
///      follower's WAL, applied to its memtable.
///   3. On `need_checkpoint`, the session bootstraps: Db::Checkpoint() on
///      the primary (consistent pinned-Version snapshot + WAL tail),
///      Db::InstallCheckpoint on the follower's directory, reopen.
///
/// Epoch fencing: every shipped batch carries the primary's epoch; the
/// follower persists the highest epoch it has seen in its manifest before
/// applying that epoch's records, and rejects anything older with
/// FailedPrecondition. PromoteToPrimary() bumps the epoch durably, so a
/// deposed primary (or its shipper) is fenced by every surviving replica.
///
/// Divergence: the applier remembers the frame checksum of recently applied
/// sequences; a re-shipped sequence whose checksum differs is a fork of
/// history and surfaces as Status::Corruption — never silently overwritten.
///
/// Sync vs async:
///   * Async (default): ShipOnce/CatchUp/StartTailing move records after
///     commit; `max_lag_records` bounds how far the follower may trail.
///   * Sync: a Db::CommitListener forwards every committed batch to the
///     applier before the primary's writers are acked (ack-before-commit
///     from the client's perspective). See ReplicaSession::EnableSyncCommit
///     for the ordering rules that make this deadlock-free.

enum class ReplicationMode {
  kAsync,
  kSync,
};

/// Interruptible stop latch for retry/backoff and polling loops: Stop()
/// wakes every waiter immediately and makes all later waits return without
/// sleeping, so teardown never rides out a jittered backoff (which can be
/// retry_backoff_max_micros long). Reset() re-arms the latch for reuse
/// (e.g. StartTailing after a StopTailing).
class StopLatch {
 public:
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = false;
  }

  /// Sleeps up to `micros`; returns true when the latch stopped (callers
  /// abandon their retry loop instead of finishing the wait).
  bool WaitFor(uint64_t micros) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::microseconds(micros),
                        [this] { return stopped_; });
  }

  bool stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool stopped_ = false;
};

struct ReplicationOptions {
  ReplicationMode mode = ReplicationMode::kAsync;
  /// Largest number of records one ship round moves (bounds memory and the
  /// follower's per-batch apply latency).
  size_t max_batch_records = 1024;
  /// Async mode: CatchUp() keeps shipping until the follower trails the
  /// primary by at most this many records.
  uint64_t max_lag_records = 0;
  /// Transient-IoError retry policy for the shipping loop: up to
  /// `max_retries` attempts with jittered exponential backoff from
  /// `retry_backoff_micros`, capped at `retry_backoff_max_micros`.
  int max_retries = 5;
  uint64_t retry_backoff_micros = 200;
  uint64_t retry_backoff_max_micros = 50000;
  uint64_t retry_seed = 0;
  /// How many recently applied (sequence, checksum) pairs the applier keeps
  /// for divergence detection on overlapping re-ships.
  size_t divergence_window = 1024;
};

struct ReplicationStats {
  uint64_t ship_rounds = 0;
  uint64_t shipped_batches = 0;
  uint64_t shipped_records = 0;
  uint64_t shipped_bytes = 0;
  uint64_t checkpoint_ships = 0;
  uint64_t applied_batches = 0;
  uint64_t applied_records = 0;
  /// Re-shipped records that were already applied (verified identical by
  /// checksum, then skipped).
  uint64_t overlap_records_skipped = 0;
  uint64_t retries = 0;
  uint64_t fence_rejections = 0;
  uint64_t divergences = 0;
};

/// Applies shipped segments to a follower Db, tracking what has been
/// applied and guarding against forks. Thread-safe (one internal mutex):
/// the sync-commit forwarder and an async CatchUp may race, and the loser
/// of the race sees its records as already-applied overlap.
class WalApplier {
 public:
  /// `follower` must outlive the applier; seeds the applied watermark from
  /// the follower's recovered last_sequence().
  explicit WalApplier(Db* follower, size_t divergence_window = 1024);

  /// Applies the segment (epoch-fenced through Db::ApplyReplicated).
  /// Overlapping prefixes — sequences at or below the applied watermark —
  /// are checksum-verified against the divergence ring and skipped;
  /// a mismatch is Status::Corruption ("replication fork"). A gap (first
  /// shipped sequence beyond watermark+1) is InvalidArgument: the caller
  /// re-fetches further back or bootstraps.
  Status Apply(uint64_t primary_epoch, const WalSegment& segment);

  /// Highest sequence applied to the follower.
  uint64_t applied_sequence() const;
  uint64_t overlap_records_skipped() const;
  uint64_t divergences() const;
  uint64_t fence_rejections() const;
  Db* follower() const { return follower_; }

 private:
  Db* follower_;
  const size_t divergence_window_;
  mutable std::mutex mu_;
  /// Ring of (sequence, frame checksum) for the last `divergence_window_`
  /// applied records, newest at the back; consecutive sequences.
  std::deque<WalRecordRef> recent_;
  std::atomic<uint64_t> overlap_records_skipped_{0};
  std::atomic<uint64_t> divergences_{0};
  std::atomic<uint64_t> fence_rejections_{0};
};

/// Pulls log segments from the primary and pushes them through a
/// WalApplier, with bounded retry on transient (IoError) fetch failures.
/// Not internally synchronized: callers (ReplicaSession) serialize ship
/// rounds.
class WalShipper {
 public:
  struct ShipOutcome {
    /// Records moved this round (0 = follower already caught up).
    uint64_t shipped_records = 0;
    /// Set when the primary demanded a checkpoint bootstrap; nothing was
    /// shipped and the session must rebuild the follower.
    bool need_checkpoint = false;
    /// Primary last_sequence - follower applied_sequence after the round.
    uint64_t lag = 0;
  };

  /// `primary` and `applier` must outlive the shipper. `stop` (optional)
  /// is the latch the retry backoff waits on; when null the shipper uses
  /// an internal one. An external latch lets one owner (ReplicaSession)
  /// fence every loop it spawned with a single Stop(), without touching
  /// shipper instances that a concurrent bootstrap may be replacing.
  WalShipper(Db* primary, WalApplier* applier,
             const ReplicationOptions& options, StopLatch* stop = nullptr);

  /// Interrupts any in-flight retry backoff: the current ShipOnce/CatchUp
  /// returns promptly (with the last fetch error) instead of sleeping out
  /// the rest of its jittered backoff window — teardown must never block
  /// for up to retry_backoff_max_micros. Safe from any thread. Stops the
  /// external latch when one was supplied.
  void RequestStop() { stop_->Stop(); }

  /// One fetch + apply round, at most options.max_batch_records records.
  Result<ShipOutcome> ShipOnce();

  /// Ship rounds until lag <= options.max_lag_records or a checkpoint is
  /// required (reported via the outcome, not an error).
  Result<ShipOutcome> CatchUp();

  uint64_t ship_rounds() const { return ship_rounds_; }
  uint64_t shipped_batches() const { return shipped_batches_; }
  uint64_t shipped_records() const { return shipped_records_; }
  uint64_t shipped_bytes() const { return shipped_bytes_; }
  uint64_t retries() const { return retries_; }

 private:
  /// FetchWalSince with the retry/backoff schedule applied to IoErrors.
  Result<Db::ShipBatch> FetchWithRetries(uint64_t from_sequence);

  Db* primary_;
  WalApplier* applier_;
  ReplicationOptions options_;
  /// Backing latch when the constructor got none.
  StopLatch own_stop_;
  /// The latch backoffs wait on: external when supplied, else &own_stop_.
  StopLatch* stop_;
  Rng rng_;
  uint64_t ship_rounds_ = 0;
  uint64_t shipped_batches_ = 0;
  uint64_t shipped_records_ = 0;
  uint64_t shipped_bytes_ = 0;
  uint64_t retries_ = 0;
};

/// Owns one warm-standby follower: the follower Db, its applier/shipper
/// pair, optional sync-commit forwarding, optional background tailing, and
/// the checkpoint bootstrap path. The standby's reads are served
/// snapshot-isolated through `replica()` exactly like any Db's.
///
/// Thread-safety: TickOnce/CatchUp/Promote/Enable*/Stop* serialize on an
/// internal mutex. The sync-commit forwarder deliberately does NOT take
/// that mutex (it runs inside the primary's commit path — see
/// EnableSyncCommit) and talks only to the applier, which has its own lock.
class ReplicaSession {
 public:
  struct Options {
    /// Follower Db knobs; `read_only_replica` is forced on.
    DbOptions follower_db;
    ReplicationOptions replication;
  };

  /// Opens (or re-opens, resuming from its recovered state) the follower
  /// at `follower_path` in `follower_env` and wires it to `primary`. All
  /// three pointees must outlive the session. Bootstraps via checkpoint
  /// on first contact if the follower is behind the primary's log.
  static Result<std::unique_ptr<ReplicaSession>> Open(
      Db* primary, Env* follower_env, std::string follower_path,
      Options options = {});

  /// Stops tailing and unregisters any sync-commit listener.
  ~ReplicaSession();

  ReplicaSession(const ReplicaSession&) = delete;
  ReplicaSession& operator=(const ReplicaSession&) = delete;

  /// One ship round; transparently bootstraps from a checkpoint when the
  /// primary demands it. The building block of the tailing loop.
  Status TickOnce();

  /// Ships until the follower is within max_lag_records of the primary.
  Status CatchUp();

  /// Forces a fresh checkpoint bootstrap (divergence recovery).
  Status Rebootstrap();

  /// Registers a Db::CommitListener on the primary that forwards every
  /// committed batch to this follower before writers are acked. Any gap
  /// between the follower's state and the primary's log is healed with a
  /// CatchUp *after* registration (listener first, so no batch is missed;
  /// an interleaved batch that arrives gapped fails that writer once with
  /// InvalidArgument and is healed by the next TickOnce/CatchUp).
  Status EnableSyncCommit();
  /// Unregisters the listener (waits out in-flight batches).
  Status DisableSyncCommit();

  /// Spawns a thread calling TickOnce every `poll_micros` until stopped.
  /// Ship errors are remembered (last_tail_error) and retried next tick.
  void StartTailing(uint64_t poll_micros);
  /// Stops the tail thread promptly: the poll sleep and any in-flight
  /// retry backoff (fetch or checkpoint) are condition-variable waits on
  /// the session's stop latch, so StopTailing returns in milliseconds even
  /// mid-backoff instead of riding out retry_backoff_max_micros.
  void StopTailing();

  /// Fences this session (stop tailing, drop the sync listener), promotes
  /// the follower, and releases it to the caller as a writable primary.
  /// The session is inert afterwards.
  Result<std::unique_ptr<Db>> Promote();

  /// Primary last_sequence - follower applied sequence, saturated at 0.
  uint64_t lag() const;
  ReplicationStats stats() const;
  /// The standby Db for snapshot-isolated reads; owned by the session.
  Db* replica() const { return follower_.get(); }
  Status last_tail_error() const;

 private:
  ReplicaSession(Db* primary, Env* follower_env, std::string follower_path,
                 Options options);

  /// Forwards committed batches straight into the applier. Runs on the
  /// primary's commit path with writer_mu_ released but the batch in
  /// flight: it must not call into the primary's write/maintenance API or
  /// take session_mu_ (ShipOnce holds session_mu_ while FetchWalSince
  /// waits out in-flight batches — taking it here would deadlock).
  class SyncForwarder : public Db::CommitListener {
   public:
    explicit SyncForwarder(WalApplier* applier) : applier_(applier) {}
    Status OnCommit(uint64_t epoch, const WalSegment& batch) override {
      return applier_->Apply(epoch, batch);
    }

   private:
    WalApplier* applier_;
  };

  /// Checkpoint the primary, install on the follower's directory, reopen,
  /// and rewire applier/shipper (and the sync listener, if enabled).
  /// Requires session_mu_ held.
  Status BootstrapLocked();
  Status TickLocked();

  Db* primary_;
  Env* follower_env_;
  const std::string follower_path_;
  Options options_;

  mutable std::mutex session_mu_;
  std::unique_ptr<Db> follower_;
  std::unique_ptr<WalApplier> applier_;
  std::unique_ptr<WalShipper> shipper_;
  std::unique_ptr<SyncForwarder> forwarder_;
  bool sync_enabled_ = false;
  uint64_t checkpoint_ships_ = 0;
  uint64_t checkpoint_retry_count_ = 0;
  /// Counters folded in from shipper/applier/follower instances retired by
  /// a bootstrap, so stats() is cumulative across rebuilds.
  ReplicationStats base_;
  Status last_tail_error_;

  std::thread tail_thread_;
  std::atomic<bool> tailing_{false};
  /// Interrupts the tail loop's poll sleep and every backoff sleep in the
  /// shipper/bootstrap retry loops (the shippers are constructed over this
  /// latch). Re-armed by StartTailing.
  StopLatch stop_latch_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_REPLICATION_H_
