#ifndef PSTORM_STORAGE_SSTABLE_H_
#define PSTORM_STORAGE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/block.h"
#include "storage/bloom.h"
#include "storage/iterator.h"

namespace pstorm::storage {

/// Serialized-table layout:
///
///   data block*
///   filter block      one bloom filter over every key in the table
///   index block       entry per data block: key = last key in the block,
///                     value = fixed64 offset, fixed64 size
///   footer            fixed64 filter_offset, fixed64 filter_size,
///                     fixed64 index_offset, fixed64 index_size,
///                     fixed64 content_hash, fixed64 magic
///
/// `content_hash` covers everything before the footer and lets the reader
/// reject corrupted files.
class TableBuilder {
 public:
  struct Options {
    size_t block_size_bytes = 4096;
    int restart_interval = 16;
    int bloom_bits_per_key = 10;
  };

  TableBuilder() : TableBuilder(Options{}) {}
  explicit TableBuilder(Options options);

  /// Keys must be added in strictly increasing order.
  void Add(std::string_view key, std::string_view value, EntryType type);

  /// Serializes the table and resets the builder.
  std::string Finish();

  size_t num_entries() const { return num_entries_; }

 private:
  void FlushDataBlock();

  Options options_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  std::string file_;
  std::string last_key_;
  size_t num_entries_ = 0;
};

/// Immutable reader over one serialized table. The whole table lives in
/// memory (tables are bounded by the compactor's target file size).
class Table {
 public:
  /// Validates the footer and content hash.
  static Result<std::shared_ptr<Table>> Open(std::string contents);

  /// The value for `key`, the tombstone, or nothing.
  struct GetResult {
    std::string value;
    EntryType type;
  };
  Result<std::optional<GetResult>> Get(std::string_view key) const;

  /// Iterates every record in the table in key order (tombstones included).
  std::unique_ptr<Iterator> NewIterator() const;

  std::string_view smallest_key() const { return smallest_key_; }
  std::string_view largest_key() const { return largest_key_; }
  size_t num_data_blocks() const { return num_data_blocks_; }
  size_t size_bytes() const { return contents_.size(); }

  /// Layout accessors for the iterator implementation; not part of the
  /// intended client API.
  const Block& index() const { return *index_; }
  Result<std::shared_ptr<Block>> ReadBlock(uint64_t offset,
                                           uint64_t size) const;

 private:
  Table() = default;

  std::string contents_;
  std::string_view filter_;            // Points into contents_.
  std::unique_ptr<Block> index_;
  std::string smallest_key_;
  std::string largest_key_;
  size_t num_data_blocks_ = 0;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_SSTABLE_H_
