#ifndef PSTORM_STORAGE_SSTABLE_H_
#define PSTORM_STORAGE_SSTABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/block.h"
#include "storage/block_cache.h"
#include "storage/bloom.h"
#include "storage/codec.h"
#include "storage/iterator.h"

namespace pstorm::storage {

/// Serialized-table layout, format v2 (the default):
///
///   data block*       block payload (compressed per the tag, or raw) then
///                     a 1-byte CodecType tag
///   filter area       varint32-length-prefixed whole-key bloom filter,
///                     varint32-length-prefixed prefix bloom filter,
///                     1 byte prefix delimiter
///   index block       entry per data block: key = last key in the block,
///                     value = fixed64 offset, fixed64 size (both spanning
///                     payload + tag); never compressed
///   footer            fixed64 filter_offset, fixed64 filter_size,
///                     fixed64 index_offset, fixed64 index_size,
///                     fixed64 format_version, fixed64 content_hash,
///                     fixed64 magic ("pstormS2")
///
/// Format v1 ("pstormST" magic, still fully readable and writable via
/// Options::format_version) stores raw data blocks, a bare whole-key filter
/// and a 48-byte footer without the version field.
///
/// `content_hash` covers everything before the footer and lets the reader
/// reject corrupted files.
class TableBuilder {
 public:
  struct Options {
    size_t block_size_bytes = 4096;
    int restart_interval = 16;
    int bloom_bits_per_key = 10;
    /// 2 writes the current format; 1 writes the legacy layout bit-for-bit
    /// (used by the backward-compat tests and readable forever).
    int format_version = 2;
    /// Per-block compression (v2 only). Blocks that do not shrink are
    /// stored raw with a kNone tag, so incompressible data costs 1 byte.
    CodecType codec = CodecType::kLz;
    /// Keys are split at their first occurrence of this byte (inclusive)
    /// to feed the prefix bloom filter; matches hstore's cell-key separator
    /// so `row + '\0'` Get prefixes probe it directly.
    char prefix_delimiter = '\0';
  };

  TableBuilder() : TableBuilder(Options{}) {}
  explicit TableBuilder(Options options);

  /// Keys must be added in strictly increasing order.
  void Add(std::string_view key, std::string_view value, EntryType type);

  /// Serializes the table and resets the builder.
  std::string Finish();

  size_t num_entries() const { return num_entries_; }

 private:
  void FlushDataBlock();

  Options options_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  BloomFilterBuilder prefix_bloom_;
  std::string last_prefix_;
  std::string file_;
  std::string last_key_;
  size_t num_entries_ = 0;
};

/// Immutable reader over one serialized table. The whole (possibly
/// compressed) table lives in memory; decoded data blocks are materialized
/// on demand and, when a BlockCache is attached, served from and inserted
/// into it keyed on this table's process-unique file id.
class Table {
 public:
  /// Validates the footer and content hash. Accepts both format versions.
  /// `cache` may be nullptr for uncached operation.
  static Result<std::shared_ptr<Table>> Open(
      std::string contents, std::shared_ptr<BlockCache> cache = nullptr);

  /// The value for `key`, the tombstone, or nothing.
  struct GetResult {
    std::string value;
    EntryType type;
  };
  Result<std::optional<GetResult>> Get(std::string_view key) const;

  /// Iterates every record in the table in key order (tombstones included).
  std::unique_ptr<Iterator> NewIterator() const;

  /// False only when the table provably holds no key starting with
  /// `prefix`. Usable solely for prefixes of the extraction shape — ending
  /// in, and containing exactly one, prefix delimiter; anything else (and
  /// any v1 table) conservatively returns true.
  bool MayContainPrefix(std::string_view prefix) const;

  std::string_view smallest_key() const { return smallest_key_; }
  std::string_view largest_key() const { return largest_key_; }
  size_t num_data_blocks() const { return num_data_blocks_; }
  size_t size_bytes() const { return contents_.size(); }
  int format_version() const { return format_version_; }
  uint64_t file_id() const { return file_id_; }

  /// Layout accessors for the iterator implementation; not part of the
  /// intended client API.
  const Block& index() const { return *index_; }
  Result<std::shared_ptr<const Block>> ReadBlock(uint64_t offset,
                                                 uint64_t size) const;

 private:
  Table() = default;

  std::string contents_;
  std::string_view filter_;         // Points into contents_.
  std::string_view prefix_filter_;  // Points into contents_; empty on v1.
  char prefix_delimiter_ = '\0';
  int format_version_ = 1;
  uint64_t file_id_ = 0;
  std::shared_ptr<BlockCache> cache_;
  std::unique_ptr<Block> index_;
  std::string smallest_key_;
  std::string largest_key_;
  size_t num_data_blocks_ = 0;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_SSTABLE_H_
