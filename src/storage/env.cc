#include "storage/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pstorm::storage {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// ---------------------------------------------------------------- InMemory

Status InMemoryEnv::CreateDir(const std::string&) { return Status::OK(); }

bool InMemoryEnv::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status InMemoryEnv::WriteFile(const std::string& path,
                              const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = data;
  return Status::OK();
}

Status InMemoryEnv::AppendFile(const std::string& path,
                               const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] += data;
  return Status::OK();
}

Result<std::string> InMemoryEnv::ReadFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Status InMemoryEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status InMemoryEnv::RenameFile(const std::string& from,
                               const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryEnv::ListDir(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir
                                                              : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, _] : files_) {
    if (!StartsWith(path, prefix)) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

// ------------------------------------------------------------------- Posix

Status PosixEnv::CreateDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("create_directories " + path + ": " +
                                 ec.message());
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& path) const {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

namespace internal {

Status WriteSyncCloseFd(int fd, std::string_view data, const std::string& name,
                        const FdOps& ops) {
  Status status;
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ops.write_fn ? ops.write_fn(fd, p, left)
                                   : ::write(fd, p, left);
    if (n < 0) {
      // A signal landing mid-write interrupts the syscall without writing
      // anything; that is a retry, never an IoError.
      if (errno == EINTR) continue;
      status = Status::IoError("write: " + name);
      break;
    }
    // n == 0 on a regular file would loop forever; treat it as the short
    // write it is and retry — POSIX only returns 0 for count == 0, which
    // the loop condition already excludes.
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (status.ok()) {
    int rc = ops.fsync_fn ? ops.fsync_fn(fd) : ::fsync(fd);
    while (rc != 0 && errno == EINTR) {
      rc = ops.fsync_fn ? ops.fsync_fn(fd) : ::fsync(fd);
    }
    if (rc != 0) status = Status::IoError("fsync: " + name);
  }
  // Exactly one close on every path. POSIX leaves the fd state unspecified
  // after EINTR from close, so it is not retried (a retry could close an
  // unrelated fd another thread just opened with the same number).
  const int close_rc = ops.close_fn ? ops.close_fn(fd) : ::close(fd);
  if (status.ok() && close_rc != 0) {
    status = Status::IoError("close: " + name);
  }
  return status;
}

}  // namespace internal

Status PosixEnv::WriteFile(const std::string& path, const std::string& data) {
  // Honour the Env::WriteFile atomicity contract: stage the bytes in a
  // sibling temp file, fsync them, then rename over the target so a crash
  // never exposes a half-written file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("open for write: " + tmp);
  PSTORM_RETURN_IF_ERROR(internal::WriteSyncCloseFd(fd, data, tmp));
  return RenameFile(tmp, path);
}

Status PosixEnv::AppendFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IoError("append: " + path);
  return Status::OK();
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IoError("read: " + path);
  return buf.str();
}

Status PosixEnv::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec)) {
    return Status::NotFound("no such file: " + path);
  }
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) return Status::IoError("rename " + from + " -> " + to + ": " +
                                 ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(
    const std::string& dir) const {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IoError("listdir " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

// --------------------------------------------------------- FaultInjection

void FaultInjectionEnv::CrashAtMutation(uint64_t n) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crash_at_ = n;
  mutations_ = 0;
  crashed_ = false;
}

void FaultInjectionEnv::SetErrorProbability(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  error_probability_ = p;
  rng_ = Rng(seed);
}

void FaultInjectionEnv::SetTransientErrorWindow(uint64_t first,
                                                uint64_t count) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  transient_first_ = first;
  transient_count_ = count;
  mutations_ = 0;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  crash_at_ = 0;
  mutations_ = 0;
  crashed_ = false;
  error_probability_ = 0;
  transient_first_ = 0;
  transient_count_ = 0;
}

Status FaultInjectionEnv::CheckMutation(bool* torn) {
  *torn = false;
  std::lock_guard<std::mutex> lock(fault_mu_);
  const uint64_t n = mutations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IoError("simulated crash: process is down");
  }
  if (crash_at_ != 0 && n >= crash_at_) {
    crashed_.store(true, std::memory_order_relaxed);
    *torn = true;  // The crashing write lands partially.
    return Status::IoError("simulated crash at mutation " +
                           std::to_string(n));
  }
  if (transient_first_ != 0 && n >= transient_first_ &&
      n < transient_first_ + transient_count_) {
    return Status::IoError("injected transient IO error at mutation " +
                           std::to_string(n));
  }
  if (error_probability_ > 0 && rng_.Bernoulli(error_probability_)) {
    return Status::IoError("injected IO error at mutation " +
                           std::to_string(n));
  }
  return Status::OK();
}

Status FaultInjectionEnv::FlipByte(const std::string& path, size_t offset) {
  PSTORM_ASSIGN_OR_RETURN(std::string data, target_->ReadFile(path));
  if (offset >= data.size()) {
    return Status::InvalidArgument("flip offset past end of " + path);
  }
  data[offset] = static_cast<char>(data[offset] ^ 0xff);
  return target_->WriteFile(path, data);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  // Directory creation is metadata-only in both backing envs; not part of
  // the mutation schedule.
  return target_->CreateDir(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) const {
  return target_->FileExists(path);
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    const std::string& data) {
  bool torn;
  const Status fault = CheckMutation(&torn);
  if (fault.ok()) return target_->WriteFile(path, data);
  if (torn) {
    // Model the PosixEnv staging sequence: the crash hit before the rename,
    // so the target keeps its old contents and half the bytes sit in a torn
    // staging file for the next open's orphan sweep to find.
    (void)target_->WriteFile(path + ".tmp", data.substr(0, data.size() / 2));
  }
  return fault;
}

Status FaultInjectionEnv::AppendFile(const std::string& path,
                                     const std::string& data) {
  bool torn;
  const Status fault = CheckMutation(&torn);
  if (fault.ok()) return target_->AppendFile(path, data);
  if (torn) {
    (void)target_->AppendFile(path, data.substr(0, data.size() / 2));
  }
  return fault;
}

Result<std::string> FaultInjectionEnv::ReadFile(
    const std::string& path) const {
  return target_->ReadFile(path);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  bool torn;
  PSTORM_RETURN_IF_ERROR(CheckMutation(&torn));
  return target_->DeleteFile(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool torn;
  PSTORM_RETURN_IF_ERROR(CheckMutation(&torn));
  return target_->RenameFile(from, to);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) const {
  return target_->ListDir(dir);
}

}  // namespace pstorm::storage
