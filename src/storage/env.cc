#include "storage/env.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pstorm::storage {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// ---------------------------------------------------------------- InMemory

Status InMemoryEnv::CreateDir(const std::string&) { return Status::OK(); }

bool InMemoryEnv::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status InMemoryEnv::WriteFile(const std::string& path,
                              const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = data;
  return Status::OK();
}

Result<std::string> InMemoryEnv::ReadFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Status InMemoryEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status InMemoryEnv::RenameFile(const std::string& from,
                               const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryEnv::ListDir(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir
                                                              : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, _] : files_) {
    if (!StartsWith(path, prefix)) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

// ------------------------------------------------------------------- Posix

Status PosixEnv::CreateDir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("create_directories " + path + ": " +
                                 ec.message());
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& path) const {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status PosixEnv::WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IoError("write: " + path);
  return Status::OK();
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IoError("read: " + path);
  return buf.str();
}

Status PosixEnv::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec)) {
    return Status::NotFound("no such file: " + path);
  }
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) return Status::IoError("rename " + from + " -> " + to + ": " +
                                 ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(
    const std::string& dir) const {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IoError("listdir " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace pstorm::storage
