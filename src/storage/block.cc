#include "storage/block.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace pstorm::storage {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  PSTORM_CHECK(restart_interval >= 1);
  restarts_.push_back(0);
}

void BlockBuilder::Add(std::string_view key, std::string_view value,
                       EntryType type) {
  PSTORM_CHECK(num_entries_ == 0 || key > std::string_view(last_key_))
      << "keys must be added in strictly increasing order";
  size_t shared = 0;
  if (count_since_restart_ < restart_interval_) {
    const size_t limit = std::min(last_key_.size(), key.size());
    while (shared < limit && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    count_since_restart_ = 0;
  }

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(key.size() - shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.push_back(static_cast<char>(type));
  buffer_.append(key.data() + shared, key.size() - shared);
  buffer_.append(value.data(), value.size());

  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  ++count_since_restart_;
}

std::string BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));

  std::string out = std::move(buffer_);
  buffer_.clear();
  restarts_.assign(1, 0);
  count_since_restart_ = 0;
  num_entries_ = 0;
  last_key_.clear();
  return out;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

std::unique_ptr<Block> Block::Parse(std::string data) {
  if (data.size() < 4) return nullptr;
  const uint32_t num_restarts = DecodeFixed32(data.data() + data.size() - 4);
  const size_t restart_bytes = static_cast<size_t>(num_restarts) * 4 + 4;
  if (num_restarts == 0 || restart_bytes > data.size()) return nullptr;
  const size_t restarts_offset = data.size() - restart_bytes;
  return std::unique_ptr<Block>(
      new Block(std::move(data), num_restarts, restarts_offset));
}

namespace {

class BlockIterator final : public Iterator {
 public:
  explicit BlockIterator(const Block* block) : block_(block) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    offset_ = 0;
    key_.clear();
    ParseCurrent();
  }

  void Seek(std::string_view target) override {
    // Binary search over restart points: find the last restart whose key is
    // < target, then scan forward.
    uint32_t lo = 0;
    uint32_t hi = block_->num_restarts() - 1;
    while (lo < hi) {
      const uint32_t mid = (lo + hi + 1) / 2;
      std::string_view restart_key = KeyAtRestart(mid);
      if (!status_.ok()) {
        valid_ = false;
        return;
      }
      if (restart_key < target) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    offset_ = RestartOffset(lo);
    key_.clear();
    ParseCurrent();
    while (valid_ && std::string_view(key_) < target) Next();
  }

  void Next() override {
    PSTORM_CHECK(valid_);
    offset_ = next_offset_;
    ParseCurrent();
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }
  EntryType type() const override { return type_; }
  Status status() const override { return status_; }

 private:
  size_t RestartOffset(uint32_t i) const {
    return DecodeFixed32(block_->data().data() + block_->restarts_offset() +
                         static_cast<size_t>(i) * 4);
  }

  // The full key at restart point i (shared is 0 there by construction).
  std::string_view KeyAtRestart(uint32_t i) {
    const size_t off = RestartOffset(i);
    std::string_view input(block_->data().data() + off,
                           block_->restarts_offset() - off);
    uint32_t shared, non_shared, value_len;
    if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
        !GetVarint32(&input, &value_len) || shared != 0 ||
        input.size() < non_shared + 1) {
      status_ = Status::Corruption("bad restart entry");
      return {};
    }
    return input.substr(1, non_shared);  // Skip the type byte.
  }

  void ParseCurrent() {
    if (offset_ >= block_->restarts_offset()) {
      valid_ = false;
      return;
    }
    std::string_view input(block_->data().data() + offset_,
                           block_->restarts_offset() - offset_);
    const size_t before = input.size();
    uint32_t shared, non_shared, value_len;
    if (!GetVarint32(&input, &shared) || !GetVarint32(&input, &non_shared) ||
        !GetVarint32(&input, &value_len) || input.size() < 1) {
      Corrupt();
      return;
    }
    const uint8_t type_byte = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    if (shared > key_.size() || input.size() < non_shared + value_len ||
        type_byte > 1) {
      Corrupt();
      return;
    }
    key_.resize(shared);
    key_.append(input.data(), non_shared);
    value_ = input.substr(non_shared, value_len);
    type_ = static_cast<EntryType>(type_byte);
    const size_t consumed = (before - input.size()) + non_shared + value_len;
    next_offset_ = offset_ + consumed;
    valid_ = true;
  }

  void Corrupt() {
    status_ = Status::Corruption("bad block entry");
    valid_ = false;
  }

  const Block* block_;
  size_t offset_ = 0;
  size_t next_offset_ = 0;
  bool valid_ = false;
  std::string key_;
  std::string_view value_;
  EntryType type_ = EntryType::kValue;
  Status status_;
};

class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(Status status) : status_(std::move(status)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(std::string_view) override {}
  void Next() override { PSTORM_CHECK(false) << "Next on empty iterator"; }
  std::string_view key() const override { return {}; }
  std::string_view value() const override { return {}; }
  EntryType type() const override { return EntryType::kValue; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Block::NewIterator() const {
  return std::make_unique<BlockIterator>(this);
}

std::unique_ptr<Iterator> NewEmptyIterator(Status status) {
  return std::make_unique<EmptyIterator>(std::move(status));
}

}  // namespace pstorm::storage
