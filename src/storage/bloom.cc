#include "storage/bloom.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace pstorm::storage {

namespace {
// Kirsch–Mitzenmacher: probe_i = h1 + i * h2.
constexpr uint64_t kSeed1 = 0xa5a5a5a5a5a5a5a5ULL;
constexpr uint64_t kSeed2 = 0x5a5a5a5a5a5a5a5aULL;
}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  PSTORM_CHECK(bits_per_key > 0);
}

void BloomFilterBuilder::AddKey(std::string_view key) {
  keys_.push_back(Fnv1a64(key, kSeed1));
}

std::string BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln(2), clamped to a sane range.
  int k = static_cast<int>(bits_per_key_ * 0.69);
  k = std::clamp(k, 1, 30);

  size_t bits = keys_.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (uint64_t h1 : keys_) {
    const uint64_t h2 = Mix64(h1 ^ kSeed2) | 1;  // Odd stride.
    uint64_t h = h1;
    for (int i = 0; i < k; ++i) {
      const size_t bit = h % bits;
      filter[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(filter[bit / 8]) | (1u << (bit % 8)));
      h += h2;
    }
  }
  filter.push_back(static_cast<char>(k));
  keys_.clear();
  return filter;
}

bool BloomFilterMayContain(std::string_view filter, std::string_view key) {
  if (filter.size() < 2) return true;
  const int k = static_cast<unsigned char>(filter.back());
  if (k < 1 || k > 30) return true;  // Future-format escape hatch.
  const size_t bits = (filter.size() - 1) * 8;

  const uint64_t h1 = Fnv1a64(key, kSeed1);
  const uint64_t h2 = Mix64(h1 ^ kSeed2) | 1;
  uint64_t h = h1;
  for (int i = 0; i < k; ++i) {
    const size_t bit = h % bits;
    if ((static_cast<unsigned char>(filter[bit / 8]) & (1u << (bit % 8))) ==
        0) {
      return false;
    }
    h += h2;
  }
  return true;
}

}  // namespace pstorm::storage
