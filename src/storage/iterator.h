#ifndef PSTORM_STORAGE_ITERATOR_H_
#define PSTORM_STORAGE_ITERATOR_H_

#include <memory>
#include <string_view>

#include "common/status.h"

namespace pstorm::storage {

/// Whether a record is a live value or a deletion marker. Tombstones are
/// visible to internal (merge/compaction) iterators and hidden from DB
/// clients.
enum class EntryType : uint8_t { kValue = 0, kTombstone = 1 };

/// Forward iterator over ordered key/value records. After construction the
/// iterator is unpositioned; call SeekToFirst or Seek before use. key() and
/// value() views are valid only until the next mutation of the iterator.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first record with key >= target.
  virtual void Seek(std::string_view target) = 0;
  virtual void Next() = 0;

  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  virtual EntryType type() const = 0;

  /// Non-OK if the underlying source was corrupt; iteration stops early.
  virtual Status status() const = 0;
};

/// An iterator over nothing (always invalid), optionally carrying an error.
std::unique_ptr<Iterator> NewEmptyIterator(Status status = Status::OK());

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_ITERATOR_H_
