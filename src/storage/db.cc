#include "storage/db.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "storage/merging_iterator.h"

namespace pstorm::storage {

namespace {

// Process-global mirrors of the per-Db AtomicDbStats, summed across every Db
// in the process for the metrics dump. The per-Db stats stay authoritative
// (tests and callers read those); these exist so one Dump() shows storage
// effort without walking the live Db set.
obs::Counter& WalAppends() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_wal_appends_total");
  return c;
}
/// Physical log IOs; group commit makes this lag pstorm_db_wal_appends_total.
obs::Counter& WalSyncs() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_wal_syncs_total");
  return c;
}
obs::Counter& WalRecordsReplayed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_wal_records_replayed_total");
  return c;
}
obs::Counter& WalTailTruncations() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_wal_tail_truncations_total");
  return c;
}
obs::Counter& Flushes() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_flushes_total");
  return c;
}
obs::Counter& BytesFlushed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_bytes_flushed_total");
  return c;
}
obs::Counter& Compactions() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_compactions_total");
  return c;
}
obs::Counter& BytesCompacted() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_bytes_compacted_total");
  return c;
}
obs::Counter& QuarantinedFiles() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_quarantined_files_total");
  return c;
}
obs::Counter& OrphansRemoved() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_orphans_removed_total");
  return c;
}
obs::Counter& VersionPins() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_version_pins_total");
  return c;
}
obs::Counter& WriteSlowdowns() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_write_slowdowns_total");
  return c;
}
obs::Counter& WriteStalls() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_write_stalls_total");
  return c;
}
/// Background flush/compaction attempts retried after a transient failure.
obs::Counter& BgRetries() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_bg_retries_total");
  return c;
}
/// Writes/batches rejected by epoch fencing or replica read-only mode.
obs::Counter& FenceRejections() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_fence_rejections_total");
  return c;
}
obs::Counter& ReplicatedBatches() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_replicated_batches_total");
  return c;
}
obs::Counter& ReplicatedRecords() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_replicated_records_total");
  return c;
}
obs::Counter& CheckpointsCreated() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_checkpoints_total");
  return c;
}
/// Background tasks queued or running across every Db in the process.
obs::Gauge& MaintQueueDepth() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "pstorm_db_maintenance_queue_depth");
  return g;
}
/// Wall time a writer spent delayed (soft gate) or blocked (hard gate).
obs::Histogram& WriteStallMicrosHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pstorm_db_write_stall_micros");
  return h;
}
/// Serialized bytes written by one background flush or compaction job.
obs::Histogram& MaintJobBytes() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pstorm_db_maintenance_job_bytes");
  return h;
}

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "pstorm-manifest-v1";
constexpr char kWalName[] = "WAL";
/// The rotated log holding exactly the immutable memtable's records while a
/// background flush is in flight; deleted once the flush's manifest lands.
constexpr char kWalImmName[] = "WAL.imm";
constexpr char kQuarantineSuffix[] = ".quarantine";

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Forwards to a wrapped iterator while pinning the snapshot it reads:
/// the memtable copies and the Version (and through it every sstable
/// handle). Keeps the iterator valid across concurrent flushes and
/// compactions.
class PinnedIterator final : public Iterator {
 public:
  PinnedIterator(std::unique_ptr<Iterator> base,
                 std::shared_ptr<const Memtable> memtable,
                 std::shared_ptr<const Memtable> imm,
                 std::shared_ptr<const Version> version)
      : base_(std::move(base)),
        memtable_(std::move(memtable)),
        imm_(std::move(imm)),
        version_(std::move(version)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void Seek(std::string_view target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override { return base_->value(); }
  EntryType type() const override { return base_->type(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  std::shared_ptr<const Memtable> memtable_;
  std::shared_ptr<const Memtable> imm_;
  std::shared_ptr<const Version> version_;
};

}  // namespace

Result<std::unique_ptr<Db>> Db::Open(Env* env, std::string path,
                                     DbOptions options) {
  PSTORM_CHECK(env != nullptr);
  auto db = std::unique_ptr<Db>(new Db(env, std::move(path), options));
  // The cache must exist before LoadManifest opens any table.
  if (options.block_cache != nullptr) {
    db->block_cache_ = options.block_cache;
  } else if (options.block_cache_bytes > 0) {
    db->block_cache_ = std::make_shared<BlockCache>(options.block_cache_bytes);
  }
  db->current_ = std::make_shared<const Version>();
  PSTORM_RETURN_IF_ERROR(env->CreateDir(db->path_));
  db->replica_.store(options.read_only_replica, std::memory_order_release);
  if (env->FileExists(JoinPath(db->path_, kManifestName))) {
    PSTORM_RETURN_IF_ERROR(db->LoadManifest());
  } else {
    PSTORM_RETURN_IF_ERROR(db->WriteManifest(*db->current_, 0));
  }

  // Recover acked-but-unflushed mutations. If the process died while a
  // background flush had the log rotated aside, the rotated log holds the
  // older records: replay it first so the active log's records win, exactly
  // as they did in memtable order before the crash. The logs stay in place
  // until consolidated or truncated below, so a crash during recovery just
  // replays again (replay is idempotent: last write per key wins).
  const std::string wal_path = JoinPath(db->path_, kWalName);
  const std::string wal_imm_path = JoinPath(db->path_, kWalImmName);
  const bool had_rotated_wal = env->FileExists(wal_imm_path);
  uint64_t records_replayed = 0;
  uint64_t replayed_last_sequence = 0;
  bool tail_truncated = false;
  if (had_rotated_wal) {
    PSTORM_ASSIGN_OR_RETURN(WalReplayResult imm_replay,
                            ReplayWal(*env, wal_imm_path, &db->memtable_));
    records_replayed += imm_replay.records_applied;
    replayed_last_sequence =
        std::max(replayed_last_sequence, imm_replay.last_sequence);
    tail_truncated |= imm_replay.truncated_tail;
  }
  PSTORM_ASSIGN_OR_RETURN(WalReplayResult replay,
                          ReplayWal(*env, wal_path, &db->memtable_));
  records_replayed += replay.records_applied;
  replayed_last_sequence =
      std::max(replayed_last_sequence, replay.last_sequence);
  tail_truncated |= replay.truncated_tail;
  db->last_sequence_.store(
      std::max(db->flushed_sequence_.load(), replayed_last_sequence),
      std::memory_order_release);
  db->stats_.wal_records_replayed = records_replayed;
  db->stats_.wal_tail_truncated = tail_truncated ? 1 : 0;
  WalRecordsReplayed().Add(records_replayed);
  if (tail_truncated) {
    WalTailTruncations().Increment();
    PSTORM_LOG(Warning) << "db " << db->path_ << ": WAL tail torn after "
                        << records_replayed
                        << " records; dropping the damaged suffix";
  }
  if (had_rotated_wal || tail_truncated) {
    // Rewrite the active log as the byte-identical concatenation of the
    // intact framed prefixes (rotated log first — its records are older),
    // then drop the rotated one. This both consolidates a mid-flush crash
    // into a single log and amputates a torn tail: leaving the tear in
    // place would let later appends land *behind* garbage, where replay
    // can never reach them. Every step is crash-safe: the rewrite is
    // atomic (tmp+rename), and dying before the delete just means the
    // next open replays the rotated log redundantly (idempotent).
    std::string consolidated;
    if (had_rotated_wal) {
      PSTORM_ASSIGN_OR_RETURN(WalSegment imm_segment,
                              ReadWalSegment(*env, wal_imm_path, 0));
      consolidated += imm_segment.raw;
    }
    PSTORM_ASSIGN_OR_RETURN(WalSegment wal_segment,
                            ReadWalSegment(*env, wal_path, 0));
    consolidated += wal_segment.raw;
    PSTORM_RETURN_IF_ERROR(env->WriteFile(wal_path, consolidated));
    if (had_rotated_wal) {
      PSTORM_RETURN_IF_ERROR(env->DeleteFile(wal_imm_path));
    }
  }
  if (options.wal_enabled) {
    db->wal_ = std::make_unique<WalWriter>(env, wal_path);
  }

  PSTORM_RETURN_IF_ERROR(db->RemoveOrphans());
  if (db->stats_.quarantined_files.load() > 0) {
    // Drop the quarantined tables from the manifest so the next open does
    // not trip over them again.
    PSTORM_RETURN_IF_ERROR(
        db->WriteManifest(*db->current_, db->flushed_sequence_.load()));
  }
  return db;
}

Db::~Db() {
  if (!background_mode()) return;
  std::unique_lock<std::mutex> maint_lock(maint_mu_);
  shutting_down_ = true;
  maint_cv_.notify_all();
  // The task captures a raw `this`: it must fully drain before members are
  // torn down. Clearing bg_scheduled_ is its final touch of the Db.
  maint_cv_.wait(maint_lock, [this] { return !bg_scheduled_; });
}

Status Db::RemoveOrphans() {
  PSTORM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          env_->ListDir(path_));
  std::vector<std::string> live = {kManifestName, kWalName, kWalImmName};
  for (const auto& handle : current_->l0) live.push_back(handle->name());
  for (const auto& handle : current_->l1) live.push_back(handle->name());
  for (const std::string& name : names) {
    if (std::find(live.begin(), live.end(), name) != live.end()) continue;
    if (EndsWith(name, kQuarantineSuffix)) continue;  // Kept for forensics.
    // Anything else is debris from a crashed flush, compaction, or staged
    // write (.tmp): unreferenced, so deleting it cannot lose data.
    const Status s = env_->DeleteFile(JoinPath(path_, name));
    if (s.ok()) {
      ++stats_.orphans_removed;
      OrphansRemoved().Increment();
      PSTORM_LOG(Info) << "db " << path_ << ": removed orphaned file "
                       << name;
    } else {
      PSTORM_LOG(Warning) << "db " << path_ << ": could not remove orphan "
                          << name << ": " << s.ToString();
    }
  }
  return Status::OK();
}

Status Db::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  return WriteImpl(EntryType::kValue, key, value);
}

Status Db::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  return WriteImpl(EntryType::kTombstone, key, {});
}

Status Db::WriteImpl(EntryType type, std::string_view key,
                     std::string_view value) {
  Writer w;
  w.type = type;
  w.key = key;
  w.value = value;

  std::unique_lock<std::mutex> writer_lock(writer_mu_);
  if (replica_.load(std::memory_order_relaxed)) {
    // Replica fence: a standby only mutates through ApplyReplicated. This
    // is also what a deposed primary's clients see after failover.
    ++stats_.fence_rejections;
    FenceRejections().Increment();
    return Status::FailedPrecondition(
        "db is a read-only replica; writes go to the primary");
  }
  writers_.push_back(&w);
  writers_cv_.wait(writer_lock, [&] {
    return w.done || (!batch_in_flight_ && writers_.front() == &w);
  });
  if (w.done) return w.status;  // A leader committed this write for us.

  // Leader. Admission control runs once per batch: writers that queued up
  // behind a throttled leader have already paid the delay by waiting.
  if (background_mode()) {
    const Status throttle = MaybeThrottleLocked();
    if (!throttle.ok()) {
      // Fail only this write; the next front writer retries admission
      // itself.
      writers_.pop_front();
      writers_cv_.notify_all();
      return throttle;
    }
  }

  // Everything queued right now rides in this batch. Writers arriving
  // during the WAL IO below queue behind it for the next leader.
  const size_t batch_size = writers_.size();
  // The leader stamps commit sequences: base+1 .. base+batch_size, in
  // queue order. Only the (serialized) leader advances last_sequence_, and
  // only after the batch is durable — a failed append reuses the range,
  // which is safe because nothing durable carries those sequences.
  const uint64_t base_sequence =
      last_sequence_.load(std::memory_order_relaxed);
  Status s;
  Status ship;
  if (wal_ != nullptr) {
    // Log before memtable: a mutation is acked only once it would survive
    // a crash. The whole batch goes down in one append — one fsync on a
    // real filesystem — which is the point of the group commit.
    WalSegment batch;
    for (size_t i = 0; i < batch_size; ++i) {
      const Writer* writer = writers_[i];
      const uint64_t sequence = base_sequence + 1 + i;
      const std::string frame =
          EncodeWalRecord(sequence, writer->type, writer->key, writer->value);
      batch.records.push_back(WalRecordRef{sequence,
                                           DecodeFixed32(frame.data() + 4),
                                           batch.raw.size(), frame.size()});
      batch.raw += frame;
    }
    // Copied under the lock; SetCommitListener waits out in-flight batches,
    // so the pointee outlives this call even though the lock drops.
    CommitListener* const listener = commit_listener_;
    const uint64_t commit_epoch = epoch_.load(std::memory_order_relaxed);
    batch_in_flight_ = true;
    writer_lock.unlock();
    s = wal_->AppendBatch(batch.raw);
    if (s.ok() && listener != nullptr) {
      // Sync replication hook. The batch is locally durable either way; a
      // ship failure is reported to the writers (see CommitListener docs).
      ship = listener->OnCommit(commit_epoch, batch);
    }
    writer_lock.lock();
    batch_in_flight_ = false;
    if (s.ok()) {
      stats_.wal_appends += batch_size;
      ++stats_.wal_syncs;
      WalAppends().Add(batch_size);
      WalSyncs().Increment();
    }
  }
  if (s.ok()) {
    {
      std::unique_lock<std::shared_mutex> state_lock(state_mu_);
      for (size_t i = 0; i < batch_size; ++i) {
        const Writer* writer = writers_[i];
        if (writer->type == EntryType::kValue) {
          memtable_.Put(writer->key, writer->value);
        } else {
          memtable_.Delete(writer->key);
        }
      }
    }
    last_sequence_.store(base_sequence + batch_size,
                         std::memory_order_release);
    // Locally committed but possibly not replicated: surface the ship
    // error to every writer in the batch.
    if (!ship.ok()) s = ship;
  }
  for (size_t i = 0; i < batch_size; ++i) {
    Writer* writer = writers_.front();
    writers_.pop_front();
    if (writer != &w) {
      writer->status = s;
      writer->done = true;
    }
  }
  writers_cv_.notify_all();
  if (!s.ok()) return s;
  return MaybeFlushLocked();
}

std::unique_lock<std::mutex> Db::LockWriterForMaintenance() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  writers_cv_.wait(lock, [this] { return !batch_in_flight_; });
  return lock;
}

Status Db::MaybeFlushLocked() {
  // Reading the memtable without state_mu_ is safe here: writer_mu_ is
  // held, so no one else can be mutating it.
  if (memtable_.ApproximateBytes() < options_.memtable_flush_bytes) {
    return Status::OK();
  }
  if (background_mode()) {
    // The write itself is done; just move the full memtable aside and let
    // the scheduler persist it.
    return ScheduleMemtableSwapLocked();
  }
  return FlushLocked();
}

// --- Background scheduler -------------------------------------------------

size_t Db::L0Count() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return current_->l0.size();
}

bool Db::HasImm() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return imm_ != nullptr;
}

Status Db::MaybeThrottleLocked() {
  const int stop = options_.l0_stop_threshold;
  const int slowdown = options_.l0_slowdown_threshold;
  std::unique_lock<std::mutex> maint_lock(maint_mu_);
  if (!bg_error_.ok()) return bg_error_;
  if (stop > 0 && static_cast<int>(L0Count()) >= stop) {
    // Hard gate: level 0 is so far behind that admitting more flushes
    // would only dig the hole deeper. Demand a compaction (even below the
    // cascade trigger) and block until it brings L0 back under the line.
    ++stats_.write_stalls;
    WriteStalls().Increment();
    compact_requested_ = true;
    ScheduleMaintenanceLocked();
    const auto start = std::chrono::steady_clock::now();
    maint_cv_.wait(maint_lock, [&] {
      return !bg_error_.ok() || shutting_down_ ||
             static_cast<int>(L0Count()) < stop;
    });
    const uint64_t micros = ElapsedMicros(start);
    stats_.stall_micros += micros;
    WriteStallMicrosHist().Record(micros);
    if (!bg_error_.ok()) return bg_error_;
    return Status::OK();
  }
  if (slowdown > 0 && static_cast<int>(L0Count()) >= slowdown) {
    // Soft gate: cede a little time per write so compaction gains ground
    // instead of escalating straight to a full stop.
    ++stats_.write_slowdowns;
    WriteSlowdowns().Increment();
    maint_lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::microseconds(kSlowdownDelayMicros));
    stats_.stall_micros += kSlowdownDelayMicros;
    WriteStallMicrosHist().Record(kSlowdownDelayMicros);
  }
  return Status::OK();
}

Status Db::ScheduleMemtableSwapLocked() {
  if (memtable_.empty()) return Status::OK();
  std::unique_lock<std::mutex> maint_lock(maint_mu_);
  if (!bg_error_.ok()) return bg_error_;
  if (HasImm()) {
    // Only one memtable can be in flight; wait for the scheduler to drain
    // the previous one. This is the memtable-full stall.
    ++stats_.write_stalls;
    WriteStalls().Increment();
    ScheduleMaintenanceLocked();
    const auto start = std::chrono::steady_clock::now();
    maint_cv_.wait(maint_lock,
                   [&] { return !bg_error_.ok() || !HasImm(); });
    const uint64_t micros = ElapsedMicros(start);
    stats_.stall_micros += micros;
    WriteStallMicrosHist().Record(micros);
    if (!bg_error_.ok()) return bg_error_;
  }
  // Rotate the log: the records of the memtable being swapped move aside
  // with it, and the active log restarts empty for the fresh memtable. The
  // rotated log is deleted only after the flush's manifest lands, so every
  // acked record stays recoverable throughout.
  if (wal_ != nullptr && env_->FileExists(JoinPath(path_, kWalName))) {
    PSTORM_RETURN_IF_ERROR(env_->RenameFile(JoinPath(path_, kWalName),
                                            JoinPath(path_, kWalImmName)));
  }
  // Everything in the memtable being swapped is covered by last_sequence_
  // (writer_mu_ is held, no batch in flight): that is the watermark the
  // flush's manifest will persist as `last_seq`.
  imm_last_sequence_.store(last_sequence_.load(std::memory_order_acquire),
                           std::memory_order_release);
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    imm_ = std::make_shared<const Memtable>(std::move(memtable_));
    memtable_ = Memtable();
  }
  ScheduleMaintenanceLocked();
  return Status::OK();
}

void Db::SetScheduledLocked(bool scheduled) {
  if (bg_scheduled_ == scheduled) return;
  bg_scheduled_ = scheduled;
  MaintQueueDepth().Add(scheduled ? 1 : -1);
}

void Db::ScheduleMaintenanceLocked() {
  if (bg_scheduled_ || shutting_down_ || !bg_error_.ok()) return;
  SetScheduledLocked(true);
  options_.maintenance_pool->Schedule([this] { BackgroundWork(); });
}

void Db::BackgroundWork() {
  while (true) {
    bool want_compact = false;
    {
      std::lock_guard<std::mutex> maint_lock(maint_mu_);
      if (shutting_down_) {
        SetScheduledLocked(false);
        maint_cv_.notify_all();
        return;
      }
      // Read-and-clear: a request arriving mid-compaction schedules
      // another pass on the next loop iteration.
      want_compact = compact_requested_;
      compact_requested_ = false;
    }

    Status s = Status::OK();
    if (HasImm()) {
      s = RunWithBgRetries("flush", [this] { return DoBackgroundFlush(); });
    }
    if (s.ok() &&
        (want_compact || static_cast<int>(L0Count()) >=
                             options_.l0_compaction_trigger)) {
      s = RunWithBgRetries("compaction",
                           [this] { return DoBackgroundCompaction(); });
    }

    std::lock_guard<std::mutex> maint_lock(maint_mu_);
    if (!s.ok()) {
      // Latch the first failure: writers and WaitForIdle report it from
      // now on, and no further background work is admitted. Reopening the
      // Db recovers from the WAL + manifest.
      PSTORM_LOG(Warning) << "db " << path_
                          << ": background maintenance failed: "
                          << s.ToString();
      if (bg_error_.ok()) bg_error_ = s;
      SetScheduledLocked(false);
      maint_cv_.notify_all();
      return;
    }
    // More work may have arrived while this job ran (the check happens
    // under maint_mu_, so a writer either saw bg_scheduled_ still true or
    // will be seen here).
    const bool more = !shutting_down_ &&
                      (HasImm() || compact_requested_ ||
                       static_cast<int>(L0Count()) >=
                           options_.l0_compaction_trigger);
    if (more) {
      maint_cv_.notify_all();
      continue;
    }
    SetScheduledLocked(false);
    maint_cv_.notify_all();
    return;
  }
}

Status Db::RunWithBgRetries(const char* what,
                            const std::function<Status()>& job) {
  Status s = job();
  uint64_t backoff = options_.bg_retry_backoff_micros;
  for (int attempt = 0; !s.ok() && attempt < options_.bg_failure_retries;
       ++attempt) {
    const uint64_t capped =
        std::min(backoff, options_.bg_retry_backoff_max_micros);
    // Half the window fixed + half jittered, so colliding Dbs desynchronize
    // without ever retrying immediately.
    const uint64_t sleep_micros =
        capped / 2 + bg_rng_.NextUint64(capped / 2 + 1);
    {
      std::unique_lock<std::mutex> maint_lock(maint_mu_);
      if (shutting_down_) return s;
      ++stats_.bg_retries;
      BgRetries().Increment();
      PSTORM_LOG(Warning) << "db " << path_ << ": background " << what
                          << " failed (" << s.ToString() << "); retry "
                          << (attempt + 1) << "/"
                          << options_.bg_failure_retries << " in "
                          << sleep_micros << "us";
      // Interruptible backoff: shutdown must not wait out the full sleep.
      maint_cv_.wait_for(maint_lock, std::chrono::microseconds(sleep_micros),
                         [this] { return shutting_down_; });
      if (shutting_down_) return s;
    }
    backoff = std::min(backoff * 2, options_.bg_retry_backoff_max_micros);
    s = job();
  }
  return s;
}

Status Db::DoBackgroundFlush() {
  // Only this (single) background task clears imm_, so the snapshot stays
  // the flush source even after the lock drops; immutability makes the
  // read below lock-free.
  std::shared_ptr<const Memtable> imm;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    imm = imm_;
  }
  if (imm == nullptr) return Status::OK();

  size_t bytes = 0;
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<TableHandle> handle,
                          BuildTableFromMemtable(*imm, &bytes));
  auto base = PinVersion();
  auto next = std::make_shared<Version>();
  next->l0.push_back(std::move(handle));
  next->l0.insert(next->l0.end(), base->l0.begin(), base->l0.end());
  next->l1 = base->l1;
  // The manifest records the swap-time watermark: every sequence up to it
  // is durable in `next`'s sstables. flushed_sequence_ advances only after
  // the manifest referencing those tables has landed.
  const uint64_t durable_sequence =
      imm_last_sequence_.load(std::memory_order_acquire);
  PSTORM_RETURN_IF_ERROR(WriteManifest(*next, durable_sequence));
  flushed_sequence_.store(durable_sequence, std::memory_order_release);
  // The flushed records are durable and referenced; the rotated log that
  // carried them is dead weight. Deleting it before publishing keeps the
  // invariant that an existing WAL.imm always shadows a pending imm_.
  const std::string imm_wal = JoinPath(path_, kWalImmName);
  if (env_->FileExists(imm_wal)) {
    PSTORM_RETURN_IF_ERROR(env_->DeleteFile(imm_wal));
  }
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = std::move(next);
    imm_.reset();
  }
  ++stats_.flushes;
  stats_.bytes_flushed += bytes;
  Flushes().Increment();
  BytesFlushed().Add(bytes);
  MaintJobBytes().Record(bytes);
  return Status::OK();
}

Status Db::DoBackgroundCompaction() {
  // The single background task is the only mutator of current_ in
  // background mode, so `base` cannot be superseded mid-merge.
  auto base = PinVersion();
  if (base->l0.empty() && base->l1.size() <= 1) return Status::OK();
  size_t bytes = 0;
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Version> next,
                          BuildCompactedVersion(*base, &bytes));
  // Compaction rewrites tables without absorbing new records, so the
  // durability watermark is unchanged.
  PSTORM_RETURN_IF_ERROR(WriteManifest(*next, flushed_sequence_.load()));
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = next;
  }
  ++stats_.compactions;
  Compactions().Increment();
  MaintJobBytes().Record(bytes);
  // The superseded files stay on disk while any reader still pins them;
  // each is deleted when its last pinning Version is released (see
  // TableHandle).
  base->MarkAllObsolete();
  return Status::OK();
}

Status Db::WaitForIdle() const {
  if (!background_mode()) return Status::OK();
  std::unique_lock<std::mutex> maint_lock(maint_mu_);
  maint_cv_.wait(maint_lock, [this] {
    return !bg_scheduled_ && (!bg_error_.ok() || !HasImm());
  });
  return bg_error_;
}

// --- Shared flush/compaction mechanics ------------------------------------

std::shared_ptr<const Version> Db::PinVersion() const {
  VersionPins().Increment();
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return current_;
}

Result<std::string> Db::Get(std::string_view key) const {
  std::shared_ptr<const Version> version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (auto entry = memtable_.Get(key); entry.has_value()) {
      if (entry->type == EntryType::kTombstone) {
        return Status::NotFound("deleted");
      }
      return entry->value;
    }
    if (imm_ != nullptr) {
      if (auto entry = imm_->Get(key); entry.has_value()) {
        if (entry->type == EntryType::kTombstone) {
          return Status::NotFound("deleted");
        }
        return entry->value;
      }
    }
    version = current_;
  }
  // The sstable search runs lock-free on the pinned version.
  PSTORM_ASSIGN_OR_RETURN(auto hit, version->Get(key));
  if (hit.has_value()) {
    if (hit->type == EntryType::kTombstone) {
      return Status::NotFound("deleted");
    }
    return std::move(hit->value);
  }
  return Status::NotFound("no such key");
}

size_t Db::num_level0_tables() const { return PinVersion()->l0.size(); }

size_t Db::num_level1_tables() const { return PinVersion()->l1.size(); }

size_t Db::memtable_entries() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return memtable_.num_entries();
}

size_t Db::ApproximateSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return memtable_.ApproximateBytes() +
         (imm_ != nullptr ? imm_->ApproximateBytes() : 0) +
         current_->TotalTableBytes();
}

DbStats Db::stats() const {
  DbStats out;
  out.flushes = stats_.flushes.load();
  out.compactions = stats_.compactions.load();
  out.bytes_flushed = stats_.bytes_flushed.load();
  out.bytes_compacted = stats_.bytes_compacted.load();
  out.wal_appends = stats_.wal_appends.load();
  out.wal_syncs = stats_.wal_syncs.load();
  out.wal_records_replayed = stats_.wal_records_replayed.load();
  out.wal_tail_truncated = stats_.wal_tail_truncated.load();
  out.quarantined_files = stats_.quarantined_files.load();
  out.orphans_removed = stats_.orphans_removed.load();
  out.write_slowdowns = stats_.write_slowdowns.load();
  out.write_stalls = stats_.write_stalls.load();
  out.stall_micros = stats_.stall_micros.load();
  out.bg_retries = stats_.bg_retries.load();
  out.replicated_batches = stats_.replicated_batches.load();
  out.replicated_records = stats_.replicated_records.load();
  out.fence_rejections = stats_.fence_rejections.load();
  out.checkpoints_created = stats_.checkpoints_created.load();
  out.epoch = epoch_.load(std::memory_order_acquire);
  out.last_sequence = last_sequence_.load(std::memory_order_acquire);
  out.flushed_sequence = flushed_sequence_.load(std::memory_order_acquire);
  out.is_replica = replica_.load(std::memory_order_acquire) ? 1 : 0;
  return out;
}

std::unique_ptr<Iterator> Db::NewIterator() const {
  std::shared_ptr<const Memtable> memtable;
  std::shared_ptr<const Memtable> imm;
  std::shared_ptr<const Version> version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    memtable = std::make_shared<const Memtable>(memtable_);
    imm = imm_;
    version = current_;
  }
  // Newest source first: the merging iterator resolves duplicate keys in
  // child order (memtable shadows imm shadows tables).
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(memtable->NewIterator());
  if (imm != nullptr) children.push_back(imm->NewIterator());
  version->AppendIterators(&children);
  return std::make_unique<PinnedIterator>(
      NewLiveRecordIterator(NewMergingIterator(std::move(children))),
      std::move(memtable), std::move(imm), std::move(version));
}

std::unique_ptr<Iterator> Db::NewPrefixIterator(
    std::string_view prefix) const {
  std::shared_ptr<const Memtable> memtable;
  std::shared_ptr<const Memtable> imm;
  std::shared_ptr<const Version> version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    memtable = std::make_shared<const Memtable>(memtable_);
    imm = imm_;
    version = current_;
  }
  // Same merge as NewIterator, minus every table whose prefix bloom filter
  // rejects the prefix — the win this iterator exists for. The memtables
  // always participate (no filter covers them).
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(memtable->NewIterator());
  if (imm != nullptr) children.push_back(imm->NewIterator());
  version->AppendIteratorsForPrefix(prefix, &children);
  return std::make_unique<PinnedIterator>(
      NewLiveRecordIterator(NewMergingIterator(std::move(children))),
      std::move(memtable), std::move(imm), std::move(version));
}

std::string Db::NewFileName() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(next_file_number_++));
  return buf;
}

Result<std::shared_ptr<TableHandle>> Db::BuildTableFromMemtable(
    const Memtable& memtable, size_t* bytes) {
  TableBuilder builder(options_.table_options);
  auto iter = memtable.NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    builder.Add(iter->key(), iter->value(), iter->type());
  }
  const std::string contents = builder.Finish();
  const std::string name = NewFileName();
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          Table::Open(contents, block_cache_));
  *bytes = contents.size();
  return std::make_shared<TableHandle>(env_, path_, name, std::move(table));
}

Status Db::Flush() {
  if (background_mode()) {
    {
      std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
      PSTORM_RETURN_IF_ERROR(ScheduleMemtableSwapLocked());
    }
    // Preserve the synchronous contract callers (hstore splits, tests)
    // rely on: when Flush returns, the data is in tables.
    return WaitForIdle();
  }
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  return FlushLocked();
}

Status Db::FlushLocked() {
  // writer_mu_ is held: the memtable cannot be mutated underneath us, and
  // concurrent readers only read it, so building the table needs no lock.
  if (memtable_.empty()) return Status::OK();
  size_t bytes = 0;
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<TableHandle> handle,
                          BuildTableFromMemtable(memtable_, &bytes));
  auto next = std::make_shared<Version>();
  next->l0.push_back(std::move(handle));
  next->l0.insert(next->l0.end(), current_->l0.begin(), current_->l0.end());
  next->l1 = current_->l1;
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = std::move(next);
    memtable_ = Memtable();
  }
  ++stats_.flushes;
  stats_.bytes_flushed += bytes;
  Flushes().Increment();
  BytesFlushed().Add(bytes);
  // writer_mu_ is held with no batch in flight, so last_sequence_ covers
  // exactly what the table just absorbed.
  const uint64_t durable_sequence =
      last_sequence_.load(std::memory_order_acquire);
  PSTORM_RETURN_IF_ERROR(WriteManifest(*current_, durable_sequence));
  flushed_sequence_.store(durable_sequence, std::memory_order_release);
  // The flushed records are durable in the sstable now; the log restarts
  // empty. Ordering matters: truncating before the manifest lands would
  // open a window where a crash loses the flushed-but-unreferenced data.
  if (wal_ != nullptr) {
    PSTORM_RETURN_IF_ERROR(wal_->Truncate());
  }
  if (static_cast<int>(current_->l0.size()) >=
      options_.l0_compaction_trigger) {
    return CompactAllLocked();
  }
  return Status::OK();
}

Status Db::CompactAll() {
  if (background_mode()) {
    {
      std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
      PSTORM_RETURN_IF_ERROR(ScheduleMemtableSwapLocked());
      std::lock_guard<std::mutex> maint_lock(maint_mu_);
      compact_requested_ = true;
      ScheduleMaintenanceLocked();
    }
    return WaitForIdle();
  }
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  return CompactAllLocked();
}

Status Db::CompactAllLocked() {
  PSTORM_RETURN_IF_ERROR(FlushLocked());  // Fold any buffered writes in too.
  // current_ is stable while writer_mu_ is held; keep a pin for the merge.
  const std::shared_ptr<const Version> base = current_;
  if (base->l0.empty() && base->l1.size() <= 1) return Status::OK();
  size_t bytes = 0;
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Version> next,
                          BuildCompactedVersion(*base, &bytes));
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = next;
  }
  ++stats_.compactions;
  Compactions().Increment();
  PSTORM_RETURN_IF_ERROR(WriteManifest(*next, flushed_sequence_.load()));

  // The superseded files stay on disk while any reader still pins them;
  // each is deleted when its last pinning Version is released (see
  // TableHandle). With no readers that is right now, as `base` drops.
  base->MarkAllObsolete();
  return Status::OK();
}

Result<std::shared_ptr<Version>> Db::BuildCompactedVersion(
    const Version& base, size_t* bytes) {
  // Merge every table. Any memtable contents are strictly newer than the
  // tables and stay out of the merge, so dropping a tombstone here cannot
  // resurrect anything: the merge covers every record the tombstone could
  // ever have shadowed.
  std::vector<std::unique_ptr<Iterator>> children;
  base.AppendIterators(&children);
  auto merged = NewMergingIterator(std::move(children));

  auto next = std::make_shared<Version>();
  TableBuilder builder(options_.table_options);
  size_t built_bytes = 0;
  size_t total_bytes = 0;
  auto emit_table = [&]() -> Status {
    if (builder.num_entries() == 0) return Status::OK();
    const std::string contents = builder.Finish();
    const std::string name = NewFileName();
    PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
    PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            Table::Open(contents, block_cache_));
    next->l1.push_back(std::make_shared<TableHandle>(env_, path_, name,
                                                     std::move(table)));
    stats_.bytes_compacted += contents.size();
    BytesCompacted().Add(contents.size());
    total_bytes += contents.size();
    built_bytes = 0;
    return Status::OK();
  };

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    // Full-database compaction: tombstones have shadowed everything they
    // ever will, so drop them.
    if (merged->type() == EntryType::kTombstone) continue;
    builder.Add(merged->key(), merged->value(), EntryType::kValue);
    built_bytes += merged->key().size() + merged->value().size();
    if (built_bytes >= options_.target_file_bytes) {
      PSTORM_RETURN_IF_ERROR(emit_table());
    }
  }
  PSTORM_RETURN_IF_ERROR(merged->status());
  PSTORM_RETURN_IF_ERROR(emit_table());
  *bytes = total_bytes;
  return next;
}

Status Db::WriteManifest(const Version& version, uint64_t flushed_seq) {
  std::string out(kManifestHeader);
  out += "\n";
  out += "next_file " + std::to_string(next_file_number_.load()) + "\n";
  out += "last_seq " + std::to_string(flushed_seq) + "\n";
  // The fenced epoch record: a manifest carrying epoch E rejects shipped
  // batches from any primary announcing an epoch < E after reopen.
  out += "epoch " + std::to_string(epoch_.load()) + "\n";
  for (const auto& handle : version.l0) out += "l0 " + handle->name() + "\n";
  for (const auto& handle : version.l1) out += "l1 " + handle->name() + "\n";
  const std::string tmp = JoinPath(path_, std::string(kManifestName) + ".tmp");
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(tmp, out));
  return env_->RenameFile(tmp, JoinPath(path_, kManifestName));
}

Result<std::shared_ptr<Table>> Db::LoadTable(const std::string& file_name) {
  PSTORM_ASSIGN_OR_RETURN(std::string contents,
                          env_->ReadFile(JoinPath(path_, file_name)));
  return Table::Open(std::move(contents), block_cache_);
}

Status Db::LoadManifest() {
  PSTORM_ASSIGN_OR_RETURN(std::string manifest,
                          env_->ReadFile(JoinPath(path_, kManifestName)));
  std::vector<std::string> lines = StrSplit(manifest, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return Status::Corruption("bad manifest header");
  }
  auto loaded = std::make_shared<Version>();
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> parts = StrSplit(lines[i], ' ');
    if (parts.size() != 2) return Status::Corruption("bad manifest line");
    if (parts[0] == "next_file" || parts[0] == "last_seq" ||
        parts[0] == "epoch") {
      char* end = nullptr;
      const uint64_t value = std::strtoull(parts[1].c_str(), &end, 10);
      if (end == parts[1].c_str() || *end != '\0') {
        return Status::Corruption("bad " + parts[0] + " value");
      }
      if (parts[0] == "next_file") {
        next_file_number_ = value;
      } else if (parts[0] == "last_seq") {
        flushed_sequence_.store(value, std::memory_order_release);
      } else {
        // A pre-replication manifest has no epoch line; the member default
        // (epoch 1) covers it.
        epoch_.store(value, std::memory_order_release);
      }
    } else if (parts[0] == "l0" || parts[0] == "l1") {
      Result<std::shared_ptr<Table>> table = LoadTable(parts[1]);
      if (!table.ok()) {
        // Graceful degradation: one rotten table must not take the whole
        // store down. Rename it aside (keeping the bytes for forensics),
        // count it, and serve what is left — the layers above turn the
        // missing rows into No Match Found.
        PSTORM_LOG(Warning) << "db " << path_ << ": quarantining sstable "
                            << parts[1] << ": " << table.status().ToString();
        const Status rename = env_->RenameFile(
            JoinPath(path_, parts[1]),
            JoinPath(path_, parts[1] + kQuarantineSuffix));
        if (!rename.ok()) {
          PSTORM_LOG(Warning) << "db " << path_ << ": quarantine rename of "
                              << parts[1] << " failed: " << rename.ToString();
        }
        ++stats_.quarantined_files;
        QuarantinedFiles().Increment();
        continue;
      }
      auto& level = parts[0] == "l0" ? loaded->l0 : loaded->l1;
      level.push_back(std::make_shared<TableHandle>(
          env_, path_, parts[1], std::move(table).value()));
    } else {
      return Status::Corruption("unknown manifest tag: " + parts[0]);
    }
  }
  current_ = std::move(loaded);
  return Status::OK();
}

// --- Replication ----------------------------------------------------------

Result<Db::ShipBatch> Db::FetchWalSince(uint64_t from_sequence) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "WAL disabled: nothing to ship; replication requires wal_enabled");
  }
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  ShipBatch out;
  out.epoch = epoch_.load(std::memory_order_acquire);

  const std::string wal_path = JoinPath(path_, kWalName);
  const std::string imm_path = JoinPath(path_, kWalImmName);
  // writer_mu_ keeps new appends out, but a background flush can still
  // truncate/delete a log mid-read; detect that by re-checking the
  // durability watermark and retrying.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint64_t flushed_before =
        flushed_sequence_.load(std::memory_order_acquire);
    if (from_sequence <= flushed_before) {
      // The log no longer reaches back that far — a flush truncated the
      // records away. The follower must bootstrap from a checkpoint.
      out.need_checkpoint = true;
      out.segment = WalSegment();
      return out;
    }
    WalSegment merged;
    PSTORM_ASSIGN_OR_RETURN(WalSegment imm_segment,
                            ReadWalSegment(*env_, imm_path, from_sequence));
    PSTORM_ASSIGN_OR_RETURN(WalSegment wal_segment,
                            ReadWalSegment(*env_, wal_path, from_sequence));
    AppendWalSegment(&merged, imm_segment);
    AppendWalSegment(&merged, wal_segment);
    if (flushed_sequence_.load(std::memory_order_acquire) !=
        flushed_before) {
      continue;  // A flush landed mid-read; the segment may be torn.
    }
    // Contiguity paranoia: the follower applies strictly sequential
    // records, so hand it either a gap-free run starting exactly at
    // from_sequence or a checkpoint order.
    bool contiguous = merged.empty() ||
                      merged.first_sequence() == from_sequence;
    for (size_t i = 1; contiguous && i < merged.records.size(); ++i) {
      contiguous =
          merged.records[i].sequence == merged.records[i - 1].sequence + 1;
    }
    if (!contiguous) {
      out.need_checkpoint = true;
      out.segment = WalSegment();
      return out;
    }
    out.segment = std::move(merged);
    return out;
  }
  // Flushes kept landing between reads; the checkpoint path is always safe.
  out.need_checkpoint = true;
  out.segment = WalSegment();
  return out;
}

Result<DbCheckpoint> Db::Checkpoint() {
  // Quiesce: writer lock keeps mutations out, WaitForIdle drains the
  // background task (and surfaces its latched error instead of
  // snapshotting a wedged Db). After it, imm_ is empty and current_ /
  // flushed_sequence_ are stable.
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  PSTORM_RETURN_IF_ERROR(WaitForIdle());

  DbCheckpoint checkpoint;
  checkpoint.epoch = epoch_.load(std::memory_order_acquire);
  checkpoint.flushed_sequence =
      flushed_sequence_.load(std::memory_order_acquire);
  checkpoint.last_sequence = last_sequence_.load(std::memory_order_acquire);
  checkpoint.next_file_number = next_file_number_.load();

  const std::shared_ptr<const Version> version = PinVersion();
  auto copy_level = [&](const std::vector<std::shared_ptr<TableHandle>>& in,
                        std::vector<DbCheckpoint::TableFile>* out) -> Status {
    for (const auto& handle : in) {
      PSTORM_ASSIGN_OR_RETURN(std::string contents,
                              env_->ReadFile(JoinPath(path_, handle->name())));
      out->push_back(DbCheckpoint::TableFile{handle->name(),
                                             std::move(contents)});
    }
    return Status::OK();
  };
  PSTORM_RETURN_IF_ERROR(copy_level(version->l0, &checkpoint.l0));
  PSTORM_RETURN_IF_ERROR(copy_level(version->l1, &checkpoint.l1));

  if (wal_ != nullptr) {
    WalSegment tail;
    // Idle means WAL.imm is gone, but read it defensively anyway — extra
    // records below the flushed watermark are filtered out either way.
    PSTORM_ASSIGN_OR_RETURN(
        WalSegment imm_segment,
        ReadWalSegment(*env_, JoinPath(path_, kWalImmName),
                       checkpoint.flushed_sequence + 1));
    PSTORM_ASSIGN_OR_RETURN(
        WalSegment wal_segment,
        ReadWalSegment(*env_, JoinPath(path_, kWalName),
                       checkpoint.flushed_sequence + 1));
    AppendWalSegment(&tail, imm_segment);
    AppendWalSegment(&tail, wal_segment);
    checkpoint.wal_tail = std::move(tail.raw);
  }
  ++stats_.checkpoints_created;
  CheckpointsCreated().Increment();
  return checkpoint;
}

Status Db::InstallCheckpoint(Env* env, const std::string& path,
                             const DbCheckpoint& checkpoint) {
  PSTORM_CHECK(env != nullptr);
  PSTORM_RETURN_IF_ERROR(env->CreateDir(path));
  // Tear down the previous incarnation in crash-safe order: logs first,
  // manifest last. A crash after the WAL deletes but before the manifest's
  // leaves the old *flushed prefix* — consistent, just stale; a crash
  // after the manifest delete leaves a clean empty Db (the old sstables
  // become unreferenced orphans). Deleting the manifest first would leave
  // a WAL-only directory whose records replay onto the wrong base.
  for (const char* name : {kWalName, kWalImmName, kManifestName}) {
    const std::string file = JoinPath(path, name);
    if (env->FileExists(file)) {
      PSTORM_RETURN_IF_ERROR(env->DeleteFile(file));
    }
  }
  // Epoch-prefixed table names cannot collide with the previous
  // incarnation's files (swept as orphans at the next open) or with
  // NewFileName()-produced ones after the follower reopens.
  auto shipped_name = [&checkpoint](const std::string& name) {
    return "r" + std::to_string(checkpoint.epoch) + "-" + name;
  };
  std::string manifest(kManifestHeader);
  manifest += "\n";
  manifest +=
      "next_file " + std::to_string(checkpoint.next_file_number) + "\n";
  manifest +=
      "last_seq " + std::to_string(checkpoint.flushed_sequence) + "\n";
  manifest += "epoch " + std::to_string(checkpoint.epoch) + "\n";
  for (const auto& table : checkpoint.l0) {
    PSTORM_RETURN_IF_ERROR(env->WriteFile(
        JoinPath(path, shipped_name(table.name)), table.contents));
    manifest += "l0 " + shipped_name(table.name) + "\n";
  }
  for (const auto& table : checkpoint.l1) {
    PSTORM_RETURN_IF_ERROR(env->WriteFile(
        JoinPath(path, shipped_name(table.name)), table.contents));
    manifest += "l1 " + shipped_name(table.name) + "\n";
  }
  const std::string tmp = JoinPath(path, std::string(kManifestName) + ".tmp");
  PSTORM_RETURN_IF_ERROR(env->WriteFile(tmp, manifest));
  PSTORM_RETURN_IF_ERROR(env->RenameFile(tmp, JoinPath(path, kManifestName)));
  // The WAL tail lands last: until here a crash leaves the flushed prefix,
  // and a torn tail append is amputated by replay + consolidation at open.
  if (!checkpoint.wal_tail.empty()) {
    PSTORM_RETURN_IF_ERROR(
        env->AppendFile(JoinPath(path, kWalName), checkpoint.wal_tail));
  }
  return Status::OK();
}

Status Db::AdoptEpochLocked(uint64_t new_epoch) {
  // Quiesce the background task: it is the only other manifest writer, and
  // the fence must not be overwritten by a concurrent flush's manifest
  // carrying the old epoch.
  PSTORM_RETURN_IF_ERROR(WaitForIdle());
  const std::shared_ptr<const Version> version = PinVersion();
  const uint64_t old_epoch = epoch_.load(std::memory_order_acquire);
  epoch_.store(new_epoch, std::memory_order_release);
  const Status persisted =
      WriteManifest(*version, flushed_sequence_.load());
  if (!persisted.ok()) {
    epoch_.store(old_epoch, std::memory_order_release);
    return persisted;
  }
  PSTORM_LOG(Info) << "db " << path_ << ": adopted epoch " << new_epoch
                   << " (was " << old_epoch << ")";
  return Status::OK();
}

Status Db::ApplyReplicated(uint64_t primary_epoch, const WalSegment& segment) {
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  if (!replica_.load(std::memory_order_acquire)) {
    // This Db was promoted (or never was a replica): the sender is a
    // deposed primary, or confused. Fence it.
    ++stats_.fence_rejections;
    FenceRejections().Increment();
    return Status::FailedPrecondition(
        "not a replica: shipped batch fenced (target epoch " +
        std::to_string(epoch_.load()) + ")");
  }
  if (primary_epoch < epoch_.load(std::memory_order_acquire)) {
    ++stats_.fence_rejections;
    FenceRejections().Increment();
    return Status::FailedPrecondition(
        "stale epoch " + std::to_string(primary_epoch) + " < " +
        std::to_string(epoch_.load()) + ": shipped batch fenced");
  }
  if (primary_epoch > epoch_.load(std::memory_order_acquire)) {
    // Persist the fence *before* applying any record of the new epoch: a
    // crash right after must still reject the old primary on reopen.
    PSTORM_RETURN_IF_ERROR(AdoptEpochLocked(primary_epoch));
  }
  if (segment.raw.empty()) return Status::OK();  // Heartbeat / pure fencing.

  if (background_mode()) {
    PSTORM_RETURN_IF_ERROR(MaybeThrottleLocked());
  }
  PSTORM_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                          DecodeWalRecords(segment.raw));
  const uint64_t expected =
      last_sequence_.load(std::memory_order_acquire) + 1;
  if (records.front().sequence != expected) {
    return Status::InvalidArgument(
        "replication gap: batch starts at " +
        std::to_string(records.front().sequence) + ", expected " +
        std::to_string(expected));
  }
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].sequence != records[i - 1].sequence + 1) {
      return Status::InvalidArgument("non-contiguous shipped batch");
    }
  }
  if (wal_ != nullptr) {
    // Byte-identical append: the replica's log carries the primary's exact
    // frames (sequences and checksums included), which is what makes
    // divergence detectable and a promoted replica's log shippable onward.
    PSTORM_RETURN_IF_ERROR(wal_->AppendBatch(segment.raw));
    stats_.wal_appends += records.size();
    ++stats_.wal_syncs;
    WalAppends().Add(records.size());
    WalSyncs().Increment();
  }
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    for (const WalRecord& record : records) {
      if (record.type == EntryType::kValue) {
        memtable_.Put(record.key, record.value);
      } else {
        memtable_.Delete(record.key);
      }
    }
  }
  last_sequence_.store(records.back().sequence, std::memory_order_release);
  ++stats_.replicated_batches;
  stats_.replicated_records += records.size();
  ReplicatedBatches().Increment();
  ReplicatedRecords().Add(records.size());
  return MaybeFlushLocked();
}

Status Db::PromoteToPrimary() {
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  if (!replica_.load(std::memory_order_acquire)) return Status::OK();
  PSTORM_RETURN_IF_ERROR(WaitForIdle());
  const std::shared_ptr<const Version> version = PinVersion();
  const uint64_t old_epoch = epoch_.load(std::memory_order_acquire);
  epoch_.store(old_epoch + 1, std::memory_order_release);
  // The promotion *is* the manifest write: only once the bumped epoch is
  // durable may this Db accept writes, or a crash could resurrect it as a
  // replica that already diverged from the old primary.
  const Status persisted =
      WriteManifest(*version, flushed_sequence_.load());
  if (!persisted.ok()) {
    epoch_.store(old_epoch, std::memory_order_release);
    return persisted;  // Still a replica at the old epoch; retry is safe.
  }
  replica_.store(false, std::memory_order_release);
  PSTORM_LOG(Info) << "db " << path_ << ": promoted to primary at epoch "
                   << (old_epoch + 1);
  return Status::OK();
}

Status Db::SetCommitListener(CommitListener* listener) {
  // LockWriterForMaintenance waits out any in-flight batch, including its
  // OnCommit call: after return the old listener is never invoked again.
  std::unique_lock<std::mutex> writer_lock = LockWriterForMaintenance();
  commit_listener_ = listener;
  return Status::OK();
}

}  // namespace pstorm::storage
