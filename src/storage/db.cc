#include "storage/db.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "storage/merging_iterator.h"

namespace pstorm::storage {

namespace {

// Process-global mirrors of the per-Db AtomicDbStats, summed across every Db
// in the process for the metrics dump. The per-Db stats stay authoritative
// (tests and callers read those); these exist so one Dump() shows storage
// effort without walking the live Db set.
obs::Counter& WalAppends() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_wal_appends_total");
  return c;
}
obs::Counter& WalRecordsReplayed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_wal_records_replayed_total");
  return c;
}
obs::Counter& WalTailTruncations() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_wal_tail_truncations_total");
  return c;
}
obs::Counter& Flushes() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_flushes_total");
  return c;
}
obs::Counter& BytesFlushed() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_bytes_flushed_total");
  return c;
}
obs::Counter& Compactions() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_compactions_total");
  return c;
}
obs::Counter& BytesCompacted() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_bytes_compacted_total");
  return c;
}
obs::Counter& QuarantinedFiles() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_quarantined_files_total");
  return c;
}
obs::Counter& OrphansRemoved() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_db_orphans_removed_total");
  return c;
}
obs::Counter& VersionPins() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_db_version_pins_total");
  return c;
}

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "pstorm-manifest-v1";
constexpr char kWalName[] = "WAL";
constexpr char kQuarantineSuffix[] = ".quarantine";

/// Forwards to a wrapped iterator while pinning the snapshot it reads:
/// the memtable copy and the Version (and through it every sstable
/// handle). Keeps the iterator valid across concurrent flushes and
/// compactions.
class PinnedIterator final : public Iterator {
 public:
  PinnedIterator(std::unique_ptr<Iterator> base,
                 std::shared_ptr<const Memtable> memtable,
                 std::shared_ptr<const Version> version)
      : base_(std::move(base)),
        memtable_(std::move(memtable)),
        version_(std::move(version)) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void Seek(std::string_view target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override { return base_->value(); }
  EntryType type() const override { return base_->type(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  std::shared_ptr<const Memtable> memtable_;
  std::shared_ptr<const Version> version_;
};

}  // namespace

Result<std::unique_ptr<Db>> Db::Open(Env* env, std::string path,
                                     DbOptions options) {
  PSTORM_CHECK(env != nullptr);
  auto db = std::unique_ptr<Db>(new Db(env, std::move(path), options));
  db->current_ = std::make_shared<const Version>();
  PSTORM_RETURN_IF_ERROR(env->CreateDir(db->path_));
  if (env->FileExists(JoinPath(db->path_, kManifestName))) {
    PSTORM_RETURN_IF_ERROR(db->LoadManifest());
  } else {
    PSTORM_RETURN_IF_ERROR(db->WriteManifestLocked(*db->current_));
  }

  // Recover acked-but-unflushed mutations. The log stays in place until
  // the next flush truncates it, so a crash during recovery just replays
  // again (replay is idempotent: last write per key wins either way).
  const std::string wal_path = JoinPath(db->path_, kWalName);
  PSTORM_ASSIGN_OR_RETURN(WalReplayResult replay,
                          ReplayWal(*env, wal_path, &db->memtable_));
  db->stats_.wal_records_replayed = replay.records_applied;
  db->stats_.wal_tail_truncated = replay.truncated_tail ? 1 : 0;
  WalRecordsReplayed().Add(replay.records_applied);
  if (replay.truncated_tail) WalTailTruncations().Increment();
  if (replay.truncated_tail) {
    PSTORM_LOG(Warning) << "db " << db->path_ << ": WAL tail torn after "
                        << replay.records_applied
                        << " records; dropping the damaged suffix";
  }
  if (options.wal_enabled) {
    db->wal_ = std::make_unique<WalWriter>(env, wal_path);
  }

  PSTORM_RETURN_IF_ERROR(db->RemoveOrphans());
  if (db->stats_.quarantined_files.load() > 0) {
    // Drop the quarantined tables from the manifest so the next open does
    // not trip over them again.
    PSTORM_RETURN_IF_ERROR(db->WriteManifestLocked(*db->current_));
  }
  return db;
}

Status Db::RemoveOrphans() {
  PSTORM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          env_->ListDir(path_));
  std::vector<std::string> live = {kManifestName, kWalName};
  for (const auto& handle : current_->l0) live.push_back(handle->name());
  for (const auto& handle : current_->l1) live.push_back(handle->name());
  for (const std::string& name : names) {
    if (std::find(live.begin(), live.end(), name) != live.end()) continue;
    if (EndsWith(name, kQuarantineSuffix)) continue;  // Kept for forensics.
    // Anything else is debris from a crashed flush, compaction, or staged
    // write (.tmp): unreferenced, so deleting it cannot lose data.
    const Status s = env_->DeleteFile(JoinPath(path_, name));
    if (s.ok()) {
      ++stats_.orphans_removed;
      OrphansRemoved().Increment();
      PSTORM_LOG(Info) << "db " << path_ << ": removed orphaned file "
                       << name;
    } else {
      PSTORM_LOG(Warning) << "db " << path_ << ": could not remove orphan "
                          << name << ": " << s.ToString();
    }
  }
  return Status::OK();
}

Status Db::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  if (wal_ != nullptr) {
    // Log before memtable: a mutation is acked only once it would survive
    // a crash.
    PSTORM_RETURN_IF_ERROR(wal_->AppendPut(key, value));
    ++stats_.wal_appends;
    WalAppends().Increment();
  }
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    memtable_.Put(key, value);
  }
  return MaybeFlushLocked();
}

Status Db::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  if (wal_ != nullptr) {
    PSTORM_RETURN_IF_ERROR(wal_->AppendDelete(key));
    ++stats_.wal_appends;
    WalAppends().Increment();
  }
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    memtable_.Delete(key);
  }
  return MaybeFlushLocked();
}

Status Db::MaybeFlushLocked() {
  // Reading the memtable without state_mu_ is safe here: writer_mu_ is
  // held, so no one else can be mutating it.
  if (memtable_.ApproximateBytes() >= options_.memtable_flush_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

std::shared_ptr<const Version> Db::PinVersion() const {
  VersionPins().Increment();
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return current_;
}

Result<std::string> Db::Get(std::string_view key) const {
  std::shared_ptr<const Version> version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (auto entry = memtable_.Get(key); entry.has_value()) {
      if (entry->type == EntryType::kTombstone) {
        return Status::NotFound("deleted");
      }
      return entry->value;
    }
    version = current_;
  }
  // The sstable search runs lock-free on the pinned version.
  PSTORM_ASSIGN_OR_RETURN(auto hit, version->Get(key));
  if (hit.has_value()) {
    if (hit->type == EntryType::kTombstone) {
      return Status::NotFound("deleted");
    }
    return std::move(hit->value);
  }
  return Status::NotFound("no such key");
}

size_t Db::num_level0_tables() const { return PinVersion()->l0.size(); }

size_t Db::num_level1_tables() const { return PinVersion()->l1.size(); }

size_t Db::memtable_entries() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return memtable_.num_entries();
}

size_t Db::ApproximateSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return memtable_.ApproximateBytes() + current_->TotalTableBytes();
}

DbStats Db::stats() const {
  DbStats out;
  out.flushes = stats_.flushes.load();
  out.compactions = stats_.compactions.load();
  out.bytes_flushed = stats_.bytes_flushed.load();
  out.bytes_compacted = stats_.bytes_compacted.load();
  out.wal_appends = stats_.wal_appends.load();
  out.wal_records_replayed = stats_.wal_records_replayed.load();
  out.wal_tail_truncated = stats_.wal_tail_truncated.load();
  out.quarantined_files = stats_.quarantined_files.load();
  out.orphans_removed = stats_.orphans_removed.load();
  return out;
}

std::unique_ptr<Iterator> Db::NewIterator() const {
  std::shared_ptr<const Memtable> memtable;
  std::shared_ptr<const Version> version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    memtable = std::make_shared<const Memtable>(memtable_);
    version = current_;
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(memtable->NewIterator());
  version->AppendIterators(&children);
  return std::make_unique<PinnedIterator>(
      NewLiveRecordIterator(NewMergingIterator(std::move(children))),
      std::move(memtable), std::move(version));
}

std::string Db::NewFileName() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(next_file_number_++));
  return buf;
}

Status Db::Flush() {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  return FlushLocked();
}

Status Db::FlushLocked() {
  // writer_mu_ is held: the memtable cannot be mutated underneath us, and
  // concurrent readers only read it, so building the table needs no lock.
  if (memtable_.empty()) return Status::OK();
  TableBuilder builder(options_.table_options);
  auto iter = memtable_.NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    builder.Add(iter->key(), iter->value(), iter->type());
  }
  const std::string contents = builder.Finish();
  const std::string name = NewFileName();
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          Table::Open(contents));

  auto next = std::make_shared<Version>();
  next->l0.push_back(std::make_shared<TableHandle>(env_, path_, name,
                                                   std::move(table)));
  next->l0.insert(next->l0.end(), current_->l0.begin(), current_->l0.end());
  next->l1 = current_->l1;
  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = std::move(next);
    memtable_ = Memtable();
  }
  ++stats_.flushes;
  stats_.bytes_flushed += contents.size();
  Flushes().Increment();
  BytesFlushed().Add(contents.size());
  PSTORM_RETURN_IF_ERROR(WriteManifestLocked(*current_));
  // The flushed records are durable in the sstable now; the log restarts
  // empty. Ordering matters: truncating before the manifest lands would
  // open a window where a crash loses the flushed-but-unreferenced data.
  if (wal_ != nullptr) {
    PSTORM_RETURN_IF_ERROR(wal_->Truncate());
  }
  if (static_cast<int>(current_->l0.size()) >=
      options_.l0_compaction_trigger) {
    return CompactAllLocked();
  }
  return Status::OK();
}

Status Db::CompactAll() {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  return CompactAllLocked();
}

Status Db::CompactAllLocked() {
  PSTORM_RETURN_IF_ERROR(FlushLocked());  // Fold any buffered writes in too.
  // current_ is stable while writer_mu_ is held; keep a pin for the merge.
  const std::shared_ptr<const Version> base = current_;
  if (base->l0.empty() && base->l1.size() <= 1) return Status::OK();

  // Merge every table; the memtable is empty after the flush above.
  std::vector<std::unique_ptr<Iterator>> children;
  base->AppendIterators(&children);
  auto merged = NewMergingIterator(std::move(children));

  auto next = std::make_shared<Version>();
  TableBuilder builder(options_.table_options);
  size_t built_bytes = 0;
  auto emit_table = [&]() -> Status {
    if (builder.num_entries() == 0) return Status::OK();
    const std::string contents = builder.Finish();
    const std::string name = NewFileName();
    PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
    PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            Table::Open(contents));
    next->l1.push_back(std::make_shared<TableHandle>(env_, path_, name,
                                                     std::move(table)));
    stats_.bytes_compacted += contents.size();
    BytesCompacted().Add(contents.size());
    built_bytes = 0;
    return Status::OK();
  };

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    // Full-database compaction: tombstones have shadowed everything they
    // ever will, so drop them.
    if (merged->type() == EntryType::kTombstone) continue;
    builder.Add(merged->key(), merged->value(), EntryType::kValue);
    built_bytes += merged->key().size() + merged->value().size();
    if (built_bytes >= options_.target_file_bytes) {
      PSTORM_RETURN_IF_ERROR(emit_table());
    }
  }
  PSTORM_RETURN_IF_ERROR(merged->status());
  PSTORM_RETURN_IF_ERROR(emit_table());

  {
    std::unique_lock<std::shared_mutex> state_lock(state_mu_);
    current_ = next;
  }
  ++stats_.compactions;
  Compactions().Increment();
  PSTORM_RETURN_IF_ERROR(WriteManifestLocked(*next));

  // The superseded files stay on disk while any reader still pins them;
  // each is deleted when its last pinning Version is released (see
  // TableHandle). With no readers that is right now, as `base` drops.
  base->MarkAllObsolete();
  return Status::OK();
}

Status Db::WriteManifestLocked(const Version& version) {
  std::string out(kManifestHeader);
  out += "\n";
  out += "next_file " + std::to_string(next_file_number_) + "\n";
  for (const auto& handle : version.l0) out += "l0 " + handle->name() + "\n";
  for (const auto& handle : version.l1) out += "l1 " + handle->name() + "\n";
  const std::string tmp = JoinPath(path_, std::string(kManifestName) + ".tmp");
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(tmp, out));
  return env_->RenameFile(tmp, JoinPath(path_, kManifestName));
}

Result<std::shared_ptr<Table>> Db::LoadTable(const std::string& file_name) {
  PSTORM_ASSIGN_OR_RETURN(std::string contents,
                          env_->ReadFile(JoinPath(path_, file_name)));
  return Table::Open(std::move(contents));
}

Status Db::LoadManifest() {
  PSTORM_ASSIGN_OR_RETURN(std::string manifest,
                          env_->ReadFile(JoinPath(path_, kManifestName)));
  std::vector<std::string> lines = StrSplit(manifest, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return Status::Corruption("bad manifest header");
  }
  auto loaded = std::make_shared<Version>();
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> parts = StrSplit(lines[i], ' ');
    if (parts.size() != 2) return Status::Corruption("bad manifest line");
    if (parts[0] == "next_file") {
      char* end = nullptr;
      next_file_number_ = std::strtoull(parts[1].c_str(), &end, 10);
      if (end == parts[1].c_str() || *end != '\0') {
        return Status::Corruption("bad next_file value");
      }
    } else if (parts[0] == "l0" || parts[0] == "l1") {
      Result<std::shared_ptr<Table>> table = LoadTable(parts[1]);
      if (!table.ok()) {
        // Graceful degradation: one rotten table must not take the whole
        // store down. Rename it aside (keeping the bytes for forensics),
        // count it, and serve what is left — the layers above turn the
        // missing rows into No Match Found.
        PSTORM_LOG(Warning) << "db " << path_ << ": quarantining sstable "
                            << parts[1] << ": " << table.status().ToString();
        const Status rename = env_->RenameFile(
            JoinPath(path_, parts[1]),
            JoinPath(path_, parts[1] + kQuarantineSuffix));
        if (!rename.ok()) {
          PSTORM_LOG(Warning) << "db " << path_ << ": quarantine rename of "
                              << parts[1] << " failed: " << rename.ToString();
        }
        ++stats_.quarantined_files;
        QuarantinedFiles().Increment();
        continue;
      }
      auto& level = parts[0] == "l0" ? loaded->l0 : loaded->l1;
      level.push_back(std::make_shared<TableHandle>(
          env_, path_, parts[1], std::move(table).value()));
    } else {
      return Status::Corruption("unknown manifest tag: " + parts[0]);
    }
  }
  current_ = std::move(loaded);
  return Status::OK();
}

}  // namespace pstorm::storage
