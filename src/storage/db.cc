#include "storage/db.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "storage/merging_iterator.h"

namespace pstorm::storage {

namespace {
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "pstorm-manifest-v1";
constexpr char kWalName[] = "WAL";
constexpr char kQuarantineSuffix[] = ".quarantine";
}  // namespace

Result<std::unique_ptr<Db>> Db::Open(Env* env, std::string path,
                                     DbOptions options) {
  PSTORM_CHECK(env != nullptr);
  auto db = std::unique_ptr<Db>(new Db(env, std::move(path), options));
  PSTORM_RETURN_IF_ERROR(env->CreateDir(db->path_));
  if (env->FileExists(JoinPath(db->path_, kManifestName))) {
    PSTORM_RETURN_IF_ERROR(db->LoadManifest());
  } else {
    PSTORM_RETURN_IF_ERROR(db->WriteManifest());
  }

  // Recover acked-but-unflushed mutations. The log stays in place until
  // the next flush truncates it, so a crash during recovery just replays
  // again (replay is idempotent: last write per key wins either way).
  const std::string wal_path = JoinPath(db->path_, kWalName);
  PSTORM_ASSIGN_OR_RETURN(WalReplayResult replay,
                          ReplayWal(*env, wal_path, &db->memtable_));
  db->stats_.wal_records_replayed = replay.records_applied;
  db->stats_.wal_tail_truncated = replay.truncated_tail ? 1 : 0;
  if (replay.truncated_tail) {
    PSTORM_LOG(Warning) << "db " << db->path_ << ": WAL tail torn after "
                        << replay.records_applied
                        << " records; dropping the damaged suffix";
  }
  if (options.wal_enabled) {
    db->wal_ = std::make_unique<WalWriter>(env, wal_path);
  }

  PSTORM_RETURN_IF_ERROR(db->RemoveOrphans());
  if (db->stats_.quarantined_files > 0) {
    // Drop the quarantined tables from the manifest so the next open does
    // not trip over them again.
    PSTORM_RETURN_IF_ERROR(db->WriteManifest());
  }
  return db;
}

Status Db::RemoveOrphans() {
  PSTORM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          env_->ListDir(path_));
  std::vector<std::string> live = {kManifestName, kWalName};
  for (const auto& [name, table] : l0_) live.push_back(name);
  for (const auto& [name, table] : l1_) live.push_back(name);
  for (const std::string& name : names) {
    if (std::find(live.begin(), live.end(), name) != live.end()) continue;
    if (EndsWith(name, kQuarantineSuffix)) continue;  // Kept for forensics.
    // Anything else is debris from a crashed flush, compaction, or staged
    // write (.tmp): unreferenced, so deleting it cannot lose data.
    const Status s = env_->DeleteFile(JoinPath(path_, name));
    if (s.ok()) {
      ++stats_.orphans_removed;
      PSTORM_LOG(Info) << "db " << path_ << ": removed orphaned file "
                       << name;
    } else {
      PSTORM_LOG(Warning) << "db " << path_ << ": could not remove orphan "
                          << name << ": " << s.ToString();
    }
  }
  return Status::OK();
}

Status Db::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (wal_ != nullptr) {
    // Log before memtable: a mutation is acked only once it would survive
    // a crash.
    PSTORM_RETURN_IF_ERROR(wal_->AppendPut(key, value));
    ++stats_.wal_appends;
  }
  memtable_.Put(key, value);
  return MaybeFlush();
}

Status Db::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (wal_ != nullptr) {
    PSTORM_RETURN_IF_ERROR(wal_->AppendDelete(key));
    ++stats_.wal_appends;
  }
  memtable_.Delete(key);
  return MaybeFlush();
}

Status Db::MaybeFlush() {
  if (memtable_.ApproximateBytes() >= options_.memtable_flush_bytes) {
    return Flush();
  }
  return Status::OK();
}

Result<std::string> Db::Get(std::string_view key) const {
  if (auto entry = memtable_.Get(key); entry.has_value()) {
    if (entry->type == EntryType::kTombstone) {
      return Status::NotFound("deleted");
    }
    return entry->value;
  }
  // Level 0, newest first.
  for (const auto& [name, table] : l0_) {
    PSTORM_ASSIGN_OR_RETURN(auto hit, table->Get(key));
    if (hit.has_value()) {
      if (hit->type == EntryType::kTombstone) {
        return Status::NotFound("deleted");
      }
      return std::move(hit->value);
    }
  }
  // Level 1: tables are key-disjoint and sorted; binary search the ranges.
  auto it = std::lower_bound(
      l1_.begin(), l1_.end(), key, [](const auto& entry, std::string_view k) {
        return std::string_view(entry.second->largest_key()) < k;
      });
  if (it != l1_.end() && key >= it->second->smallest_key()) {
    PSTORM_ASSIGN_OR_RETURN(auto hit, it->second->Get(key));
    if (hit.has_value()) {
      if (hit->type == EntryType::kTombstone) {
        return Status::NotFound("deleted");
      }
      return std::move(hit->value);
    }
  }
  return Status::NotFound("no such key");
}

std::vector<std::unique_ptr<Iterator>> Db::AllChildren() const {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(memtable_.NewIterator());
  for (const auto& [name, table] : l0_) {
    children.push_back(table->NewIterator());
  }
  for (const auto& [name, table] : l1_) {
    children.push_back(table->NewIterator());
  }
  return children;
}

size_t Db::ApproximateSizeBytes() const {
  size_t bytes = memtable_.ApproximateBytes();
  for (const auto& [name, table] : l0_) bytes += table->size_bytes();
  for (const auto& [name, table] : l1_) bytes += table->size_bytes();
  return bytes;
}

std::unique_ptr<Iterator> Db::NewIterator() const {
  return NewLiveRecordIterator(NewMergingIterator(AllChildren()));
}

std::string Db::NewFileName() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(next_file_number_++));
  return buf;
}

Status Db::Flush() {
  if (memtable_.empty()) return Status::OK();
  TableBuilder builder(options_.table_options);
  auto iter = memtable_.NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    builder.Add(iter->key(), iter->value(), iter->type());
  }
  const std::string contents = builder.Finish();
  const std::string name = NewFileName();
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                          Table::Open(contents));
  l0_.insert(l0_.begin(), {name, std::move(table)});
  memtable_ = Memtable();
  ++stats_.flushes;
  stats_.bytes_flushed += contents.size();
  PSTORM_RETURN_IF_ERROR(WriteManifest());
  // The flushed records are durable in the sstable now; the log restarts
  // empty. Ordering matters: truncating before the manifest lands would
  // open a window where a crash loses the flushed-but-unreferenced data.
  if (wal_ != nullptr) {
    PSTORM_RETURN_IF_ERROR(wal_->Truncate());
  }
  if (static_cast<int>(l0_.size()) >= options_.l0_compaction_trigger) {
    return CompactAll();
  }
  return Status::OK();
}

Status Db::CompactAll() {
  PSTORM_RETURN_IF_ERROR(Flush());  // Fold any buffered writes in too.
  if (l0_.empty() && l1_.size() <= 1) return Status::OK();

  // Merge every table; the memtable is empty after the flush above.
  std::vector<std::unique_ptr<Iterator>> children;
  for (const auto& [name, table] : l0_) {
    children.push_back(table->NewIterator());
  }
  for (const auto& [name, table] : l1_) {
    children.push_back(table->NewIterator());
  }
  auto merged = NewMergingIterator(std::move(children));

  std::vector<std::pair<std::string, std::shared_ptr<Table>>> new_l1;
  TableBuilder builder(options_.table_options);
  size_t built_bytes = 0;
  auto emit_table = [&]() -> Status {
    if (builder.num_entries() == 0) return Status::OK();
    const std::string contents = builder.Finish();
    const std::string name = NewFileName();
    PSTORM_RETURN_IF_ERROR(env_->WriteFile(JoinPath(path_, name), contents));
    PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            Table::Open(contents));
    new_l1.emplace_back(name, std::move(table));
    stats_.bytes_compacted += contents.size();
    built_bytes = 0;
    return Status::OK();
  };

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    // Full-database compaction: tombstones have shadowed everything they
    // ever will, so drop them.
    if (merged->type() == EntryType::kTombstone) continue;
    builder.Add(merged->key(), merged->value(), EntryType::kValue);
    built_bytes += merged->key().size() + merged->value().size();
    if (built_bytes >= options_.target_file_bytes) {
      PSTORM_RETURN_IF_ERROR(emit_table());
    }
  }
  PSTORM_RETURN_IF_ERROR(merged->status());
  PSTORM_RETURN_IF_ERROR(emit_table());

  std::vector<std::string> obsolete;
  for (const auto& [name, table] : l0_) obsolete.push_back(name);
  for (const auto& [name, table] : l1_) obsolete.push_back(name);

  l0_.clear();
  l1_ = std::move(new_l1);
  ++stats_.compactions;
  PSTORM_RETURN_IF_ERROR(WriteManifest());

  for (const std::string& name : obsolete) {
    // Best-effort: an orphaned file is wasted space, not corruption — the
    // next Open's orphan sweep gets another chance at it.
    const Status s = env_->DeleteFile(JoinPath(path_, name));
    if (!s.ok()) {
      PSTORM_LOG(Warning) << "db " << path_
                          << ": leaving obsolete file " << name
                          << " for the next open to sweep: " << s.ToString();
    }
  }
  return Status::OK();
}

Status Db::WriteManifest() {
  std::string out(kManifestHeader);
  out += "\n";
  out += "next_file " + std::to_string(next_file_number_) + "\n";
  for (const auto& [name, table] : l0_) out += "l0 " + name + "\n";
  for (const auto& [name, table] : l1_) out += "l1 " + name + "\n";
  const std::string tmp = JoinPath(path_, std::string(kManifestName) + ".tmp");
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(tmp, out));
  return env_->RenameFile(tmp, JoinPath(path_, kManifestName));
}

Result<std::shared_ptr<Table>> Db::LoadTable(const std::string& file_name) {
  PSTORM_ASSIGN_OR_RETURN(std::string contents,
                          env_->ReadFile(JoinPath(path_, file_name)));
  return Table::Open(std::move(contents));
}

Status Db::LoadManifest() {
  PSTORM_ASSIGN_OR_RETURN(std::string manifest,
                          env_->ReadFile(JoinPath(path_, kManifestName)));
  std::vector<std::string> lines = StrSplit(manifest, '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return Status::Corruption("bad manifest header");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> parts = StrSplit(lines[i], ' ');
    if (parts.size() != 2) return Status::Corruption("bad manifest line");
    if (parts[0] == "next_file") {
      char* end = nullptr;
      next_file_number_ = std::strtoull(parts[1].c_str(), &end, 10);
      if (end == parts[1].c_str() || *end != '\0') {
        return Status::Corruption("bad next_file value");
      }
    } else if (parts[0] == "l0" || parts[0] == "l1") {
      Result<std::shared_ptr<Table>> table = LoadTable(parts[1]);
      if (!table.ok()) {
        // Graceful degradation: one rotten table must not take the whole
        // store down. Rename it aside (keeping the bytes for forensics),
        // count it, and serve what is left — the layers above turn the
        // missing rows into No Match Found.
        PSTORM_LOG(Warning) << "db " << path_ << ": quarantining sstable "
                            << parts[1] << ": " << table.status().ToString();
        const Status rename = env_->RenameFile(
            JoinPath(path_, parts[1]),
            JoinPath(path_, parts[1] + kQuarantineSuffix));
        if (!rename.ok()) {
          PSTORM_LOG(Warning) << "db " << path_ << ": quarantine rename of "
                              << parts[1] << " failed: " << rename.ToString();
        }
        ++stats_.quarantined_files;
        continue;
      }
      auto& level = parts[0] == "l0" ? l0_ : l1_;
      level.emplace_back(parts[1], std::move(table).value());
    } else {
      return Status::Corruption("unknown manifest tag: " + parts[0]);
    }
  }
  return Status::OK();
}

}  // namespace pstorm::storage
