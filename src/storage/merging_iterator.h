#ifndef PSTORM_STORAGE_MERGING_ITERATOR_H_
#define PSTORM_STORAGE_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "storage/iterator.h"

namespace pstorm::storage {

/// Merges several sorted children into one sorted stream. `children` are
/// ordered newest-first: when multiple children expose the same key, the
/// record from the lowest-index child wins and the shadowed records are
/// skipped. Tombstones are surfaced (type() == kTombstone) so compactions
/// and the DB read path can act on them; use NewLiveRecordIterator to hide
/// them from clients.
std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children);

/// Wraps `base`, skipping tombstoned records.
std::unique_ptr<Iterator> NewLiveRecordIterator(
    std::unique_ptr<Iterator> base);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_MERGING_ITERATOR_H_
