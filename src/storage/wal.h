#ifndef PSTORM_STORAGE_WAL_H_
#define PSTORM_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"

namespace pstorm::storage {

/// Write-ahead log for the Db's memtable (the durability HBase region
/// servers get from their WAL, thesis §5.1). Every Put/Delete is appended
/// here before it touches the memtable, so an acked mutation survives a
/// process kill; the log is truncated once a flush has made its contents
/// durable in an sstable. The same framed records are the unit of
/// WAL-shipping replication (storage/replication.h): a follower applies
/// byte-identical frames, so primary and replica logs stay comparable
/// record-for-record.
///
/// On-log record framing (all little-endian, via common/coding):
///
///   fixed32 payload_length
///   fixed32 checksum          low 32 bits of Fnv1a64(payload)
///   payload:
///     varint64 sequence       monotonic per-Db, assigned at commit; never 0
///     byte     type           0 = value (Put), 1 = tombstone (Delete)
///     varint32 key_length,   key bytes
///     varint32 value_length, value bytes (empty for tombstones)
///
/// A torn tail (partial frame or checksum mismatch from a crash mid-append)
/// is not corruption: replay applies every intact prefix record and stops
/// cleanly at the first bad one.

/// Serializes one mutation as a framed log record (exposed for tests, the
/// replication layer, and the BM_WalAppend micro-benchmark).
std::string EncodeWalRecord(uint64_t sequence, EntryType type,
                            std::string_view key, std::string_view value);

/// One decoded log record; `key`/`value` view the buffer they were decoded
/// from.
struct WalRecord {
  uint64_t sequence = 0;
  EntryType type = EntryType::kValue;
  std::string_view key;
  std::string_view value;
};

/// Location and identity of one framed record inside a WalSegment's `raw`
/// bytes. The checksum is the frame's payload checksum — the same 32 bits
/// the wire carries — which is what replication compares to detect a
/// divergent re-ship of an already-applied sequence number.
struct WalRecordRef {
  uint64_t sequence = 0;
  uint32_t checksum = 0;
  size_t offset = 0;  // Byte offset of the frame within `raw`.
  size_t size = 0;    // Whole frame size, header included.
};

/// A run of intact, CRC-verified, contiguous log frames — the unit the
/// replication shipper moves. `raw` holds the frames byte-identical to the
/// source log, so appending it to another log preserves sequences and
/// checksums exactly.
struct WalSegment {
  std::string raw;
  std::vector<WalRecordRef> records;
  /// True when the scan stopped at a torn or checksum-mismatched frame.
  bool truncated_tail = false;

  bool empty() const { return records.empty(); }
  uint64_t first_sequence() const {
    return records.empty() ? 0 : records.front().sequence;
  }
  uint64_t last_sequence() const {
    return records.empty() ? 0 : records.back().sequence;
  }
};

/// Scans the intact framed prefix of the log at `path` and returns the
/// frames whose sequence is >= `from_sequence` (pass 0 for all), verbatim.
/// A missing file is an empty segment. Damaged tails set truncated_tail
/// instead of failing, mirroring ReplayWal.
Result<WalSegment> ReadWalSegment(const Env& env, const std::string& path,
                                  uint64_t from_sequence);

/// Decodes every frame of `raw` (which must be fully intact — e.g. a
/// WalSegment's bytes); Corruption on a torn or malformed frame. The
/// returned records view `raw`.
Result<std::vector<WalRecord>> DecodeWalRecords(std::string_view raw);

/// The sub-segment of `segment` whose records have sequence >=
/// `from_sequence` (records are sequence-ordered, so this is a suffix).
WalSegment SliceWalSegment(const WalSegment& segment, uint64_t from_sequence);

/// Appends `src`'s frames (and refs, offset-adjusted) onto `dst`.
void AppendWalSegment(WalSegment* dst, const WalSegment& src);

/// Appends mutations to the log file at `path` through `env` (which must
/// outlive the writer).
class WalWriter {
 public:
  WalWriter(Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  /// Convenience single-record appends (tests, benchmarks): each record is
  /// stamped with the writer's own next sequence number. The Db assigns
  /// sequences itself and goes through AppendBatch instead.
  Status AppendPut(std::string_view key, std::string_view value) {
    return Append(EntryType::kValue, key, value);
  }
  Status AppendDelete(std::string_view key) {
    return Append(EntryType::kTombstone, key, {});
  }
  void set_next_sequence(uint64_t sequence) { next_sequence_ = sequence; }

  /// Appends a pre-encoded run of records (each framed by EncodeWalRecord,
  /// concatenated) in a single env append — the group-commit fast path: one
  /// IO, and thus one fsync on a real filesystem, for a whole batch of
  /// writers.
  Status AppendBatch(std::string_view records) {
    return env_->AppendFile(path_, std::string(records));
  }

  /// Empties the log after a flush has persisted its records.
  Status Truncate() { return env_->WriteFile(path_, ""); }

  const std::string& path() const { return path_; }

 private:
  Status Append(EntryType type, std::string_view key, std::string_view value);

  Env* env_;
  std::string path_;
  uint64_t next_sequence_ = 1;
};

/// Outcome of replaying a log into a memtable.
struct WalReplayResult {
  uint64_t records_applied = 0;
  /// Highest sequence number among the applied records (0 when none) —
  /// recovery seeds the Db's commit sequence from this.
  uint64_t last_sequence = 0;
  /// True when replay stopped at a torn or checksum-mismatched tail record
  /// (the expected signature of a crash mid-append); the intact prefix has
  /// still been applied.
  bool truncated_tail = false;
};

/// Replays the log at `path` into `memtable` in append order. A missing
/// log file is an empty log. Never returns Corruption for a damaged tail —
/// see the framing contract above.
Result<WalReplayResult> ReplayWal(const Env& env, const std::string& path,
                                  Memtable* memtable);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_WAL_H_
