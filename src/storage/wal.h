#ifndef PSTORM_STORAGE_WAL_H_
#define PSTORM_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"

namespace pstorm::storage {

/// Write-ahead log for the Db's memtable (the durability HBase region
/// servers get from their WAL, thesis §5.1). Every Put/Delete is appended
/// here before it touches the memtable, so an acked mutation survives a
/// process kill; the log is truncated once a flush has made its contents
/// durable in an sstable.
///
/// On-log record framing (all little-endian, via common/coding):
///
///   fixed32 payload_length
///   fixed32 checksum          low 32 bits of Fnv1a64(payload)
///   payload:
///     byte     type           0 = value (Put), 1 = tombstone (Delete)
///     varint32 key_length,   key bytes
///     varint32 value_length, value bytes (empty for tombstones)
///
/// A torn tail (partial frame or checksum mismatch from a crash mid-append)
/// is not corruption: replay applies every intact prefix record and stops
/// cleanly at the first bad one.

/// Serializes one mutation as a framed log record (exposed for tests and
/// the BM_WalAppend micro-benchmark).
std::string EncodeWalRecord(EntryType type, std::string_view key,
                            std::string_view value);

/// Appends mutations to the log file at `path` through `env` (which must
/// outlive the writer).
class WalWriter {
 public:
  WalWriter(Env* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status AppendPut(std::string_view key, std::string_view value) {
    return Append(EntryType::kValue, key, value);
  }
  Status AppendDelete(std::string_view key) {
    return Append(EntryType::kTombstone, key, {});
  }

  /// Appends a pre-encoded run of records (each framed by EncodeWalRecord,
  /// concatenated) in a single env append — the group-commit fast path: one
  /// IO, and thus one fsync on a real filesystem, for a whole batch of
  /// writers.
  Status AppendBatch(std::string_view records) {
    return env_->AppendFile(path_, std::string(records));
  }

  /// Empties the log after a flush has persisted its records.
  Status Truncate() { return env_->WriteFile(path_, ""); }

  const std::string& path() const { return path_; }

 private:
  Status Append(EntryType type, std::string_view key, std::string_view value);

  Env* env_;
  std::string path_;
};

/// Outcome of replaying a log into a memtable.
struct WalReplayResult {
  uint64_t records_applied = 0;
  /// True when replay stopped at a torn or checksum-mismatched tail record
  /// (the expected signature of a crash mid-append); the intact prefix has
  /// still been applied.
  bool truncated_tail = false;
};

/// Replays the log at `path` into `memtable` in append order. A missing
/// log file is an empty log. Never returns Corruption for a damaged tail —
/// see the framing contract above.
Result<WalReplayResult> ReplayWal(const Env& env, const std::string& path,
                                  Memtable* memtable);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_WAL_H_
