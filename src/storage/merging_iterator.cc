#include "storage/merging_iterator.h"

#include <string>

#include "common/logging.h"

namespace pstorm::storage {

namespace {

class MergingIterator final : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(std::string_view target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    PSTORM_CHECK(Valid());
    // Advance every child positioned at the current key (the winner and all
    // the shadowed duplicates), then re-select.
    const std::string current_key(children_[current_]->key());
    for (auto& child : children_) {
      if (child->Valid() && child->key() == current_key) child->Next();
    }
    FindSmallest();
  }

  std::string_view key() const override { return children_[current_]->key(); }
  std::string_view value() const override {
    return children_[current_]->value();
  }
  EntryType type() const override { return children_[current_]->type(); }

  Status status() const override {
    for (const auto& child : children_) {
      if (!child->status().ok()) return child->status();
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = -1;
    for (int i = 0; i < static_cast<int>(children_.size()); ++i) {
      if (!children_[i]->Valid()) continue;
      // Strict < keeps the lowest-index (newest) child for equal keys.
      if (current_ < 0 || children_[i]->key() < children_[current_]->key()) {
        current_ = i;
      }
    }
    if (!status().ok()) current_ = -1;
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  int current_ = -1;
};

class LiveRecordIterator final : public Iterator {
 public:
  explicit LiveRecordIterator(std::unique_ptr<Iterator> base)
      : base_(std::move(base)) {}

  bool Valid() const override { return base_->Valid(); }

  void SeekToFirst() override {
    base_->SeekToFirst();
    SkipTombstones();
  }

  void Seek(std::string_view target) override {
    base_->Seek(target);
    SkipTombstones();
  }

  void Next() override {
    base_->Next();
    SkipTombstones();
  }

  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override { return base_->value(); }
  EntryType type() const override { return base_->type(); }
  Status status() const override { return base_->status(); }

 private:
  void SkipTombstones() {
    while (base_->Valid() && base_->type() == EntryType::kTombstone) {
      base_->Next();
    }
  }

  std::unique_ptr<Iterator> base_;
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return NewEmptyIterator();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(std::move(children));
}

std::unique_ptr<Iterator> NewLiveRecordIterator(
    std::unique_ptr<Iterator> base) {
  return std::make_unique<LiveRecordIterator>(std::move(base));
}

}  // namespace pstorm::storage
