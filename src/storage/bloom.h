#ifndef PSTORM_STORAGE_BLOOM_H_
#define PSTORM_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pstorm::storage {

/// Builds a bloom filter over a set of keys, serialized as
/// [bit bytes...][1 byte probe count]. Double hashing over FNV-1a with two
/// seeds generates the k probe positions (Kirsch–Mitzenmacher).
class BloomFilterBuilder {
 public:
  /// `bits_per_key` trades space for false-positive rate; 10 bits/key gives
  /// roughly a 1% FP rate.
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(std::string_view key);

  /// Serializes the filter over all added keys. The builder may be reused
  /// after calling Finish (it resets).
  std::string Finish();

  size_t num_keys() const { return keys_.size(); }

 private:
  int bits_per_key_;
  std::vector<uint64_t> keys_;  // Pre-hashed.
};

/// Tests membership against a filter produced by BloomFilterBuilder.
/// An empty or malformed filter conservatively reports "may contain".
bool BloomFilterMayContain(std::string_view filter, std::string_view key);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_BLOOM_H_
