#include "storage/sstable.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace pstorm::storage {

namespace {
constexpr uint64_t kTableMagic = 0x7073746f726d5354ULL;  // "pstormST"
constexpr size_t kFooterSize = 6 * 8;
}  // namespace

TableBuilder::TableBuilder(TableBuilder::Options options)
    : options_(options),
      data_block_(options.restart_interval),
      index_block_(options.restart_interval),
      bloom_(options.bloom_bits_per_key) {}

void TableBuilder::Add(std::string_view key, std::string_view value,
                       EntryType type) {
  PSTORM_CHECK(num_entries_ == 0 || key > std::string_view(last_key_))
      << "keys must be added in strictly increasing order";
  data_block_.Add(key, value, type);
  bloom_.AddKey(key);
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size_bytes) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  const uint64_t offset = file_.size();
  const std::string block = data_block_.Finish();
  file_ += block;
  std::string handle;
  PutFixed64(&handle, offset);
  PutFixed64(&handle, block.size());
  index_block_.Add(last_key_, handle, EntryType::kValue);
}

std::string TableBuilder::Finish() {
  FlushDataBlock();

  const uint64_t filter_offset = file_.size();
  const std::string filter = bloom_.Finish();
  file_ += filter;

  const uint64_t index_offset = file_.size();
  const std::string index = index_block_.Finish();
  file_ += index;

  const uint64_t content_hash = Fnv1a64(file_);
  PutFixed64(&file_, filter_offset);
  PutFixed64(&file_, filter.size());
  PutFixed64(&file_, index_offset);
  PutFixed64(&file_, index.size());
  PutFixed64(&file_, content_hash);
  PutFixed64(&file_, kTableMagic);

  std::string out = std::move(file_);
  file_.clear();
  last_key_.clear();
  num_entries_ = 0;
  return out;
}

Result<std::shared_ptr<Table>> Table::Open(std::string contents) {
  if (contents.size() < kFooterSize) {
    return Status::Corruption("table too small for footer");
  }
  const char* footer = contents.data() + contents.size() - kFooterSize;
  const uint64_t filter_offset = DecodeFixed64(footer);
  const uint64_t filter_size = DecodeFixed64(footer + 8);
  const uint64_t index_offset = DecodeFixed64(footer + 16);
  const uint64_t index_size = DecodeFixed64(footer + 24);
  const uint64_t content_hash = DecodeFixed64(footer + 32);
  const uint64_t magic = DecodeFixed64(footer + 40);
  if (magic != kTableMagic) return Status::Corruption("bad table magic");

  const size_t body = contents.size() - kFooterSize;
  if (filter_offset + filter_size > body || index_offset + index_size > body ||
      index_offset != filter_offset + filter_size) {
    return Status::Corruption("bad table footer offsets");
  }
  if (Fnv1a64(std::string_view(contents.data(), body)) != content_hash) {
    return Status::Corruption("table content hash mismatch");
  }

  auto table = std::shared_ptr<Table>(new Table());
  table->contents_ = std::move(contents);
  table->filter_ =
      std::string_view(table->contents_.data() + filter_offset, filter_size);
  table->index_ = Block::Parse(
      table->contents_.substr(index_offset, index_size));
  if (table->index_ == nullptr) {
    return Status::Corruption("bad index block");
  }

  // Derive key range and block count from the index + first block.
  auto index_iter = table->index().NewIterator();
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    ++table->num_data_blocks_;
    table->largest_key_.assign(index_iter->key());
  }
  PSTORM_RETURN_IF_ERROR(index_iter->status());
  if (table->num_data_blocks_ > 0) {
    index_iter->SeekToFirst();
    std::string_view handle = index_iter->value();
    if (handle.size() != 16) return Status::Corruption("bad index handle");
    PSTORM_ASSIGN_OR_RETURN(
        std::shared_ptr<Block> first,
        table->ReadBlock(DecodeFixed64(handle.data()),
                         DecodeFixed64(handle.data() + 8)));
    auto block_iter = first->NewIterator();
    block_iter->SeekToFirst();
    if (block_iter->Valid()) table->smallest_key_.assign(block_iter->key());
  }
  return table;
}

Result<std::shared_ptr<Block>> Table::ReadBlock(uint64_t offset,
                                                uint64_t size) const {
  if (offset + size > contents_.size()) {
    return Status::Corruption("block handle out of range");
  }
  std::unique_ptr<Block> block = Block::Parse(contents_.substr(offset, size));
  if (block == nullptr) return Status::Corruption("unparseable data block");
  return std::shared_ptr<Block>(std::move(block));
}

Result<std::optional<Table::GetResult>> Table::Get(
    std::string_view key) const {
  if (!BloomFilterMayContain(filter_, key)) return std::optional<GetResult>();

  auto index_iter = index_->NewIterator();
  index_iter->Seek(key);
  if (!index_iter->Valid()) {
    PSTORM_RETURN_IF_ERROR(index_iter->status());
    return std::optional<GetResult>();
  }
  std::string_view handle = index_iter->value();
  if (handle.size() != 16) return Status::Corruption("bad index handle");
  PSTORM_ASSIGN_OR_RETURN(
      std::shared_ptr<Block> block,
      ReadBlock(DecodeFixed64(handle.data()), DecodeFixed64(handle.data() + 8)));
  auto iter = block->NewIterator();
  iter->Seek(key);
  PSTORM_RETURN_IF_ERROR(iter->status());
  if (!iter->Valid() || iter->key() != key) return std::optional<GetResult>();
  return std::optional<GetResult>(
      GetResult{std::string(iter->value()), iter->type()});
}

namespace {

/// Two-level iterator: walks the index block, opening each data block in
/// turn.
class TableIterator final : public Iterator {
 public:
  explicit TableIterator(const Table* table)
      : table_(table), index_iter_(table->index().NewIterator()) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    LoadBlockAndPosition([](Iterator* it) { it->SeekToFirst(); });
  }

  void Seek(std::string_view target) override {
    index_iter_->Seek(target);
    const std::string target_copy(target);
    LoadBlockAndPosition(
        [&target_copy](Iterator* it) { it->Seek(target_copy); });
    // The target may be greater than every key in the located block (it was
    // <= the index key but sits in a gap); advance to the next block.
    if (block_iter_ != nullptr && !block_iter_->Valid() && status_.ok()) {
      AdvanceBlock();
    }
  }

  void Next() override {
    PSTORM_CHECK(Valid());
    block_iter_->Next();
    if (!block_iter_->Valid()) {
      if (!block_iter_->status().ok()) {
        status_ = block_iter_->status();
        block_iter_ = nullptr;
        return;
      }
      AdvanceBlock();
    }
  }

  std::string_view key() const override { return block_iter_->key(); }
  std::string_view value() const override { return block_iter_->value(); }
  EntryType type() const override { return block_iter_->type(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  template <typename PositionFn>
  void LoadBlockAndPosition(PositionFn position) {
    block_ = nullptr;
    block_iter_ = nullptr;
    if (!index_iter_->Valid()) return;
    std::string_view handle = index_iter_->value();
    if (handle.size() != 16) {
      status_ = Status::Corruption("bad index handle");
      return;
    }
    auto block = table_->ReadBlock(DecodeFixed64(handle.data()),
                                   DecodeFixed64(handle.data() + 8));
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    block_ = std::move(block).value();
    block_iter_ = block_->NewIterator();
    position(block_iter_.get());
    if (!block_iter_->status().ok()) {
      status_ = block_iter_->status();
      block_iter_ = nullptr;
    }
  }

  void AdvanceBlock() {
    index_iter_->Next();
    LoadBlockAndPosition([](Iterator* it) { it->SeekToFirst(); });
  }

  const Table* table_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator() const {
  return std::make_unique<TableIterator>(this);
}

}  // namespace pstorm::storage
