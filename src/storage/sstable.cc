#include "storage/sstable.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace pstorm::storage {

namespace {
constexpr uint64_t kTableMagicV1 = 0x7073746f726d5354ULL;  // "pstormST"
constexpr uint64_t kTableMagicV2 = 0x7073746f726d5332ULL;  // "pstormS2"
constexpr size_t kFooterSizeV1 = 6 * 8;
constexpr size_t kFooterSizeV2 = 7 * 8;

/// The prefix-bloom unit of one key: everything up to and including the
/// first delimiter byte, or the whole key when it has none. hstore probes
/// with `row + kSep`, which is exactly the extraction of every cell key of
/// that row.
std::string_view KeyPrefix(std::string_view key, char delimiter) {
  const size_t pos = key.find(delimiter);
  return pos == std::string_view::npos ? key : key.substr(0, pos + 1);
}
}  // namespace

TableBuilder::TableBuilder(TableBuilder::Options options)
    : options_(options),
      data_block_(options.restart_interval),
      index_block_(options.restart_interval),
      bloom_(options.bloom_bits_per_key),
      prefix_bloom_(options.bloom_bits_per_key) {
  PSTORM_CHECK(options.format_version == 1 || options.format_version == 2)
      << "unsupported sstable format version " << options.format_version;
}

void TableBuilder::Add(std::string_view key, std::string_view value,
                       EntryType type) {
  PSTORM_CHECK(num_entries_ == 0 || key > std::string_view(last_key_))
      << "keys must be added in strictly increasing order";
  data_block_.Add(key, value, type);
  bloom_.AddKey(key);
  if (options_.format_version >= 2) {
    const std::string_view prefix = KeyPrefix(key, options_.prefix_delimiter);
    // Sorted input means equal prefixes arrive consecutively, so comparing
    // against the previous one dedupes completely.
    if (num_entries_ == 0 || prefix != std::string_view(last_prefix_)) {
      prefix_bloom_.AddKey(prefix);
      last_prefix_.assign(prefix.data(), prefix.size());
    }
  }
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size_bytes) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  const uint64_t offset = file_.size();
  const std::string block = data_block_.Finish();
  if (options_.format_version >= 2) {
    CodecType tag = CodecType::kNone;
    if (options_.codec != CodecType::kNone) {
      const Codec* codec = GetCodec(options_.codec);
      PSTORM_CHECK(codec != nullptr);
      std::string compressed;
      codec->Compress(block, &compressed);
      if (compressed.size() < block.size()) {
        file_ += compressed;
        tag = options_.codec;
      }
    }
    if (tag == CodecType::kNone) file_ += block;
    file_.push_back(static_cast<char>(tag));
  } else {
    file_ += block;
  }
  std::string handle;
  PutFixed64(&handle, offset);
  PutFixed64(&handle, file_.size() - offset);
  index_block_.Add(last_key_, handle, EntryType::kValue);
}

std::string TableBuilder::Finish() {
  FlushDataBlock();

  const uint64_t filter_offset = file_.size();
  if (options_.format_version >= 2) {
    PutLengthPrefixed(&file_, bloom_.Finish());
    PutLengthPrefixed(&file_, prefix_bloom_.Finish());
    file_.push_back(options_.prefix_delimiter);
  } else {
    file_ += bloom_.Finish();
  }
  const uint64_t filter_size = file_.size() - filter_offset;

  const uint64_t index_offset = file_.size();
  const std::string index = index_block_.Finish();
  file_ += index;

  const uint64_t content_hash = Fnv1a64(file_);
  PutFixed64(&file_, filter_offset);
  PutFixed64(&file_, filter_size);
  PutFixed64(&file_, index_offset);
  PutFixed64(&file_, index.size());
  if (options_.format_version >= 2) {
    PutFixed64(&file_, static_cast<uint64_t>(options_.format_version));
    PutFixed64(&file_, content_hash);
    PutFixed64(&file_, kTableMagicV2);
  } else {
    PutFixed64(&file_, content_hash);
    PutFixed64(&file_, kTableMagicV1);
  }

  std::string out = std::move(file_);
  file_.clear();
  last_key_.clear();
  last_prefix_.clear();
  num_entries_ = 0;
  return out;
}

Result<std::shared_ptr<Table>> Table::Open(std::string contents,
                                           std::shared_ptr<BlockCache> cache) {
  if (contents.size() < 8) {
    return Status::Corruption("table too small for footer");
  }
  const uint64_t magic = DecodeFixed64(contents.data() + contents.size() - 8);
  int format_version;
  size_t footer_size;
  if (magic == kTableMagicV1) {
    format_version = 1;
    footer_size = kFooterSizeV1;
  } else if (magic == kTableMagicV2) {
    format_version = 2;
    footer_size = kFooterSizeV2;
  } else {
    return Status::Corruption("bad table magic");
  }
  if (contents.size() < footer_size) {
    return Status::Corruption("table too small for footer");
  }
  const char* footer = contents.data() + contents.size() - footer_size;
  const uint64_t filter_offset = DecodeFixed64(footer);
  const uint64_t filter_size = DecodeFixed64(footer + 8);
  const uint64_t index_offset = DecodeFixed64(footer + 16);
  const uint64_t index_size = DecodeFixed64(footer + 24);
  uint64_t content_hash;
  if (format_version >= 2) {
    const uint64_t stored_version = DecodeFixed64(footer + 32);
    if (stored_version != 2) {
      return Status::Corruption("unsupported table format version");
    }
    content_hash = DecodeFixed64(footer + 40);
  } else {
    content_hash = DecodeFixed64(footer + 32);
  }

  const size_t body = contents.size() - footer_size;
  if (filter_offset + filter_size > body || index_offset + index_size > body ||
      index_offset != filter_offset + filter_size) {
    return Status::Corruption("bad table footer offsets");
  }
  if (Fnv1a64(std::string_view(contents.data(), body)) != content_hash) {
    return Status::Corruption("table content hash mismatch");
  }

  auto table = std::shared_ptr<Table>(new Table());
  table->contents_ = std::move(contents);
  table->format_version_ = format_version;
  table->file_id_ = BlockCache::NewFileId();
  table->cache_ = std::move(cache);
  const std::string_view filter_area(table->contents_.data() + filter_offset,
                                     filter_size);
  if (format_version >= 2) {
    std::string_view rest = filter_area;
    std::string_view whole_key_filter;
    std::string_view prefix_filter;
    if (!GetLengthPrefixed(&rest, &whole_key_filter) ||
        !GetLengthPrefixed(&rest, &prefix_filter) || rest.size() != 1) {
      return Status::Corruption("bad filter area");
    }
    table->filter_ = whole_key_filter;
    table->prefix_filter_ = prefix_filter;
    table->prefix_delimiter_ = rest.front();
  } else {
    table->filter_ = filter_area;
  }
  table->index_ = Block::Parse(
      table->contents_.substr(index_offset, index_size));
  if (table->index_ == nullptr) {
    return Status::Corruption("bad index block");
  }

  // Derive key range and block count from the index + first block.
  auto index_iter = table->index().NewIterator();
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    ++table->num_data_blocks_;
    table->largest_key_.assign(index_iter->key());
  }
  PSTORM_RETURN_IF_ERROR(index_iter->status());
  if (table->num_data_blocks_ > 0) {
    index_iter->SeekToFirst();
    std::string_view handle = index_iter->value();
    if (handle.size() != 16) return Status::Corruption("bad index handle");
    PSTORM_ASSIGN_OR_RETURN(
        std::shared_ptr<const Block> first,
        table->ReadBlock(DecodeFixed64(handle.data()),
                         DecodeFixed64(handle.data() + 8)));
    auto block_iter = first->NewIterator();
    block_iter->SeekToFirst();
    if (block_iter->Valid()) table->smallest_key_.assign(block_iter->key());
  }
  return table;
}

Result<std::shared_ptr<const Block>> Table::ReadBlock(uint64_t offset,
                                                      uint64_t size) const {
  if (cache_ != nullptr) {
    if (std::shared_ptr<const Block> hit = cache_->Lookup(file_id_, offset)) {
      return hit;
    }
  }
  if (offset + size > contents_.size()) {
    return Status::Corruption("block handle out of range");
  }
  std::string decoded;
  if (format_version_ >= 2) {
    if (size < 1) return Status::Corruption("empty block handle");
    const CodecType tag = static_cast<CodecType>(
        static_cast<uint8_t>(contents_[offset + size - 1]));
    const std::string_view payload(contents_.data() + offset, size - 1);
    const Codec* codec = GetCodec(tag);
    if (codec == nullptr) {
      return Status::Corruption("unknown block codec tag");
    }
    if (!codec->Decompress(payload, &decoded)) {
      return Status::Corruption("corrupt compressed block");
    }
  } else {
    decoded = contents_.substr(offset, size);
  }
  std::unique_ptr<Block> block = Block::Parse(std::move(decoded));
  if (block == nullptr) return Status::Corruption("unparseable data block");
  std::shared_ptr<const Block> shared(std::move(block));
  if (cache_ != nullptr) {
    cache_->Insert(file_id_, offset, shared, shared->size_bytes());
  }
  return shared;
}

Result<std::optional<Table::GetResult>> Table::Get(
    std::string_view key) const {
  if (!BloomFilterMayContain(filter_, key)) return std::optional<GetResult>();

  auto index_iter = index_->NewIterator();
  index_iter->Seek(key);
  if (!index_iter->Valid()) {
    PSTORM_RETURN_IF_ERROR(index_iter->status());
    return std::optional<GetResult>();
  }
  std::string_view handle = index_iter->value();
  if (handle.size() != 16) return Status::Corruption("bad index handle");
  PSTORM_ASSIGN_OR_RETURN(
      std::shared_ptr<const Block> block,
      ReadBlock(DecodeFixed64(handle.data()), DecodeFixed64(handle.data() + 8)));
  auto iter = block->NewIterator();
  iter->Seek(key);
  PSTORM_RETURN_IF_ERROR(iter->status());
  if (!iter->Valid() || iter->key() != key) return std::optional<GetResult>();
  return std::optional<GetResult>(
      GetResult{std::string(iter->value()), iter->type()});
}

bool Table::MayContainPrefix(std::string_view prefix) const {
  if (prefix_filter_.empty()) return true;  // v1, or a table with no keys.
  // Only prefixes of the extraction shape — exactly one delimiter, at the
  // end — can be probed; anything else must conservatively pass.
  if (prefix.empty() || prefix.back() != prefix_delimiter_ ||
      prefix.find(prefix_delimiter_) != prefix.size() - 1) {
    return true;
  }
  return BloomFilterMayContain(prefix_filter_, prefix);
}

namespace {

/// Two-level iterator: walks the index block, opening each data block in
/// turn.
class TableIterator final : public Iterator {
 public:
  explicit TableIterator(const Table* table)
      : table_(table), index_iter_(table->index().NewIterator()) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    LoadBlockAndPosition([](Iterator* it) { it->SeekToFirst(); });
  }

  void Seek(std::string_view target) override {
    index_iter_->Seek(target);
    const std::string target_copy(target);
    LoadBlockAndPosition(
        [&target_copy](Iterator* it) { it->Seek(target_copy); });
    // The target may be greater than every key in the located block (it was
    // <= the index key but sits in a gap); advance to the next block.
    if (block_iter_ != nullptr && !block_iter_->Valid() && status_.ok()) {
      AdvanceBlock();
    }
  }

  void Next() override {
    PSTORM_CHECK(Valid());
    block_iter_->Next();
    if (!block_iter_->Valid()) {
      if (!block_iter_->status().ok()) {
        status_ = block_iter_->status();
        block_iter_ = nullptr;
        return;
      }
      AdvanceBlock();
    }
  }

  std::string_view key() const override { return block_iter_->key(); }
  std::string_view value() const override { return block_iter_->value(); }
  EntryType type() const override { return block_iter_->type(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  template <typename PositionFn>
  void LoadBlockAndPosition(PositionFn position) {
    block_ = nullptr;
    block_iter_ = nullptr;
    if (!index_iter_->Valid()) return;
    std::string_view handle = index_iter_->value();
    if (handle.size() != 16) {
      status_ = Status::Corruption("bad index handle");
      return;
    }
    auto block = table_->ReadBlock(DecodeFixed64(handle.data()),
                                   DecodeFixed64(handle.data() + 8));
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    block_ = std::move(block).value();
    block_iter_ = block_->NewIterator();
    position(block_iter_.get());
    if (!block_iter_->status().ok()) {
      status_ = block_iter_->status();
      block_iter_ = nullptr;
    }
  }

  void AdvanceBlock() {
    index_iter_->Next();
    LoadBlockAndPosition([](Iterator* it) { it->SeekToFirst(); });
  }

  const Table* table_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator() const {
  return std::make_unique<TableIterator>(this);
}

}  // namespace pstorm::storage
