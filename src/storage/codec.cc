#include "storage/codec.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace pstorm::storage {

namespace {

/// Compressed-stream layout of the kLz codec (LZ4-style):
///
///   varint64 raw_size
///   sequence*    token byte: high nibble literal_len, low nibble
///                match_len - 4; a nibble of 15 is extended by 255-run
///                bytes. Then the literal bytes, then (except in the final,
///                literals-only sequence) a fixed16 little-endian offset
///                (1..65535) back into the already-decoded output.
///
/// The stream always ends with a literals-only sequence (possibly empty),
/// exactly like LZ4 block format.

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr uint32_t kNoPos = 0xffffffffu;
/// Upper bound on a decoded block; anything bigger is malformed input, not
/// a real block (tables are bounded by the compactor's target file size).
constexpr uint64_t kMaxRawSize = 1ull << 30;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash32(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

void PutRunLength(std::string* out, size_t v) {
  while (v >= 255) {
    out->push_back(static_cast<char>(255));
    v -= 255;
  }
  out->push_back(static_cast<char>(v));
}

bool GetRunLength(std::string_view* input, size_t* len) {
  while (true) {
    if (input->empty()) return false;
    const uint8_t b = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    *len += b;
    if (b != 255) return true;
    if (*len > kMaxRawSize) return false;
  }
}

void EmitSequence(std::string* out, std::string_view literals,
                  size_t match_len, size_t offset) {
  const size_t ll = literals.size();
  const size_t ml = match_len - kMinMatch;
  const uint8_t token = static_cast<uint8_t>(
      (ll < 15 ? ll : 15) << 4 | (ml < 15 ? ml : 15));
  out->push_back(static_cast<char>(token));
  if (ll >= 15) PutRunLength(out, ll - 15);
  out->append(literals.data(), literals.size());
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>(offset >> 8));
  if (ml >= 15) PutRunLength(out, ml - 15);
}

void EmitFinalLiterals(std::string* out, std::string_view literals) {
  const size_t ll = literals.size();
  out->push_back(static_cast<char>((ll < 15 ? ll : 15) << 4));
  if (ll >= 15) PutRunLength(out, ll - 15);
  out->append(literals.data(), literals.size());
}

class NoneCodec final : public Codec {
 public:
  CodecType type() const override { return CodecType::kNone; }
  std::string_view name() const override { return "none"; }
  void Compress(std::string_view input, std::string* output) const override {
    output->assign(input.data(), input.size());
  }
  bool Decompress(std::string_view input,
                  std::string* output) const override {
    output->assign(input.data(), input.size());
    return true;
  }
};

class LzCodec final : public Codec {
 public:
  CodecType type() const override { return CodecType::kLz; }
  std::string_view name() const override { return "lz"; }

  void Compress(std::string_view input, std::string* output) const override {
    output->clear();
    PutVarint64(output, input.size());
    const size_t n = input.size();
    if (n < kMinMatch + 1) {
      EmitFinalLiterals(output, input);
      return;
    }
    std::vector<uint32_t> table(1u << kHashBits, kNoPos);
    const char* data = input.data();
    size_t pos = 0;
    size_t literal_start = 0;
    // Grows the skip stride on long matchless stretches so incompressible
    // input costs ~O(n/step) probes instead of one per byte (LZ4's
    // acceleration trick).
    size_t misses = 0;
    while (pos + kMinMatch <= n) {
      const uint32_t h = Hash32(Load32(data + pos));
      const size_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos);
      if (cand != kNoPos && pos - cand <= kMaxOffset &&
          Load32(data + cand) == Load32(data + pos)) {
        size_t len = kMinMatch;
        while (pos + len < n && data[cand + len] == data[pos + len]) ++len;
        EmitSequence(output,
                     input.substr(literal_start, pos - literal_start), len,
                     pos - cand);
        pos += len;
        literal_start = pos;
        misses = 0;
      } else {
        ++misses;
        pos += 1 + (misses >> 6);
      }
    }
    EmitFinalLiterals(output, input.substr(literal_start));
  }

  bool Decompress(std::string_view input,
                  std::string* output) const override {
    std::string_view p = input;
    uint64_t raw_size = 0;
    if (!GetVarint64(&p, &raw_size) || raw_size > kMaxRawSize) return false;
    output->clear();
    output->reserve(raw_size);
    while (!p.empty()) {
      const uint8_t token = static_cast<uint8_t>(p.front());
      p.remove_prefix(1);
      size_t literal_len = token >> 4;
      if (literal_len == 15 && !GetRunLength(&p, &literal_len)) return false;
      if (p.size() < literal_len ||
          output->size() + literal_len > raw_size) {
        return false;
      }
      output->append(p.data(), literal_len);
      p.remove_prefix(literal_len);
      if (p.empty()) break;  // Final, literals-only sequence.
      if (p.size() < 2) return false;
      const size_t offset = static_cast<uint8_t>(p[0]) |
                            static_cast<size_t>(static_cast<uint8_t>(p[1]))
                                << 8;
      p.remove_prefix(2);
      size_t match_len = token & 0xf;
      if (match_len == 15 && !GetRunLength(&p, &match_len)) return false;
      match_len += kMinMatch;
      if (offset == 0 || offset > output->size() ||
          output->size() + match_len > raw_size) {
        return false;
      }
      // Byte-at-a-time so overlapping matches (offset < match_len, the RLE
      // case) replicate the freshly written bytes, as the format intends.
      size_t src = output->size() - offset;
      for (size_t i = 0; i < match_len; ++i, ++src) {
        output->push_back((*output)[src]);
      }
    }
    return output->size() == raw_size;
  }
};

}  // namespace

const Codec* GetCodec(CodecType type) {
  static const NoneCodec none;
  static const LzCodec lz;
  switch (type) {
    case CodecType::kNone:
      return &none;
    case CodecType::kLz:
      return &lz;
  }
  return nullptr;
}

}  // namespace pstorm::storage
