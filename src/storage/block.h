#ifndef PSTORM_STORAGE_BLOCK_H_
#define PSTORM_STORAGE_BLOCK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/iterator.h"

namespace pstorm::storage {

/// Serialized-block layout (LevelDB-style):
///
///   entry*            each entry: varint32 shared_key_len,
///                                 varint32 unshared_key_len,
///                                 varint32 value_len,
///                                 uint8    entry_type,
///                                 unshared key bytes, value bytes
///   uint32 restart[0..n)   absolute offsets of restart entries
///   uint32 n                number of restart points
///
/// Keys are prefix-compressed against the previous key; every
/// `restart_interval` entries an entry is written with shared = 0 so Seek
/// can binary-search the restart array.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing order.
  void Add(std::string_view key, std::string_view value, EntryType type);

  /// Serializes and resets the builder.
  std::string Finish();

  /// Bytes the serialized block would currently occupy.
  size_t CurrentSizeEstimate() const;
  bool empty() const { return num_entries_ == 0; }
  std::string_view last_key() const { return last_key_; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int count_since_restart_ = 0;
  size_t num_entries_ = 0;
  std::string last_key_;
};

/// Immutable parsed view over a serialized block. The block keeps its own
/// copy of the bytes so iterators remain valid independent of the source
/// buffer's lifetime.
class Block {
 public:
  /// Returns nullptr if the trailer is malformed.
  static std::unique_ptr<Block> Parse(std::string data);

  std::unique_ptr<Iterator> NewIterator() const;

  size_t size_bytes() const { return data_.size(); }

  /// Layout accessors for the iterator implementation; not part of the
  /// intended client API.
  const std::string& data() const { return data_; }
  uint32_t num_restarts() const { return num_restarts_; }
  size_t restarts_offset() const { return restarts_offset_; }

 private:
  Block(std::string data, uint32_t num_restarts, size_t restarts_offset)
      : data_(std::move(data)),
        num_restarts_(num_restarts),
        restarts_offset_(restarts_offset) {}

  std::string data_;
  uint32_t num_restarts_;
  size_t restarts_offset_;  // Offset of the restart array; end of entries.
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_BLOCK_H_
