#include "storage/version.h"

#include <algorithm>

#include "common/logging.h"

namespace pstorm::storage {

TableHandle::~TableHandle() {
  if (!obsolete_.load(std::memory_order_acquire)) return;
  const Status s = env_->DeleteFile(JoinPath(dir_, name_));
  if (!s.ok()) {
    PSTORM_LOG(Warning) << "db " << dir_ << ": leaving obsolete file "
                        << name_
                        << " for the next open to sweep: " << s.ToString();
  }
}

Result<std::optional<Table::GetResult>> Version::Get(
    std::string_view key) const {
  // Level 0, newest first.
  for (const auto& handle : l0) {
    PSTORM_ASSIGN_OR_RETURN(auto hit, handle->table().Get(key));
    if (hit.has_value()) return hit;
  }
  // Level 1: tables are key-disjoint and sorted; binary search the ranges.
  auto it = std::lower_bound(
      l1.begin(), l1.end(), key,
      [](const std::shared_ptr<TableHandle>& handle, std::string_view k) {
        return handle->table().largest_key() < k;
      });
  if (it != l1.end() && key >= (*it)->table().smallest_key()) {
    PSTORM_ASSIGN_OR_RETURN(auto hit, (*it)->table().Get(key));
    if (hit.has_value()) return hit;
  }
  return std::optional<Table::GetResult>();
}

void Version::AppendIterators(
    std::vector<std::unique_ptr<Iterator>>* out) const {
  for (const auto& handle : l0) out->push_back(handle->table().NewIterator());
  for (const auto& handle : l1) out->push_back(handle->table().NewIterator());
}

void Version::AppendIteratorsForPrefix(
    std::string_view prefix,
    std::vector<std::unique_ptr<Iterator>>* out) const {
  for (const auto& handle : l0) {
    if (handle->table().MayContainPrefix(prefix)) {
      out->push_back(handle->table().NewIterator());
    }
  }
  for (const auto& handle : l1) {
    if (handle->table().MayContainPrefix(prefix)) {
      out->push_back(handle->table().NewIterator());
    }
  }
}

size_t Version::TotalTableBytes() const {
  size_t bytes = 0;
  for (const auto& handle : l0) bytes += handle->table().size_bytes();
  for (const auto& handle : l1) bytes += handle->table().size_bytes();
  return bytes;
}

void Version::MarkAllObsolete() const {
  for (const auto& handle : l0) handle->MarkObsolete();
  for (const auto& handle : l1) handle->MarkObsolete();
}

}  // namespace pstorm::storage
