#include "storage/wal.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"

namespace pstorm::storage {

namespace {
constexpr size_t kFrameHeaderSize = 8;  // fixed32 length + fixed32 checksum

uint32_t PayloadChecksum(std::string_view payload) {
  return static_cast<uint32_t>(Fnv1a64(payload));
}

struct ParsedFrame {
  WalRecord record;
  uint32_t checksum = 0;
  size_t frame_size = 0;
};

/// True when `rest` starts with an intact, well-formed frame; false on a
/// torn, checksum-mismatched, or malformed one (the replay/scan stop
/// condition — never an error, per the framing contract).
bool ParseFrame(std::string_view rest, ParsedFrame* out) {
  if (rest.size() < kFrameHeaderSize) return false;  // Partial frame header.
  const uint32_t length = DecodeFixed32(rest.data());
  const uint32_t checksum = DecodeFixed32(rest.data() + 4);
  if (rest.size() - kFrameHeaderSize < length) {
    return false;  // Payload cut short by a crash.
  }
  const std::string_view payload = rest.substr(kFrameHeaderSize, length);
  if (PayloadChecksum(payload) != checksum) {
    return false;  // Torn or bit-rotted record.
  }

  std::string_view fields = payload;
  uint64_t sequence = 0;
  if (!GetVarint64(&fields, &sequence) || sequence == 0 || fields.empty()) {
    return false;
  }
  const auto type = static_cast<EntryType>(fields.front());
  fields.remove_prefix(1);
  std::string_view key, value;
  if ((type != EntryType::kValue && type != EntryType::kTombstone) ||
      !GetLengthPrefixed(&fields, &key) ||
      !GetLengthPrefixed(&fields, &value) || !fields.empty() || key.empty()) {
    return false;  // Frame intact but payload malformed.
  }
  out->record = WalRecord{sequence, type, key, value};
  out->checksum = checksum;
  out->frame_size = kFrameHeaderSize + length;
  return true;
}

}  // namespace

std::string EncodeWalRecord(uint64_t sequence, EntryType type,
                            std::string_view key, std::string_view value) {
  std::string payload;
  payload.reserve(1 + key.size() + value.size() + 20);
  PutVarint64(&payload, sequence);
  payload.push_back(static_cast<char>(type));
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);

  std::string record;
  record.reserve(kFrameHeaderSize + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, PayloadChecksum(payload));
  record += payload;
  return record;
}

Status WalWriter::Append(EntryType type, std::string_view key,
                         std::string_view value) {
  return env_->AppendFile(
      path_, EncodeWalRecord(next_sequence_++, type, key, value));
}

Result<WalSegment> ReadWalSegment(const Env& env, const std::string& path,
                                  uint64_t from_sequence) {
  WalSegment segment;
  if (!env.FileExists(path)) return segment;
  PSTORM_ASSIGN_OR_RETURN(std::string log, env.ReadFile(path));

  std::string_view rest(log);
  while (!rest.empty()) {
    ParsedFrame frame;
    if (!ParseFrame(rest, &frame)) {
      segment.truncated_tail = true;
      break;
    }
    if (frame.record.sequence >= from_sequence) {
      segment.records.push_back(WalRecordRef{frame.record.sequence,
                                             frame.checksum,
                                             segment.raw.size(),
                                             frame.frame_size});
      segment.raw.append(rest.substr(0, frame.frame_size));
    }
    rest.remove_prefix(frame.frame_size);
  }
  return segment;
}

Result<std::vector<WalRecord>> DecodeWalRecords(std::string_view raw) {
  std::vector<WalRecord> records;
  while (!raw.empty()) {
    ParsedFrame frame;
    if (!ParseFrame(raw, &frame)) {
      return Status::Corruption("torn or malformed frame in WAL segment");
    }
    records.push_back(frame.record);
    raw.remove_prefix(frame.frame_size);
  }
  return records;
}

WalSegment SliceWalSegment(const WalSegment& segment,
                           uint64_t from_sequence) {
  WalSegment out;
  out.truncated_tail = segment.truncated_tail;
  for (const WalRecordRef& ref : segment.records) {
    if (ref.sequence < from_sequence) continue;
    out.records.push_back(
        WalRecordRef{ref.sequence, ref.checksum, out.raw.size(), ref.size});
    out.raw.append(segment.raw, ref.offset, ref.size);
  }
  return out;
}

void AppendWalSegment(WalSegment* dst, const WalSegment& src) {
  const size_t base = dst->raw.size();
  dst->raw += src.raw;
  for (const WalRecordRef& ref : src.records) {
    dst->records.push_back(
        WalRecordRef{ref.sequence, ref.checksum, base + ref.offset,
                     ref.size});
  }
  dst->truncated_tail |= src.truncated_tail;
}

Result<WalReplayResult> ReplayWal(const Env& env, const std::string& path,
                                  Memtable* memtable) {
  WalReplayResult result;
  if (!env.FileExists(path)) return result;
  PSTORM_ASSIGN_OR_RETURN(std::string log, env.ReadFile(path));

  std::string_view rest(log);
  while (!rest.empty()) {
    ParsedFrame frame;
    if (!ParseFrame(rest, &frame)) {
      result.truncated_tail = true;
      break;
    }
    if (frame.record.type == EntryType::kValue) {
      memtable->Put(frame.record.key, frame.record.value);
    } else {
      memtable->Delete(frame.record.key);
    }
    ++result.records_applied;
    result.last_sequence = std::max(result.last_sequence,
                                    frame.record.sequence);
    rest.remove_prefix(frame.frame_size);
  }
  return result;
}

}  // namespace pstorm::storage
