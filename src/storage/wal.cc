#include "storage/wal.h"

#include "common/coding.h"
#include "common/hash.h"

namespace pstorm::storage {

namespace {
constexpr size_t kFrameHeaderSize = 8;  // fixed32 length + fixed32 checksum

uint32_t PayloadChecksum(std::string_view payload) {
  return static_cast<uint32_t>(Fnv1a64(payload));
}
}  // namespace

std::string EncodeWalRecord(EntryType type, std::string_view key,
                            std::string_view value) {
  std::string payload;
  payload.reserve(1 + key.size() + value.size() + 10);
  payload.push_back(static_cast<char>(type));
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);

  std::string record;
  record.reserve(kFrameHeaderSize + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, PayloadChecksum(payload));
  record += payload;
  return record;
}

Status WalWriter::Append(EntryType type, std::string_view key,
                         std::string_view value) {
  return env_->AppendFile(path_, EncodeWalRecord(type, key, value));
}

Result<WalReplayResult> ReplayWal(const Env& env, const std::string& path,
                                  Memtable* memtable) {
  WalReplayResult result;
  if (!env.FileExists(path)) return result;
  PSTORM_ASSIGN_OR_RETURN(std::string log, env.ReadFile(path));

  std::string_view rest(log);
  while (!rest.empty()) {
    if (rest.size() < kFrameHeaderSize) {
      result.truncated_tail = true;  // Partial frame header.
      break;
    }
    const uint32_t length = DecodeFixed32(rest.data());
    const uint32_t checksum = DecodeFixed32(rest.data() + 4);
    if (rest.size() - kFrameHeaderSize < length) {
      result.truncated_tail = true;  // Payload cut short by a crash.
      break;
    }
    const std::string_view payload = rest.substr(kFrameHeaderSize, length);
    if (PayloadChecksum(payload) != checksum) {
      result.truncated_tail = true;  // Torn or bit-rotted record.
      break;
    }

    std::string_view fields = payload;
    if (fields.empty()) {
      result.truncated_tail = true;
      break;
    }
    const auto type = static_cast<EntryType>(fields.front());
    fields.remove_prefix(1);
    std::string_view key, value;
    if ((type != EntryType::kValue && type != EntryType::kTombstone) ||
        !GetLengthPrefixed(&fields, &key) ||
        !GetLengthPrefixed(&fields, &value) || !fields.empty() ||
        key.empty()) {
      result.truncated_tail = true;  // Frame intact but payload malformed.
      break;
    }

    if (type == EntryType::kValue) {
      memtable->Put(key, value);
    } else {
      memtable->Delete(key);
    }
    ++result.records_applied;
    rest.remove_prefix(kFrameHeaderSize + length);
  }
  return result;
}

}  // namespace pstorm::storage
