#ifndef PSTORM_STORAGE_CODEC_H_
#define PSTORM_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pstorm::storage {

/// On-disk compression scheme of one sstable data block. The numeric value
/// is the 1-byte per-block tag written after the block payload in format-v2
/// tables, so existing values must never be renumbered.
enum class CodecType : uint8_t {
  kNone = 0,
  /// LZ77 with an LZ4-style token stream (greedy hash-chain matcher,
  /// 64 KiB window), implemented in-repo so the storage engine stays
  /// dependency-free. Decompression is strict: any malformed input fails
  /// instead of reading or writing out of bounds.
  kLz = 1,
};

/// A pluggable per-block compressor. Implementations are stateless and
/// thread-safe; the registry instances returned by GetCodec live for the
/// whole process.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecType type() const = 0;
  virtual std::string_view name() const = 0;

  /// Compresses `input` into `*output` (replacing its contents). May
  /// produce output larger than the input on incompressible data — the
  /// sstable builder falls back to kNone in that case.
  virtual void Compress(std::string_view input, std::string* output) const = 0;

  /// Decompresses into `*output` (replacing its contents). Returns false on
  /// malformed or truncated input; `*output` is unspecified then.
  virtual bool Decompress(std::string_view input,
                          std::string* output) const = 0;
};

/// The process-wide codec instance for `type`, or nullptr for an unknown
/// tag value (the reader turns that into Corruption).
const Codec* GetCodec(CodecType type);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_CODEC_H_
