#ifndef PSTORM_STORAGE_BLOCK_CACHE_H_
#define PSTORM_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/block.h"

namespace pstorm::storage {

/// Process-shared LRU cache of decoded data blocks, sharded 16 ways so
/// concurrent readers rarely touch the same mutex. Entries are keyed on
/// (file_id, block_offset) — file ids come from NewFileId() and are never
/// reused within a process, so a recycled table file name can never alias a
/// stale entry. Charging is by *decoded* block bytes: that is what actually
/// sits in memory, and it is what a hit saves the reader from re-inflating.
///
/// Lookup returns a shared_ptr, so an entry evicted while a reader still
/// holds it stays alive until the last reader drops it; eviction only stops
/// the cache from charging for it.
class BlockCache {
 public:
  /// `capacity_bytes` is the total decoded-byte budget across all shards.
  /// A zero capacity still constructs a working cache that caches nothing.
  explicit BlockCache(size_t capacity_bytes);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// The cached block, or nullptr on miss. A hit moves the entry to the
  /// front of its shard's LRU list.
  std::shared_ptr<const Block> Lookup(uint64_t file_id, uint64_t offset);

  /// Inserts (or replaces) the entry and evicts from the shard's LRU tail
  /// until the shard is back under its share of the capacity.
  void Insert(uint64_t file_id, uint64_t offset,
              std::shared_ptr<const Block> block, size_t charge);

  /// Approximate point-in-time totals; counters race only with in-flight
  /// operations.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    size_t bytes_used = 0;
  };
  Stats GetStats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }
  double HitRate() const;

  /// Process-unique id for a newly opened table file; never returns the same
  /// value twice.
  static uint64_t NewFileId();

  static constexpr int kNumShards = 16;

 private:
  struct Entry;
  struct Shard;

  Shard* ShardFor(uint64_t file_id, uint64_t offset);

  const size_t capacity_bytes_;
  const size_t shard_capacity_bytes_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_BLOCK_CACHE_H_
