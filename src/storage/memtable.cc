#include "storage/memtable.h"

#include "common/logging.h"

namespace pstorm::storage {

void Memtable::Put(std::string_view key, std::string_view value) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    bytes_ += key.size() + value.size();
    entries_.emplace(std::string(key),
                     Entry{std::string(value), EntryType::kValue});
  } else {
    bytes_ += value.size();
    bytes_ -= it->second.value.size();
    it->second = Entry{std::string(value), EntryType::kValue};
  }
}

void Memtable::Delete(std::string_view key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    bytes_ += key.size();
    entries_.emplace(std::string(key), Entry{"", EntryType::kTombstone});
  } else {
    bytes_ -= it->second.value.size();
    it->second = Entry{"", EntryType::kTombstone};
  }
}

std::optional<Memtable::Entry> Memtable::Get(std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

namespace {

class MemtableIterator final : public Iterator {
 public:
  using Map = std::map<std::string, Memtable::Entry, std::less<>>;

  explicit MemtableIterator(const Map* entries)
      : entries_(entries), it_(entries->end()) {}

  bool Valid() const override { return it_ != entries_->end(); }
  void SeekToFirst() override { it_ = entries_->begin(); }
  void Seek(std::string_view target) override {
    it_ = entries_->lower_bound(target);
  }
  void Next() override {
    PSTORM_CHECK(Valid());
    ++it_;
  }
  std::string_view key() const override { return it_->first; }
  std::string_view value() const override { return it_->second.value; }
  EntryType type() const override { return it_->second.type; }
  Status status() const override { return Status::OK(); }

 private:
  const Map* entries_;
  Map::const_iterator it_;
};

}  // namespace

std::unique_ptr<Iterator> Memtable::NewIterator() const {
  return std::make_unique<MemtableIterator>(&entries_);
}

}  // namespace pstorm::storage
