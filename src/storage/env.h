#ifndef PSTORM_STORAGE_ENV_H_
#define PSTORM_STORAGE_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pstorm::storage {

/// Filesystem abstraction for the storage engine. Tables are small (profile
/// payloads are a few hundred bytes each, thesis §5), so whole-file
/// read/write is the unit of IO; there is no streaming file handle layer.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status CreateDir(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) const = 0;
  virtual Status WriteFile(const std::string& path,
                           const std::string& data) = 0;
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Atomic-within-the-env rename; replaces the target if it exists.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// Names (not paths) of files directly inside `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;
};

/// In-memory Env. The default for tests and for the profile-store use case,
/// where the entire corpus of profiles is tiny and persistence is optional.
class InMemoryEnv final : public Env {
 public:
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

/// POSIX filesystem Env for on-disk stores.
class PosixEnv final : public Env {
 public:
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
};

/// Joins `dir` and `name` with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_ENV_H_
