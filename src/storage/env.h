#ifndef PSTORM_STORAGE_ENV_H_
#define PSTORM_STORAGE_ENV_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace pstorm::storage {

/// Filesystem abstraction for the storage engine. Tables are small (profile
/// payloads are a few hundred bytes each, thesis §5), so whole-file
/// read/write is the unit of IO; there is no streaming file handle layer —
/// the one exception is AppendFile, which the write-ahead log uses to add
/// records without rewriting the log.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status CreateDir(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) const = 0;
  /// Atomicity contract: after WriteFile returns OK the file holds exactly
  /// `data`, and a crash at any point leaves either the old contents or the
  /// new — never a half-written mix. (PosixEnv implements this as write to
  /// `path.tmp` + fsync + rename.)
  virtual Status WriteFile(const std::string& path,
                           const std::string& data) = 0;
  /// Appends `data` to the file, creating it if absent. NOT atomic: a crash
  /// mid-append may leave a torn suffix, which is why the WAL frames and
  /// checksums each record.
  virtual Status AppendFile(const std::string& path,
                            const std::string& data) = 0;
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Atomic-within-the-env rename; replaces the target if it exists.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// Names (not paths) of files directly inside `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) const = 0;
};

/// In-memory Env. The default for tests and for the profile-store use case,
/// where the entire corpus of profiles is tiny and persistence is optional.
class InMemoryEnv final : public Env {
 public:
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

/// POSIX filesystem Env for on-disk stores.
class PosixEnv final : public Env {
 public:
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;
};

/// Decorates any Env with deterministic, seedable failure schedules — the
/// crash-safety test harness. Three independent fault modes:
///
///  * CrashAtMutation(n): the Nth mutating operation (1-based; WriteFile,
///    AppendFile, DeleteFile, RenameFile) "crashes the process": a WriteFile
///    leaves the old contents intact plus a torn `.tmp` staging file (per
///    the Env::WriteFile atomicity contract), an append lands a torn suffix
///    on the real file, a delete or rename does nothing, and that operation
///    plus every later mutation returns IoError. Reads keep working so the
///    harness can reopen the store afterwards, which models a restart on
///    the surviving bytes.
///  * SetErrorProbability(p, seed): each mutation independently fails with
///    probability p, applying nothing. Deterministic for a fixed seed.
///  * FlipByte(path, offset): bit-rot injection on the wrapped env.
///
/// Thread-safe: the fault schedule advances under an internal mutex, so
/// each mutation — from whichever thread — consumes exactly one sequence
/// number and the decision for the Nth mutation is deterministic. (Which
/// thread's operation is "the Nth" depends on arrival order, as it would
/// in a real crash.) Schedule setters are meant for quiesced moments
/// between test phases.
class FaultInjectionEnv final : public Env {
 public:
  /// `target` must outlive this env.
  explicit FaultInjectionEnv(Env* target) : target_(target) {}

  /// Schedules a simulated crash at the `n`th mutating operation from now
  /// (1-based). Resets the mutation counter.
  void CrashAtMutation(uint64_t n);
  /// Every mutation fails (nothing applied) with probability `p`.
  void SetErrorProbability(double p, uint64_t seed);
  /// Deterministic transient fault: mutations `first` .. `first + count - 1`
  /// (1-based from now; resets the counter) fail with IoError, applying
  /// nothing; everything before and after succeeds. Models an IO blip that
  /// heals on its own — the retry-with-backoff test case, where the seeded
  /// probability mode cannot guarantee the fault actually clears.
  void SetTransientErrorWindow(uint64_t first, uint64_t count);
  /// Clears every fault and the crashed state — the "reboot" before a
  /// reopen.
  void ClearFaults();

  /// Mutating operations attempted since the last CrashAtMutation /
  /// ClearFaults (counting the crashed one).
  uint64_t mutation_count() const {
    return mutations_.load(std::memory_order_relaxed);
  }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// XORs the byte at `offset` of `path` with 0xff, bypassing fault
  /// schedules.
  Status FlipByte(const std::string& path, size_t offset);

  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path, const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override;

 private:
  /// Advances the fault schedule for one mutation (one atomic step under
  /// fault_mu_: sequence-number increment + rng draw). Returns OK when the
  /// operation should proceed normally; IoError when it must fail. Sets
  /// `*torn` when the operation should apply a partial effect first.
  Status CheckMutation(bool* torn);

  Env* target_;
  /// Guards the schedule (crash_at_, error_probability_, rng_) and makes
  /// each CheckMutation an indivisible step. The counters are additionally
  /// atomic so the accessors stay lock-free.
  mutable std::mutex fault_mu_;
  std::atomic<uint64_t> mutations_{0};
  uint64_t crash_at_ = 0;  // 0 = no crash scheduled.
  std::atomic<bool> crashed_{false};
  double error_probability_ = 0;
  uint64_t transient_first_ = 0;  // 0 = no window scheduled.
  uint64_t transient_count_ = 0;
  Rng rng_{0};
};

/// Joins `dir` and `name` with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

namespace internal {

/// Injectable fd syscalls for testing the PosixEnv write loop against
/// short writes and signal interruptions, which a real filesystem will not
/// produce on demand. Null members fall back to the real ::write/::fsync/
/// ::close.
struct FdOps {
  std::function<ssize_t(int fd, const void* buf, size_t count)> write_fn;
  std::function<int(int fd)> fsync_fn;
  std::function<int(int fd)> close_fn;
};

/// Writes all of `data` to `fd` (retrying short writes and EINTR — a
/// signal-interrupted write is a retry, not an IoError), fsyncs, and
/// closes. The fd is closed exactly once on every path, success or error,
/// and the first error wins (a failed write still closes, but reports the
/// write's error, not the close's). `name` labels error messages.
Status WriteSyncCloseFd(int fd, std::string_view data, const std::string& name,
                        const FdOps& ops = {});

}  // namespace internal

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_ENV_H_
