#ifndef PSTORM_STORAGE_DB_H_
#define PSTORM_STORAGE_DB_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace pstorm::storage {

struct DbOptions {
  /// Memtable payload size that triggers a flush to a level-0 table.
  size_t memtable_flush_bytes = 1 << 20;
  /// Number of level-0 tables that triggers a full compaction into level 1.
  int l0_compaction_trigger = 4;
  /// Target size of each level-1 table produced by compaction.
  size_t target_file_bytes = 2 << 20;
  /// Append every mutation to a write-ahead log before the memtable, so an
  /// acked write survives a crash without waiting for a flush. Off buys
  /// write throughput at the cost of losing the unflushed memtable.
  bool wal_enabled = true;
  TableBuilder::Options table_options;
};

/// Counters exposed for observability and the micro-benchmarks.
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  /// Mutations appended to the write-ahead log.
  uint64_t wal_appends = 0;
  /// Records recovered from the log by the last Open.
  uint64_t wal_records_replayed = 0;
  /// 1 when that replay stopped at a torn/corrupt tail record.
  uint64_t wal_tail_truncated = 0;
  /// Unreadable sstables renamed aside (not loaded) by Open.
  uint64_t quarantined_files = 0;
  /// Unreferenced leftovers (crashed flush/compaction debris) deleted by
  /// Open.
  uint64_t orphans_removed = 0;
};

/// A small embedded LSM key-value store: one memtable, a newest-first list
/// of level-0 tables, and a level-1 run of key-disjoint tables. This is the
/// storage engine underneath the hstore table layer (the repository's HBase
/// stand-in).
///
/// Thread-safety contract (snapshot isolation, LevelDB-style):
///  * Readers (`Get`, `NewIterator`, the size accessors) may run from any
///    number of threads concurrently with each other and with writers.
///    They take the state mutex shared just long enough to probe the
///    memtable and pin the current Version (an immutable, refcounted
///    {sstable list} snapshot — see storage/version.h), then search it
///    lock-free.
///  * Writers (`Put`, `Delete`, `Flush`, `CompactAll`) serialize on an
///    internal writer mutex (WAL append order == memtable order ==
///    manifest order) and publish new Versions under a brief exclusive
///    lock of the state mutex.
///  * Obsolete sstables are deleted only when the last Version pinning
///    them is released, so an iterator keeps serving from compacted-away
///    tables.
class Db {
 public:
  /// Opens (or creates) a database rooted at `path` inside `env`, which
  /// must outlive the Db. Recovery sequence: load the manifest
  /// (quarantining any unreadable sstable instead of failing the open),
  /// replay the write-ahead log into the memtable (stopping cleanly at a
  /// torn tail), then sweep files the manifest no longer references.
  /// A corrupt manifest itself still fails the open — the layer above
  /// (hstore) decides whether to sacrifice the region.
  static Result<std::unique_ptr<Db>> Open(Env* env, std::string path,
                                          DbOptions options = {});

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// NotFound if the key is absent or deleted. Safe to call concurrently
  /// with writers; observes a point-in-time snapshot.
  Result<std::string> Get(std::string_view key) const;

  /// Iterates live records (no tombstones) over the whole database in key
  /// order. The iterator observes a point-in-time snapshot: writes,
  /// flushes, and compactions that happen after creation are invisible to
  /// it, and it stays valid across them (it pins the tables it reads).
  /// It must not outlive the Db. Creation copies the current memtable,
  /// whose payload is bounded by DbOptions::memtable_flush_bytes.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Persists the memtable as a level-0 table (no-op when empty). Runs a
  /// compaction if level 0 is over the trigger.
  Status Flush();

  /// Merges everything into a fresh level-1 run, dropping tombstones.
  Status CompactAll();

  size_t num_level0_tables() const;
  size_t num_level1_tables() const;
  size_t memtable_entries() const;
  /// Rough resident payload: memtable bytes plus serialized table bytes.
  size_t ApproximateSizeBytes() const;
  /// A consistent snapshot of the counters.
  DbStats stats() const;

 private:
  /// DbStats with every counter atomic, so writers on different threads
  /// (and readers snapshotting) never race. stats() flattens it.
  struct AtomicDbStats {
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> bytes_flushed{0};
    std::atomic<uint64_t> bytes_compacted{0};
    std::atomic<uint64_t> wal_appends{0};
    std::atomic<uint64_t> wal_records_replayed{0};
    std::atomic<uint64_t> wal_tail_truncated{0};
    std::atomic<uint64_t> quarantined_files{0};
    std::atomic<uint64_t> orphans_removed{0};
  };

  Db(Env* env, std::string path, DbOptions options)
      : env_(env), path_(std::move(path)), options_(options) {}

  /// The *Locked variants require writer_mu_ held.
  Status MaybeFlushLocked();
  Status FlushLocked();
  Status CompactAllLocked();
  Status WriteManifestLocked(const Version& version);
  /// Open-time only (single-threaded).
  Status LoadManifest();
  /// Deletes files in the db directory that are neither live (manifest,
  /// WAL, referenced tables) nor quarantined — the debris of a crashed
  /// flush or compaction.
  Status RemoveOrphans();
  Result<std::shared_ptr<Table>> LoadTable(const std::string& file_name);
  std::string NewFileName();
  /// Pins the current version (shared state lock).
  std::shared_ptr<const Version> PinVersion() const;

  Env* env_;
  std::string path_;
  DbOptions options_;
  std::unique_ptr<WalWriter> wal_;

  /// Serializes every mutation: WAL appends, memtable writes, flushes,
  /// compactions, manifest writes, and file numbering. Lock order:
  /// writer_mu_ before state_mu_ (never the reverse).
  std::mutex writer_mu_;
  uint64_t next_file_number_ = 1;  // Guarded by writer_mu_ (+ Open).

  /// Guards the reader-visible state below. Readers hold it shared only
  /// while probing the memtable and pinning current_; writers hold it
  /// exclusive only while applying a memtable edit or swapping versions.
  mutable std::shared_mutex state_mu_;
  Memtable memtable_;
  std::shared_ptr<const Version> current_;

  AtomicDbStats stats_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_DB_H_
