#ifndef PSTORM_STORAGE_DB_H_
#define PSTORM_STORAGE_DB_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace pstorm::storage {

struct DbOptions {
  /// Memtable payload size that triggers a flush to a level-0 table.
  size_t memtable_flush_bytes = 1 << 20;
  /// Number of level-0 tables that triggers a full compaction into level 1.
  int l0_compaction_trigger = 4;
  /// Target size of each level-1 table produced by compaction.
  size_t target_file_bytes = 2 << 20;
  /// Append every mutation to a write-ahead log before the memtable, so an
  /// acked write survives a crash without waiting for a flush. Off buys
  /// write throughput at the cost of losing the unflushed memtable.
  bool wal_enabled = true;
  TableBuilder::Options table_options;
};

/// Counters exposed for observability and the micro-benchmarks.
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  /// Mutations appended to the write-ahead log.
  uint64_t wal_appends = 0;
  /// Records recovered from the log by the last Open.
  uint64_t wal_records_replayed = 0;
  /// 1 when that replay stopped at a torn/corrupt tail record.
  uint64_t wal_tail_truncated = 0;
  /// Unreadable sstables renamed aside (not loaded) by Open.
  uint64_t quarantined_files = 0;
  /// Unreferenced leftovers (crashed flush/compaction debris) deleted by
  /// Open.
  uint64_t orphans_removed = 0;
};

/// A small embedded LSM key-value store: one memtable, a newest-first list
/// of level-0 tables, and a level-1 run of key-disjoint tables. This is the
/// storage engine underneath the hstore table layer (the repository's HBase
/// stand-in). Not thread-safe; the profile store serializes access.
class Db {
 public:
  /// Opens (or creates) a database rooted at `path` inside `env`, which
  /// must outlive the Db. Recovery sequence: load the manifest
  /// (quarantining any unreadable sstable instead of failing the open),
  /// replay the write-ahead log into the memtable (stopping cleanly at a
  /// torn tail), then sweep files the manifest no longer references.
  /// A corrupt manifest itself still fails the open — the layer above
  /// (hstore) decides whether to sacrifice the region.
  static Result<std::unique_ptr<Db>> Open(Env* env, std::string path,
                                          DbOptions options = {});

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// NotFound if the key is absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// Iterates live records (no tombstones) over the whole database in key
  /// order. The iterator must not outlive the Db and must be discarded
  /// before any further writes.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Persists the memtable as a level-0 table (no-op when empty). Runs a
  /// compaction if level 0 is over the trigger.
  Status Flush();

  /// Merges everything into a fresh level-1 run, dropping tombstones.
  Status CompactAll();

  size_t num_level0_tables() const { return l0_.size(); }
  size_t num_level1_tables() const { return l1_.size(); }
  size_t memtable_entries() const { return memtable_.num_entries(); }
  /// Rough resident payload: memtable bytes plus serialized table bytes.
  size_t ApproximateSizeBytes() const;
  const DbStats& stats() const { return stats_; }

 private:
  Db(Env* env, std::string path, DbOptions options)
      : env_(env), path_(std::move(path)), options_(options) {}

  Status MaybeFlush();
  Status WriteManifest();
  Status LoadManifest();
  /// Deletes files in the db directory that are neither live (manifest,
  /// WAL, referenced tables) nor quarantined — the debris of a crashed
  /// flush or compaction.
  Status RemoveOrphans();
  Result<std::shared_ptr<Table>> LoadTable(const std::string& file_name);
  std::string NewFileName();
  /// All sources newest-first (memtable, L0 newest-first, L1).
  std::vector<std::unique_ptr<Iterator>> AllChildren() const;

  Env* env_;
  std::string path_;
  DbOptions options_;
  std::unique_ptr<WalWriter> wal_;
  Memtable memtable_;
  std::vector<std::pair<std::string, std::shared_ptr<Table>>> l0_;
  std::vector<std::pair<std::string, std::shared_ptr<Table>>> l1_;
  uint64_t next_file_number_ = 1;
  DbStats stats_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_DB_H_
