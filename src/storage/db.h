#ifndef PSTORM_STORAGE_DB_H_
#define PSTORM_STORAGE_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace pstorm::storage {

struct DbOptions {
  /// Memtable payload size that triggers a flush to a level-0 table.
  size_t memtable_flush_bytes = 1 << 20;
  /// Number of level-0 tables that triggers a full compaction into level 1.
  int l0_compaction_trigger = 4;
  /// Target size of each level-1 table produced by compaction.
  size_t target_file_bytes = 2 << 20;
  /// Append every mutation to a write-ahead log before the memtable, so an
  /// acked write survives a crash without waiting for a flush. Off buys
  /// write throughput at the cost of losing the unflushed memtable.
  bool wal_enabled = true;
  /// When set, flushes and compactions run as tasks on this pool instead of
  /// inline on the writer thread: Put/Delete only append to the WAL and the
  /// memtable, swap a full memtable aside, and schedule background work.
  /// When null (the default) all maintenance runs inline under the writer
  /// mutex — the deterministic single-thread mode the unit tests rely on.
  /// The pool must outlive the Db.
  common::ThreadPool* maintenance_pool = nullptr;
  /// Admission control, background mode only (LevelDB-style). At or above
  /// `l0_slowdown_threshold` level-0 tables each write is delayed by
  /// kSlowdownDelayMicros so compaction can gain ground; at or above
  /// `l0_stop_threshold` writers block until the backlog drops below the
  /// stop threshold. 0 disables the respective gate.
  int l0_slowdown_threshold = 8;
  int l0_stop_threshold = 12;
  /// Decoded-block budget of the block cache every sstable read consults
  /// before re-inflating a block. 0 disables caching. Ignored when
  /// `block_cache` is set.
  size_t block_cache_bytes = 4 << 20;
  /// Share one cache across Dbs (hstore gives all regions of a table the
  /// same one). When null, Open creates a private cache of
  /// `block_cache_bytes` (unless that is 0).
  std::shared_ptr<BlockCache> block_cache;
  /// Per-table format knobs, including the per-block compression codec
  /// (`table_options.codec`) and the prefix-bloom delimiter.
  TableBuilder::Options table_options;
  /// Open the Db as a read-only replica: client Put/Delete are rejected
  /// with FailedPrecondition, and mutations arrive only through
  /// ApplyReplicated — the WAL-shipping path (storage/replication.h).
  /// Reads stay fully available (snapshot-isolated, as always).
  /// PromoteToPrimary() flips the Db writable and bumps the fencing epoch.
  bool read_only_replica = false;
  /// Background-maintenance retry policy: a failed flush or compaction is
  /// retried this many times — with jittered exponential backoff starting
  /// at `bg_retry_backoff_micros`, capped at `bg_retry_backoff_max_micros`
  /// — before the error latches into bg_error_ and wedges the Db until
  /// reopen. 0 restores latch-on-first-failure.
  int bg_failure_retries = 3;
  uint64_t bg_retry_backoff_micros = 500;
  uint64_t bg_retry_backoff_max_micros = 50000;
};

/// Counters exposed for observability and the micro-benchmarks.
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  /// Mutations appended to the write-ahead log.
  uint64_t wal_appends = 0;
  /// Physical log writes (env appends, i.e. fsyncs on a real filesystem).
  /// Group commit makes this less than wal_appends under concurrent
  /// writers: one IO covers a whole batch.
  uint64_t wal_syncs = 0;
  /// Records recovered from the log by the last Open.
  uint64_t wal_records_replayed = 0;
  /// 1 when that replay stopped at a torn/corrupt tail record.
  uint64_t wal_tail_truncated = 0;
  /// Unreadable sstables renamed aside (not loaded) by Open.
  uint64_t quarantined_files = 0;
  /// Unreferenced leftovers (crashed flush/compaction debris) deleted by
  /// Open.
  uint64_t orphans_removed = 0;
  /// Writes delayed by the soft admission-control gate (background mode).
  uint64_t write_slowdowns = 0;
  /// Writes blocked by the hard gate (L0 backlog or a full immutable
  /// memtable) until background maintenance caught up.
  uint64_t write_stalls = 0;
  /// Total wall time writers spent delayed or blocked, in microseconds.
  uint64_t stall_micros = 0;
  /// Background flush/compaction attempts retried after a transient Env
  /// failure (see DbOptions::bg_failure_retries).
  uint64_t bg_retries = 0;
  /// Replication batches accepted through ApplyReplicated.
  uint64_t replicated_batches = 0;
  /// Individual records applied through ApplyReplicated.
  uint64_t replicated_records = 0;
  /// Writes/batches rejected by epoch fencing or replica read-only mode.
  uint64_t fence_rejections = 0;
  /// Consistent snapshots produced by Checkpoint().
  uint64_t checkpoints_created = 0;
  /// Current fencing epoch (monotonic, persisted in the manifest).
  uint64_t epoch = 0;
  /// Highest committed sequence number (WAL + memtable).
  uint64_t last_sequence = 0;
  /// Highest sequence number durable in sstables (manifest `last_seq`).
  uint64_t flushed_sequence = 0;
  /// 1 when the Db is a read-only replica, 0 when primary.
  uint64_t is_replica = 0;
};

/// A small embedded LSM key-value store: one memtable, a newest-first list
/// of level-0 tables, and a level-1 run of key-disjoint tables. This is the
/// storage engine underneath the hstore table layer (the repository's HBase
/// stand-in).
///
/// Thread-safety contract (snapshot isolation, LevelDB-style):
///  * Readers (`Get`, `NewIterator`, the size accessors) may run from any
///    number of threads concurrently with each other and with writers.
///    They take the state mutex shared just long enough to probe the
///    memtable (and the immutable memtable awaiting flush, background mode)
///    and pin the current Version (an immutable, refcounted {sstable list}
///    snapshot — see storage/version.h), then search it lock-free.
///  * Writers (`Put`, `Delete`, `Flush`, `CompactAll`) serialize on an
///    internal writer mutex (WAL append order == memtable order ==
///    manifest order) and publish memtable edits under a brief exclusive
///    lock of the state mutex. Concurrent Put/Delete calls group-commit:
///    each enqueues itself, the front writer becomes the leader, drains
///    the queue into one WAL append (releasing the writer mutex for the
///    IO), applies the batch to the memtable in queue order, and wakes the
///    followers with their status.
///  * With `DbOptions::maintenance_pool` set, flushes and compactions run
///    on the pool: a write blocks only on the memtable append, the WAL
///    append, or an explicit admission-control stall. At most one
///    background task runs per Db at a time, so flush/compaction/manifest
///    writes never race each other; `WaitForIdle()` is the quiescing
///    barrier. A failed background job latches its status — subsequent
///    writes return it — and reopening recovers from the WAL.
///  * Obsolete sstables are deleted only when the last Version pinning
///    them is released, so an iterator keeps serving from compacted-away
///    tables.
///
/// A consistent point-in-time image of a Db — the bootstrap payload the
/// replication layer ships to a fresh or diverged follower: every live
/// sstable (by content), the manifest fields needed to rebuild it, and the
/// intact WAL tail covering sequences past the flushed prefix.
struct DbCheckpoint {
  uint64_t epoch = 0;
  /// Sequence durable in the shipped sstables.
  uint64_t flushed_sequence = 0;
  /// Highest sequence in the checkpoint overall (sstables + wal_tail).
  uint64_t last_sequence = 0;
  uint64_t next_file_number = 0;
  struct TableFile {
    std::string name;
    std::string contents;
  };
  std::vector<TableFile> l0;  // Newest first, matching manifest order.
  std::vector<TableFile> l1;
  /// Framed WAL records for sequences > flushed_sequence, verbatim.
  std::string wal_tail;
};

/// Lock order: writer_mu_ -> maint_mu_ -> state_mu_ (never the reverse).
class Db {
 public:
  /// Observes every committed write batch, synchronously, from the
  /// committing (group-commit leader) thread — the hook sync replication
  /// uses to ship a batch before the writer is acked. Called once the
  /// batch is durable in the local WAL, with writer_mu_ *released* but the
  /// batch still logically in flight (it is applied to the memtable and
  /// last_sequence advanced right after, regardless of the listener's
  /// verdict): the callback must not call back into this Db's write or
  /// maintenance API (Put, Flush, FetchWalSince, ...) or it deadlocks. A
  /// non-OK return is propagated to every writer in the batch — the
  /// records remain locally durable; see DESIGN.md §11 on this ambiguity
  /// window.
  class CommitListener {
   public:
    virtual ~CommitListener() = default;
    virtual Status OnCommit(uint64_t epoch, const WalSegment& batch) = 0;
  };
  /// Soft-gate delay applied per write while level 0 is over the slowdown
  /// threshold (background mode).
  static constexpr int kSlowdownDelayMicros = 1000;

  /// Opens (or creates) a database rooted at `path` inside `env`, which
  /// must outlive the Db. Recovery sequence: load the manifest
  /// (quarantining any unreadable sstable instead of failing the open),
  /// replay the write-ahead logs into the memtable — first the rotated
  /// log of a flush that was in flight when the process died, then the
  /// active log, both stopping cleanly at a torn tail — then sweep files
  /// the manifest no longer references. A corrupt manifest itself still
  /// fails the open — the layer above (hstore) decides whether to
  /// sacrifice the region.
  static Result<std::unique_ptr<Db>> Open(Env* env, std::string path,
                                          DbOptions options = {});

  /// Blocks until in-flight background work finishes (no new work is
  /// started); buffered writes may stay in the memtable/WAL unflushed.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// NotFound if the key is absent or deleted. Safe to call concurrently
  /// with writers; observes a point-in-time snapshot.
  Result<std::string> Get(std::string_view key) const;

  /// Iterates live records (no tombstones) over the whole database in key
  /// order. The iterator observes a point-in-time snapshot: writes,
  /// flushes, and compactions that happen after creation are invisible to
  /// it, and it stays valid across them (it pins the tables it reads).
  /// It must not outlive the Db. Creation copies the current memtable,
  /// whose payload is bounded by DbOptions::memtable_flush_bytes.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Like NewIterator, but for scans over keys starting with `prefix`:
  /// sstables whose prefix bloom filter proves they hold no such key are
  /// skipped entirely. The remaining sources still merge in full key
  /// order, so the iterator is only coherent *within* the prefix range —
  /// callers must stop consuming once keys no longer start with `prefix`
  /// (as hstore's row scans do); entries beyond it may be stale or
  /// missing because a skipped table could have shadowed them.
  std::unique_ptr<Iterator> NewPrefixIterator(std::string_view prefix) const;

  /// Persists the memtable as a level-0 table (no-op when empty). Inline
  /// mode runs a compaction if level 0 is over the trigger; background
  /// mode schedules the flush and waits for the scheduler to go idle.
  Status Flush();

  /// Merges everything into a fresh level-1 run, dropping tombstones.
  /// Background mode schedules the work and waits for idle.
  Status CompactAll();

  /// Blocks until no background maintenance is scheduled or running and no
  /// immutable memtable awaits flush, then returns the latched status of
  /// the last failed background job (OK when none failed). Inline mode
  /// returns immediately. The quiescing barrier for tests, benchmarks, and
  /// the hstore layer.
  Status WaitForIdle() const;

  size_t num_level0_tables() const;
  size_t num_level1_tables() const;
  size_t memtable_entries() const;
  /// The block cache this Db's tables read through; null when caching is
  /// disabled. Possibly shared with other Dbs (see DbOptions::block_cache).
  const std::shared_ptr<BlockCache>& block_cache() const {
    return block_cache_;
  }
  /// Rough resident payload: memtable (+ immutable memtable) bytes plus
  /// serialized table bytes.
  size_t ApproximateSizeBytes() const;
  /// A consistent snapshot of the counters.
  DbStats stats() const;

  // --- Replication (see storage/replication.h for the shipping layer). ---

  /// Every intact WAL record with sequence >= `from_sequence`, in order,
  /// rotated log (WAL.imm) first then the active log — the shipper's pull
  /// primitive. `need_checkpoint` is set (with an empty segment) when the
  /// log no longer reaches back to `from_sequence` because a flush
  /// truncated it; the follower must bootstrap from Checkpoint() instead.
  /// FailedPrecondition when the WAL is disabled.
  struct ShipBatch {
    uint64_t epoch = 0;
    bool need_checkpoint = false;
    WalSegment segment;
  };
  Result<ShipBatch> FetchWalSince(uint64_t from_sequence);

  /// A consistent snapshot for follower bootstrap: quiesces background
  /// work, pins the current Version, and copies every live sstable plus
  /// the WAL tail past the flushed prefix. Surfaces any latched background
  /// error rather than snapshotting a wedged Db.
  Result<DbCheckpoint> Checkpoint();

  /// Materializes `checkpoint` as a fresh Db directory at `path` (crash
  /// safe: any interrupted install is either a consistent flushed prefix
  /// or re-bootstrappable). The target Db must be closed.
  static Status InstallCheckpoint(Env* env, const std::string& path,
                                  const DbCheckpoint& checkpoint);

  /// Applies a shipped batch on a replica: verifies framing + CRC, rejects
  /// stale epochs and non-replica targets with FailedPrecondition (fence),
  /// adopts (persists) a newer epoch before applying its records, requires
  /// exact sequence contiguity (first == last_sequence()+1, else
  /// InvalidArgument — the applier re-fetches), appends the frames
  /// byte-identical to the local WAL, and applies them to the memtable.
  Status ApplyReplicated(uint64_t primary_epoch, const WalSegment& segment);

  /// Fences the old primary and makes this Db writable: persists epoch+1
  /// in the manifest, then drops replica mode. Idempotent on a primary.
  /// On failure the Db stays a replica at its old epoch (safe to retry).
  Status PromoteToPrimary();

  /// Registers (or, with nullptr, removes) the commit hook. Waits out any
  /// in-flight batch, so after return the old listener is never called
  /// again and the new one sees every subsequent batch. One listener at a
  /// time.
  Status SetCommitListener(CommitListener* listener);

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t last_sequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  uint64_t flushed_sequence() const {
    return flushed_sequence_.load(std::memory_order_acquire);
  }
  bool is_replica() const { return replica_.load(std::memory_order_acquire); }

 private:
  /// DbStats with every counter atomic, so writers on different threads
  /// (and readers snapshotting) never race. stats() flattens it.
  struct AtomicDbStats {
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> bytes_flushed{0};
    std::atomic<uint64_t> bytes_compacted{0};
    std::atomic<uint64_t> wal_appends{0};
    std::atomic<uint64_t> wal_syncs{0};
    std::atomic<uint64_t> wal_records_replayed{0};
    std::atomic<uint64_t> wal_tail_truncated{0};
    std::atomic<uint64_t> quarantined_files{0};
    std::atomic<uint64_t> orphans_removed{0};
    std::atomic<uint64_t> write_slowdowns{0};
    std::atomic<uint64_t> write_stalls{0};
    std::atomic<uint64_t> stall_micros{0};
    std::atomic<uint64_t> bg_retries{0};
    std::atomic<uint64_t> replicated_batches{0};
    std::atomic<uint64_t> replicated_records{0};
    std::atomic<uint64_t> fence_rejections{0};
    std::atomic<uint64_t> checkpoints_created{0};
  };

  Db(Env* env, std::string path, DbOptions options)
      : env_(env), path_(std::move(path)), options_(options) {}

  bool background_mode() const {
    return options_.maintenance_pool != nullptr;
  }

  /// One queued mutation in the group-commit protocol. Lives on its
  /// writer's stack; the string_views stay valid because that thread
  /// blocks until `done`.
  struct Writer {
    EntryType type;
    std::string_view key;
    std::string_view value;
    Status status;
    bool done = false;
  };

  /// The group-commit write path shared by Put and Delete: enqueue, wait
  /// to become leader (or for a leader to finish the write), batch every
  /// queued mutation into one WAL append, apply to the memtable in queue
  /// order.
  Status WriteImpl(EntryType type, std::string_view key,
                   std::string_view value);

  /// Acquires writer_mu_ for Flush/CompactAll, waiting out any batch whose
  /// WAL append is in flight with the mutex released — the memtable and
  /// log must not be touched until that batch has been applied.
  std::unique_lock<std::mutex> LockWriterForMaintenance();

  /// The *Locked variants require writer_mu_ held (inline mode).
  Status MaybeFlushLocked();
  Status FlushLocked();
  Status CompactAllLocked();

  // --- Background scheduler (background mode only). ---
  /// Admission control, called with writer_mu_ held before the WAL append:
  /// returns the latched background error, sleeps kSlowdownDelayMicros at
  /// the soft gate, and blocks at the hard gate until compaction catches
  /// up.
  Status MaybeThrottleLocked();
  /// Moves the full memtable aside as the immutable memtable (waiting for
  /// a still-pending one to flush first), rotates the WAL, and schedules a
  /// background flush. Requires writer_mu_ held. No-op when the memtable
  /// is empty.
  Status ScheduleMemtableSwapLocked();
  /// Requires maint_mu_ held. Queues BackgroundWork on the pool unless one
  /// is already queued/running, the Db is shutting down, or a background
  /// error is latched.
  void ScheduleMaintenanceLocked();
  /// Flips bg_scheduled_ and keeps the global queue-depth gauge balanced.
  /// Requires maint_mu_ held.
  void SetScheduledLocked(bool scheduled);
  /// The pool task: drains work (flush the immutable memtable, then
  /// compact if requested or level 0 is over the trigger) until none is
  /// left, notifying stalled writers after every job.
  void BackgroundWork();
  /// Runs `job`, retrying up to DbOptions::bg_failure_retries times with
  /// jittered capped exponential backoff (shutdown-responsive sleeps on
  /// maint_cv_) before returning the last error — the transient-Env-error
  /// shield in front of the bg_error_ latch.
  Status RunWithBgRetries(const char* what, const std::function<Status()>& job);
  Status DoBackgroundFlush();
  Status DoBackgroundCompaction();
  /// Current level-0 table count (takes state_mu_ shared; safe under
  /// maint_mu_ per the lock order).
  size_t L0Count() const;
  /// Whether an immutable memtable awaits flush (takes state_mu_ shared).
  bool HasImm() const;

  /// Serializes `memtable` into a new level-0 sstable file and returns a
  /// handle to it; `*bytes` gets the serialized size. The caller must
  /// guarantee the memtable is not mutated meanwhile (writer_mu_ held, or
  /// an immutable memtable).
  Result<std::shared_ptr<TableHandle>> BuildTableFromMemtable(
      const Memtable& memtable, size_t* bytes);
  /// Merges every table of `base` into a fresh level-1 run (tombstones
  /// dropped), writing the new files; `*bytes` gets the total written.
  /// Does not publish or write the manifest — callers do.
  Result<std::shared_ptr<Version>> BuildCompactedVersion(const Version& base,
                                                         size_t* bytes);

  /// Writes `version` plus the durability watermark (`last_seq` tag) and
  /// the current fencing epoch to the manifest. Serialized by writer_mu_ in
  /// inline mode and by the single background task in background mode (plus
  /// the single-threaded Open). Callers must only pass a `flushed_seq`
  /// actually durable in `version`'s sstables.
  Status WriteManifest(const Version& version, uint64_t flushed_seq);
  /// Persists and adopts a higher epoch announced by the current primary
  /// (replica side; writer_mu_ held via `lock`). Quiesces background work
  /// so the manifest write cannot race a flush's.
  Status AdoptEpochLocked(uint64_t new_epoch);
  /// Open-time only (single-threaded).
  Status LoadManifest();
  /// Deletes files in the db directory that are neither live (manifest,
  /// WALs, referenced tables) nor quarantined — the debris of a crashed
  /// flush or compaction.
  Status RemoveOrphans();
  Result<std::shared_ptr<Table>> LoadTable(const std::string& file_name);
  std::string NewFileName();
  /// Pins the current version (shared state lock).
  std::shared_ptr<const Version> PinVersion() const;

  Env* env_;
  std::string path_;
  DbOptions options_;
  std::unique_ptr<WalWriter> wal_;
  std::shared_ptr<BlockCache> block_cache_;

  /// Serializes every mutation entry point: WAL appends, memtable writes,
  /// memtable swaps, and (inline mode) flushes/compactions/manifest
  /// writes.
  std::mutex writer_mu_;
  /// Group-commit state, guarded by writer_mu_. The front writer is the
  /// leader; batch_in_flight_ is true while it has writer_mu_ released for
  /// the batch WAL append — Flush/CompactAll must wait it out before
  /// touching the memtable or truncating the log, or an acked-but-unapplied
  /// batch could be lost.
  std::deque<Writer*> writers_;
  std::condition_variable writers_cv_;
  bool batch_in_flight_ = false;
  /// Atomic so the background task can name files without writer_mu_.
  std::atomic<uint64_t> next_file_number_{1};
  /// Highest committed sequence number; advanced only by the group-commit
  /// leader (under the in-flight window) and by ApplyReplicated, both
  /// serialized through writer_mu_. Atomic so readers/shippers can load it
  /// without the lock.
  std::atomic<uint64_t> last_sequence_{0};
  /// Highest sequence durable in sstables (== manifest `last_seq`).
  /// Written only after the manifest recording it has been persisted.
  std::atomic<uint64_t> flushed_sequence_{0};
  /// last_sequence_ captured when the memtable was swapped aside — the
  /// watermark the background flush's manifest write records.
  std::atomic<uint64_t> imm_last_sequence_{0};
  /// Fencing epoch; changes only under writer_mu_ with background work
  /// quiesced (promote / epoch adoption), after the manifest persisting it
  /// succeeded.
  std::atomic<uint64_t> epoch_{1};
  /// True while in replica mode (client writes fenced).
  std::atomic<bool> replica_{false};
  /// Guarded by writer_mu_; the leader copies it to a local before
  /// releasing the mutex for the batch IO, and SetCommitListener waits out
  /// in-flight batches, so the pointee outlives every call.
  CommitListener* commit_listener_ = nullptr;

  /// Guards the background scheduler state below; maint_cv_ is notified
  /// after every completed background job, on errors, and at shutdown.
  mutable std::mutex maint_mu_;
  mutable std::condition_variable maint_cv_;
  bool bg_scheduled_ = false;      // A BackgroundWork task is queued/running.
  bool compact_requested_ = false; // An explicit CompactAll is pending.
  bool shutting_down_ = false;     // Set by ~Db: finish the job, stop.
  Status bg_error_;                // First background failure, latched.
  /// Backoff jitter for RunWithBgRetries. Touched only from the (single)
  /// background task — or from the writer thread in inline mode, where
  /// maintenance is serialized by writer_mu_ — so no extra lock.
  Rng bg_rng_{0x9e3779b97f4a7c15ull};

  /// Guards the reader-visible state below. Readers hold it shared only
  /// while probing the memtables and pinning current_; writers hold it
  /// exclusive only while applying a memtable edit or swapping state.
  mutable std::shared_mutex state_mu_;
  Memtable memtable_;
  /// Background mode: the swapped-aside memtable the scheduler is
  /// flushing. Immutable once published, so the flush reads it lock-free.
  std::shared_ptr<const Memtable> imm_;
  std::shared_ptr<const Version> current_;

  AtomicDbStats stats_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_DB_H_
