#ifndef PSTORM_STORAGE_DB_H_
#define PSTORM_STORAGE_DB_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"

namespace pstorm::storage {

struct DbOptions {
  /// Memtable payload size that triggers a flush to a level-0 table.
  size_t memtable_flush_bytes = 1 << 20;
  /// Number of level-0 tables that triggers a full compaction into level 1.
  int l0_compaction_trigger = 4;
  /// Target size of each level-1 table produced by compaction.
  size_t target_file_bytes = 2 << 20;
  TableBuilder::Options table_options;
};

/// Counters exposed for observability and the micro-benchmarks.
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
};

/// A small embedded LSM key-value store: one memtable, a newest-first list
/// of level-0 tables, and a level-1 run of key-disjoint tables. This is the
/// storage engine underneath the hstore table layer (the repository's HBase
/// stand-in). Not thread-safe; the profile store serializes access.
class Db {
 public:
  /// Opens (or creates) a database rooted at `path` inside `env`, which
  /// must outlive the Db.
  static Result<std::unique_ptr<Db>> Open(Env* env, std::string path,
                                          DbOptions options = {});

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// NotFound if the key is absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// Iterates live records (no tombstones) over the whole database in key
  /// order. The iterator must not outlive the Db and must be discarded
  /// before any further writes.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Persists the memtable as a level-0 table (no-op when empty). Runs a
  /// compaction if level 0 is over the trigger.
  Status Flush();

  /// Merges everything into a fresh level-1 run, dropping tombstones.
  Status CompactAll();

  size_t num_level0_tables() const { return l0_.size(); }
  size_t num_level1_tables() const { return l1_.size(); }
  size_t memtable_entries() const { return memtable_.num_entries(); }
  /// Rough resident payload: memtable bytes plus serialized table bytes.
  size_t ApproximateSizeBytes() const;
  const DbStats& stats() const { return stats_; }

 private:
  Db(Env* env, std::string path, DbOptions options)
      : env_(env), path_(std::move(path)), options_(options) {}

  Status MaybeFlush();
  Status WriteManifest();
  Status LoadManifest();
  Result<std::shared_ptr<Table>> LoadTable(const std::string& file_name);
  std::string NewFileName();
  /// All sources newest-first (memtable, L0 newest-first, L1).
  std::vector<std::unique_ptr<Iterator>> AllChildren() const;

  Env* env_;
  std::string path_;
  DbOptions options_;
  Memtable memtable_;
  std::vector<std::pair<std::string, std::shared_ptr<Table>>> l0_;
  std::vector<std::pair<std::string, std::shared_ptr<Table>>> l1_;
  uint64_t next_file_number_ = 1;
  DbStats stats_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_DB_H_
