#ifndef PSTORM_STORAGE_DB_H_
#define PSTORM_STORAGE_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/version.h"
#include "storage/wal.h"

namespace pstorm::storage {

struct DbOptions {
  /// Memtable payload size that triggers a flush to a level-0 table.
  size_t memtable_flush_bytes = 1 << 20;
  /// Number of level-0 tables that triggers a full compaction into level 1.
  int l0_compaction_trigger = 4;
  /// Target size of each level-1 table produced by compaction.
  size_t target_file_bytes = 2 << 20;
  /// Append every mutation to a write-ahead log before the memtable, so an
  /// acked write survives a crash without waiting for a flush. Off buys
  /// write throughput at the cost of losing the unflushed memtable.
  bool wal_enabled = true;
  /// When set, flushes and compactions run as tasks on this pool instead of
  /// inline on the writer thread: Put/Delete only append to the WAL and the
  /// memtable, swap a full memtable aside, and schedule background work.
  /// When null (the default) all maintenance runs inline under the writer
  /// mutex — the deterministic single-thread mode the unit tests rely on.
  /// The pool must outlive the Db.
  common::ThreadPool* maintenance_pool = nullptr;
  /// Admission control, background mode only (LevelDB-style). At or above
  /// `l0_slowdown_threshold` level-0 tables each write is delayed by
  /// kSlowdownDelayMicros so compaction can gain ground; at or above
  /// `l0_stop_threshold` writers block until the backlog drops below the
  /// stop threshold. 0 disables the respective gate.
  int l0_slowdown_threshold = 8;
  int l0_stop_threshold = 12;
  /// Decoded-block budget of the block cache every sstable read consults
  /// before re-inflating a block. 0 disables caching. Ignored when
  /// `block_cache` is set.
  size_t block_cache_bytes = 4 << 20;
  /// Share one cache across Dbs (hstore gives all regions of a table the
  /// same one). When null, Open creates a private cache of
  /// `block_cache_bytes` (unless that is 0).
  std::shared_ptr<BlockCache> block_cache;
  /// Per-table format knobs, including the per-block compression codec
  /// (`table_options.codec`) and the prefix-bloom delimiter.
  TableBuilder::Options table_options;
};

/// Counters exposed for observability and the micro-benchmarks.
struct DbStats {
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  /// Mutations appended to the write-ahead log.
  uint64_t wal_appends = 0;
  /// Physical log writes (env appends, i.e. fsyncs on a real filesystem).
  /// Group commit makes this less than wal_appends under concurrent
  /// writers: one IO covers a whole batch.
  uint64_t wal_syncs = 0;
  /// Records recovered from the log by the last Open.
  uint64_t wal_records_replayed = 0;
  /// 1 when that replay stopped at a torn/corrupt tail record.
  uint64_t wal_tail_truncated = 0;
  /// Unreadable sstables renamed aside (not loaded) by Open.
  uint64_t quarantined_files = 0;
  /// Unreferenced leftovers (crashed flush/compaction debris) deleted by
  /// Open.
  uint64_t orphans_removed = 0;
  /// Writes delayed by the soft admission-control gate (background mode).
  uint64_t write_slowdowns = 0;
  /// Writes blocked by the hard gate (L0 backlog or a full immutable
  /// memtable) until background maintenance caught up.
  uint64_t write_stalls = 0;
  /// Total wall time writers spent delayed or blocked, in microseconds.
  uint64_t stall_micros = 0;
};

/// A small embedded LSM key-value store: one memtable, a newest-first list
/// of level-0 tables, and a level-1 run of key-disjoint tables. This is the
/// storage engine underneath the hstore table layer (the repository's HBase
/// stand-in).
///
/// Thread-safety contract (snapshot isolation, LevelDB-style):
///  * Readers (`Get`, `NewIterator`, the size accessors) may run from any
///    number of threads concurrently with each other and with writers.
///    They take the state mutex shared just long enough to probe the
///    memtable (and the immutable memtable awaiting flush, background mode)
///    and pin the current Version (an immutable, refcounted {sstable list}
///    snapshot — see storage/version.h), then search it lock-free.
///  * Writers (`Put`, `Delete`, `Flush`, `CompactAll`) serialize on an
///    internal writer mutex (WAL append order == memtable order ==
///    manifest order) and publish memtable edits under a brief exclusive
///    lock of the state mutex. Concurrent Put/Delete calls group-commit:
///    each enqueues itself, the front writer becomes the leader, drains
///    the queue into one WAL append (releasing the writer mutex for the
///    IO), applies the batch to the memtable in queue order, and wakes the
///    followers with their status.
///  * With `DbOptions::maintenance_pool` set, flushes and compactions run
///    on the pool: a write blocks only on the memtable append, the WAL
///    append, or an explicit admission-control stall. At most one
///    background task runs per Db at a time, so flush/compaction/manifest
///    writes never race each other; `WaitForIdle()` is the quiescing
///    barrier. A failed background job latches its status — subsequent
///    writes return it — and reopening recovers from the WAL.
///  * Obsolete sstables are deleted only when the last Version pinning
///    them is released, so an iterator keeps serving from compacted-away
///    tables.
///
/// Lock order: writer_mu_ -> maint_mu_ -> state_mu_ (never the reverse).
class Db {
 public:
  /// Soft-gate delay applied per write while level 0 is over the slowdown
  /// threshold (background mode).
  static constexpr int kSlowdownDelayMicros = 1000;

  /// Opens (or creates) a database rooted at `path` inside `env`, which
  /// must outlive the Db. Recovery sequence: load the manifest
  /// (quarantining any unreadable sstable instead of failing the open),
  /// replay the write-ahead logs into the memtable — first the rotated
  /// log of a flush that was in flight when the process died, then the
  /// active log, both stopping cleanly at a torn tail — then sweep files
  /// the manifest no longer references. A corrupt manifest itself still
  /// fails the open — the layer above (hstore) decides whether to
  /// sacrifice the region.
  static Result<std::unique_ptr<Db>> Open(Env* env, std::string path,
                                          DbOptions options = {});

  /// Blocks until in-flight background work finishes (no new work is
  /// started); buffered writes may stay in the memtable/WAL unflushed.
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// NotFound if the key is absent or deleted. Safe to call concurrently
  /// with writers; observes a point-in-time snapshot.
  Result<std::string> Get(std::string_view key) const;

  /// Iterates live records (no tombstones) over the whole database in key
  /// order. The iterator observes a point-in-time snapshot: writes,
  /// flushes, and compactions that happen after creation are invisible to
  /// it, and it stays valid across them (it pins the tables it reads).
  /// It must not outlive the Db. Creation copies the current memtable,
  /// whose payload is bounded by DbOptions::memtable_flush_bytes.
  std::unique_ptr<Iterator> NewIterator() const;

  /// Like NewIterator, but for scans over keys starting with `prefix`:
  /// sstables whose prefix bloom filter proves they hold no such key are
  /// skipped entirely. The remaining sources still merge in full key
  /// order, so the iterator is only coherent *within* the prefix range —
  /// callers must stop consuming once keys no longer start with `prefix`
  /// (as hstore's row scans do); entries beyond it may be stale or
  /// missing because a skipped table could have shadowed them.
  std::unique_ptr<Iterator> NewPrefixIterator(std::string_view prefix) const;

  /// Persists the memtable as a level-0 table (no-op when empty). Inline
  /// mode runs a compaction if level 0 is over the trigger; background
  /// mode schedules the flush and waits for the scheduler to go idle.
  Status Flush();

  /// Merges everything into a fresh level-1 run, dropping tombstones.
  /// Background mode schedules the work and waits for idle.
  Status CompactAll();

  /// Blocks until no background maintenance is scheduled or running and no
  /// immutable memtable awaits flush, then returns the latched status of
  /// the last failed background job (OK when none failed). Inline mode
  /// returns immediately. The quiescing barrier for tests, benchmarks, and
  /// the hstore layer.
  Status WaitForIdle() const;

  size_t num_level0_tables() const;
  size_t num_level1_tables() const;
  size_t memtable_entries() const;
  /// The block cache this Db's tables read through; null when caching is
  /// disabled. Possibly shared with other Dbs (see DbOptions::block_cache).
  const std::shared_ptr<BlockCache>& block_cache() const {
    return block_cache_;
  }
  /// Rough resident payload: memtable (+ immutable memtable) bytes plus
  /// serialized table bytes.
  size_t ApproximateSizeBytes() const;
  /// A consistent snapshot of the counters.
  DbStats stats() const;

 private:
  /// DbStats with every counter atomic, so writers on different threads
  /// (and readers snapshotting) never race. stats() flattens it.
  struct AtomicDbStats {
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> bytes_flushed{0};
    std::atomic<uint64_t> bytes_compacted{0};
    std::atomic<uint64_t> wal_appends{0};
    std::atomic<uint64_t> wal_syncs{0};
    std::atomic<uint64_t> wal_records_replayed{0};
    std::atomic<uint64_t> wal_tail_truncated{0};
    std::atomic<uint64_t> quarantined_files{0};
    std::atomic<uint64_t> orphans_removed{0};
    std::atomic<uint64_t> write_slowdowns{0};
    std::atomic<uint64_t> write_stalls{0};
    std::atomic<uint64_t> stall_micros{0};
  };

  Db(Env* env, std::string path, DbOptions options)
      : env_(env), path_(std::move(path)), options_(options) {}

  bool background_mode() const {
    return options_.maintenance_pool != nullptr;
  }

  /// One queued mutation in the group-commit protocol. Lives on its
  /// writer's stack; the string_views stay valid because that thread
  /// blocks until `done`.
  struct Writer {
    EntryType type;
    std::string_view key;
    std::string_view value;
    Status status;
    bool done = false;
  };

  /// The group-commit write path shared by Put and Delete: enqueue, wait
  /// to become leader (or for a leader to finish the write), batch every
  /// queued mutation into one WAL append, apply to the memtable in queue
  /// order.
  Status WriteImpl(EntryType type, std::string_view key,
                   std::string_view value);

  /// Acquires writer_mu_ for Flush/CompactAll, waiting out any batch whose
  /// WAL append is in flight with the mutex released — the memtable and
  /// log must not be touched until that batch has been applied.
  std::unique_lock<std::mutex> LockWriterForMaintenance();

  /// The *Locked variants require writer_mu_ held (inline mode).
  Status MaybeFlushLocked();
  Status FlushLocked();
  Status CompactAllLocked();

  // --- Background scheduler (background mode only). ---
  /// Admission control, called with writer_mu_ held before the WAL append:
  /// returns the latched background error, sleeps kSlowdownDelayMicros at
  /// the soft gate, and blocks at the hard gate until compaction catches
  /// up.
  Status MaybeThrottleLocked();
  /// Moves the full memtable aside as the immutable memtable (waiting for
  /// a still-pending one to flush first), rotates the WAL, and schedules a
  /// background flush. Requires writer_mu_ held. No-op when the memtable
  /// is empty.
  Status ScheduleMemtableSwapLocked();
  /// Requires maint_mu_ held. Queues BackgroundWork on the pool unless one
  /// is already queued/running, the Db is shutting down, or a background
  /// error is latched.
  void ScheduleMaintenanceLocked();
  /// Flips bg_scheduled_ and keeps the global queue-depth gauge balanced.
  /// Requires maint_mu_ held.
  void SetScheduledLocked(bool scheduled);
  /// The pool task: drains work (flush the immutable memtable, then
  /// compact if requested or level 0 is over the trigger) until none is
  /// left, notifying stalled writers after every job.
  void BackgroundWork();
  Status DoBackgroundFlush();
  Status DoBackgroundCompaction();
  /// Current level-0 table count (takes state_mu_ shared; safe under
  /// maint_mu_ per the lock order).
  size_t L0Count() const;
  /// Whether an immutable memtable awaits flush (takes state_mu_ shared).
  bool HasImm() const;

  /// Serializes `memtable` into a new level-0 sstable file and returns a
  /// handle to it; `*bytes` gets the serialized size. The caller must
  /// guarantee the memtable is not mutated meanwhile (writer_mu_ held, or
  /// an immutable memtable).
  Result<std::shared_ptr<TableHandle>> BuildTableFromMemtable(
      const Memtable& memtable, size_t* bytes);
  /// Merges every table of `base` into a fresh level-1 run (tombstones
  /// dropped), writing the new files; `*bytes` gets the total written.
  /// Does not publish or write the manifest — callers do.
  Result<std::shared_ptr<Version>> BuildCompactedVersion(const Version& base,
                                                         size_t* bytes);

  /// Writes `version` to the manifest. Serialized by writer_mu_ in inline
  /// mode and by the single background task in background mode (plus the
  /// single-threaded Open).
  Status WriteManifest(const Version& version);
  /// Open-time only (single-threaded).
  Status LoadManifest();
  /// Deletes files in the db directory that are neither live (manifest,
  /// WALs, referenced tables) nor quarantined — the debris of a crashed
  /// flush or compaction.
  Status RemoveOrphans();
  Result<std::shared_ptr<Table>> LoadTable(const std::string& file_name);
  std::string NewFileName();
  /// Pins the current version (shared state lock).
  std::shared_ptr<const Version> PinVersion() const;

  Env* env_;
  std::string path_;
  DbOptions options_;
  std::unique_ptr<WalWriter> wal_;
  std::shared_ptr<BlockCache> block_cache_;

  /// Serializes every mutation entry point: WAL appends, memtable writes,
  /// memtable swaps, and (inline mode) flushes/compactions/manifest
  /// writes.
  std::mutex writer_mu_;
  /// Group-commit state, guarded by writer_mu_. The front writer is the
  /// leader; batch_in_flight_ is true while it has writer_mu_ released for
  /// the batch WAL append — Flush/CompactAll must wait it out before
  /// touching the memtable or truncating the log, or an acked-but-unapplied
  /// batch could be lost.
  std::deque<Writer*> writers_;
  std::condition_variable writers_cv_;
  bool batch_in_flight_ = false;
  /// Atomic so the background task can name files without writer_mu_.
  std::atomic<uint64_t> next_file_number_{1};

  /// Guards the background scheduler state below; maint_cv_ is notified
  /// after every completed background job, on errors, and at shutdown.
  mutable std::mutex maint_mu_;
  mutable std::condition_variable maint_cv_;
  bool bg_scheduled_ = false;      // A BackgroundWork task is queued/running.
  bool compact_requested_ = false; // An explicit CompactAll is pending.
  bool shutting_down_ = false;     // Set by ~Db: finish the job, stop.
  Status bg_error_;                // First background failure, latched.

  /// Guards the reader-visible state below. Readers hold it shared only
  /// while probing the memtables and pinning current_; writers hold it
  /// exclusive only while applying a memtable edit or swapping state.
  mutable std::shared_mutex state_mu_;
  Memtable memtable_;
  /// Background mode: the swapped-aside memtable the scheduler is
  /// flushing. Immutable once published, so the flush reads it lock-free.
  std::shared_ptr<const Memtable> imm_;
  std::shared_ptr<const Version> current_;

  AtomicDbStats stats_;
};

}  // namespace pstorm::storage

#endif  // PSTORM_STORAGE_DB_H_
