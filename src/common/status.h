#ifndef PSTORM_COMMON_STATUS_H_
#define PSTORM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pstorm {

/// Machine-readable classification of an error. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kCorruption,
  kIoError,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Library code in this project does
/// not throw exceptions; fallible functions return `Status` (or `Result<T>`,
/// see result.h) instead. A default-constructed Status is OK and carries no
/// allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define PSTORM_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::pstorm::Status _pstorm_status = (expr);       \
    if (!_pstorm_status.ok()) return _pstorm_status; \
  } while (false)

}  // namespace pstorm

#endif  // PSTORM_COMMON_STATUS_H_
