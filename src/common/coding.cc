#include "common/coding.h"

namespace pstorm {

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

namespace {
bool GetVarintImpl(std::string_view* input, uint64_t* value, int max_bytes) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < max_bytes; ++i) {
    if (static_cast<size_t>(i) >= input->size()) return false;
    const unsigned char byte = static_cast<unsigned char>((*input)[i]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      input->remove_prefix(i + 1);
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // Overlong encoding.
}
}  // namespace

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarintImpl(input, &v, 5)) return false;
  if (v > 0xffffffffULL) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  return GetVarintImpl(input, value, 10);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

}  // namespace pstorm
