#ifndef PSTORM_COMMON_STATISTICS_H_
#define PSTORM_COMMON_STATISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pstorm {

/// Online accumulator of count / mean / variance / min / max (Welford).
/// Used throughout the profiler to aggregate per-task measurements into
/// profile fields without storing every observation.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Exact accumulated sum, tracked directly: reconstructing it as
  /// mean * count drifts under Welford rounding, which matters when the
  /// value is exported as an authoritative metric total.
  double sum() const { return sum_; }
  /// Coefficient of variation (stddev / |mean|); 0 for a zero mean.
  double cv() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double sum_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact p-th percentile (0 <= p <= 100) by sorting a copy; linear
/// interpolation between ranks. Empty input yields 0.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Jaccard index between two categorical vectors compared positionally:
/// |matches| / |union| where the union of two equal-length feature vectors
/// is their length (the PStorM simplification that makes the index O(|S|),
/// thesis §4.2). Vectors must be the same length.
double PositionalJaccard(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

}  // namespace pstorm

#endif  // PSTORM_COMMON_STATISTICS_H_
