#ifndef PSTORM_COMMON_CODING_H_
#define PSTORM_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pstorm {

/// Byte-level encoders used by the storage engine's block and record
/// formats. All integers are little-endian fixed width or LEB128 varints.

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Parses a varint from the front of `*input`, advancing it past the
/// encoding. Returns false on truncated/overlong input.
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

/// Length-prefixed string: varint32 length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

}  // namespace pstorm

#endif  // PSTORM_COMMON_CODING_H_
