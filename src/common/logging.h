#ifndef PSTORM_COMMON_LOGGING_H_
#define PSTORM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/status.h"

namespace pstorm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level below which log lines are dropped.
/// Defaults to kInfo; tests lower it to kDebug when diagnosing.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after flushing. Used by PSTORM_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define PSTORM_LOG(level)                                          \
  ::pstorm::internal::LogMessage(::pstorm::LogLevel::k##level, \
                                 __FILE__, __LINE__)

/// Aborts with a diagnostic when `cond` is false. This guards internal
/// invariants (programming errors), never user input — user input errors
/// return Status.
#define PSTORM_CHECK(cond)                                       \
  if (cond) {                                                     \
  } else /* NOLINT */                                             \
    ::pstorm::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define PSTORM_CHECK_OK(expr)                                        \
  do {                                                               \
    ::pstorm::Status _pstorm_check_status = (expr);                  \
    PSTORM_CHECK(_pstorm_check_status.ok())                          \
        << "status: " << _pstorm_check_status.ToString();            \
  } while (false)

}  // namespace pstorm

#endif  // PSTORM_COMMON_LOGGING_H_
