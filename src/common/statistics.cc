#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pstorm {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cv() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::fabs(mean_);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  PSTORM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  PSTORM_CHECK(a.size() == b.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

double PositionalJaccard(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  PSTORM_CHECK(a.size() == b.size());
  if (a.empty()) return 1.0;
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

}  // namespace pstorm
