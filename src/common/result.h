#ifndef PSTORM_COMMON_RESULT_H_
#define PSTORM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace pstorm {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent (the StatusOr idiom). Accessing the value of an errored
/// Result aborts the process via PSTORM_CHECK, so callers must test `ok()`
/// first (or use `value_or`).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps `return value;` ergonomic.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error keeps `return status;` ergonomic.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PSTORM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PSTORM_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PSTORM_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PSTORM_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Evaluates `rexpr` (a Result<T>), propagating its status on error and
/// otherwise declaring `lhs` initialized with the value.
#define PSTORM_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  PSTORM_ASSIGN_OR_RETURN_IMPL_(                                  \
      PSTORM_MACRO_CONCAT_(_pstorm_result_, __LINE__), lhs, rexpr)

#define PSTORM_MACRO_CONCAT_INNER_(a, b) a##b
#define PSTORM_MACRO_CONCAT_(a, b) PSTORM_MACRO_CONCAT_INNER_(a, b)
#define PSTORM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace pstorm

#endif  // PSTORM_COMMON_RESULT_H_
