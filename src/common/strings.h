#ifndef PSTORM_COMMON_STRINGS_H_
#define PSTORM_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pstorm {

/// Splits `text` on `delim`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// "1.5 GB", "823 MB", "12 KB", "7 B" — for human-facing reports.
std::string HumanBytes(uint64_t bytes);

/// "2h 13m", "13m 44s", "44.2s", "183 ms" — for human-facing reports.
std::string HumanDuration(double seconds);

/// Fixed-point decimal rendering with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

}  // namespace pstorm

#endif  // PSTORM_COMMON_STRINGS_H_
