#ifndef PSTORM_COMMON_THREAD_POOL_H_
#define PSTORM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pstorm::common {

/// A fixed-size worker pool. Tasks are plain closures executed FIFO by the
/// next free worker. The pool is the process-wide substrate for
/// CPU-parallel work (the CBO search today; batch matching and sharded
/// scans later), so tasks must never *block on* other pool tasks —
/// ParallelFor below shows the pattern that stays deadlock-free: the
/// submitting thread participates in the work instead of waiting idle.
///
/// Schedule/Submit are thread-safe, including from inside a running pool
/// task (nested submission enqueues; it never runs inline and never
/// blocks).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Completes every task already scheduled, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Never blocks.
  void Schedule(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result; an exception
  /// thrown by `fn` surfaces from future.get().
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Schedule([task]() { (*task)(); });
    return result;
  }

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide pool, sized to the hardware concurrency, created on
  /// first use and kept alive for the life of the process.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `body(i)` for every i in [begin, end), spreading the iterations
/// across `pool` while the calling thread works too, and returns when all
/// claimed iterations have finished. At most `max_parallelism` threads
/// (0 = the pool size, calling thread included) process iterations
/// concurrently.
///
/// Semantics:
///  - An empty range returns immediately without touching the pool.
///  - `pool == nullptr` (or max_parallelism == 1) runs serially inline.
///  - If any `body` throws, unclaimed iterations are abandoned, already
///    running ones finish, and the first captured exception is rethrown on
///    the calling thread.
///  - Safe to call from inside a pool task: the caller drains iterations
///    itself and never waits on queued helpers, so nesting cannot
///    deadlock.
///
/// `body` must be safe to invoke concurrently from multiple threads.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t max_parallelism = 0);

}  // namespace pstorm::common

#endif  // PSTORM_COMMON_THREAD_POOL_H_
