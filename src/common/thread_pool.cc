#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace pstorm::common {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even during shutdown so ~ThreadPool never strands
      // a ParallelFor waiting on an iteration that was claimed but
      // enqueued behind the shutdown flag.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

namespace {

/// Shared bookkeeping of one ParallelFor call. Heap-allocated and owned
/// jointly by the caller and the helper tasks: helpers that get dequeued
/// after the range is exhausted (or after an abort) see `next >= end` and
/// exit without ever touching `body`, which may be gone by then.
struct ParallelForState {
  std::mutex mu;
  std::condition_variable cv;
  size_t next;
  size_t end;
  size_t active = 0;  // Iterations claimed and currently running.
  bool abort = false;
  std::exception_ptr error;
  const std::function<void(size_t)>* body;  // Valid only while claimable.
};

void DrainIterations(const std::shared_ptr<ParallelForState>& state) {
  for (;;) {
    size_t index;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->abort || state->next >= state->end) return;
      index = state->next++;
      ++state->active;
    }
    try {
      (*state->body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
      state->abort = true;
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->active;
      if (state->active == 0 &&
          (state->abort || state->next >= state->end)) {
        state->cv.notify_all();
      }
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t max_parallelism) {
  if (begin >= end) return;
  const size_t n = end - begin;
  size_t parallelism =
      max_parallelism == 0
          ? (pool == nullptr ? 1 : pool->num_threads())
          : max_parallelism;
  parallelism = std::min(parallelism, n);
  if (pool == nullptr || parallelism <= 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->next = begin;
  state->end = end;
  state->body = &body;
  // The calling thread counts toward the parallelism budget and works the
  // same claim loop as the helpers, so a ParallelFor issued from inside a
  // pool task still completes even when every worker is busy.
  for (size_t i = 0; i + 1 < parallelism; ++i) {
    pool->Schedule([state] { DrainIterations(state); });
  }
  DrainIterations(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->active == 0 &&
           (state->abort || state->next >= state->end);
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace pstorm::common
