#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace pstorm {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr uint64_t kKb = 1024;
  constexpr uint64_t kMb = kKb * 1024;
  constexpr uint64_t kGb = kMb * 1024;
  constexpr uint64_t kTb = kGb * 1024;
  char buf[64];
  if (bytes >= kTb) {
    std::snprintf(buf, sizeof(buf), "%.2f TB",
                  static_cast<double>(bytes) / static_cast<double>(kTb));
  } else if (bytes >= kGb) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / static_cast<double>(kGb));
  } else if (bytes >= kMb) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMb));
  } else if (bytes >= kKb) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / static_cast<double>(kKb));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string HumanDuration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    // Round *before* splitting into units, so 359.6 s carries into "6m 00s"
    // instead of printing "5m 60s" (and 3599.6 s into "1h 00m").
    const long total = std::lround(seconds);
    if (total < 3600) {
      std::snprintf(buf, sizeof(buf), "%ldm %02lds", total / 60, total % 60);
    } else {
      const long minutes = std::lround(seconds / 60.0);
      std::snprintf(buf, sizeof(buf), "%ldh %02ldm", minutes / 60,
                    minutes % 60);
    }
  }
  return buf;
}

}  // namespace pstorm
