#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pstorm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Integral of x^-s (the "h integral" of Hörmann's rejection-inversion
// method for Zipf sampling).
double HIntegral(double x, double s) {
  if (s == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double HIntegralInverse(double u, double s) {
  if (s == 1.0) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
}

double H(double x, double s) { return std::pow(x, -s); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  PSTORM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian(double mean, double stddev) {
  // Box–Muller; one value per call keeps the generator state trajectory
  // simple and reproducible.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  PSTORM_CHECK(n >= 1);
  PSTORM_CHECK(s > 0.0);
  if (n == 1) return 1;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_h_x1_ = HIntegral(1.5, s) - 1.0;
    zipf_h_n_ = HIntegral(static_cast<double>(n) + 0.5, s);
    zipf_threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5, s) - H(2, s), s);
  }
  for (;;) {
    const double u = zipf_h_n_ + NextDouble() * (zipf_h_x1_ - zipf_h_n_);
    const double x = HIntegralInverse(u, s);
    uint64_t k = static_cast<uint64_t>(std::llround(x));
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    if (kd - x <= zipf_threshold_ ||
        u >= HIntegral(kd + 0.5, s) - H(kd, s)) {
      return k;
    }
  }
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the parent state with the stream id through splitmix so sibling
  // streams are decorrelated.
  uint64_t mix = s_[0] ^ RotL(s_[3], 13) ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(SplitMix64(&mix));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  PSTORM_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<uint64_t> chosen;
  chosen.reserve(k);
  // For tiny k relative to n a hash set would do; a sorted vector keeps the
  // output ordered, which callers (split sampling) want anyway.
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextUint64(j + 1);
    bool found = false;
    for (uint64_t c : chosen) {
      if (c == t) {
        found = true;
        break;
      }
    }
    chosen.push_back(found ? j : t);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace pstorm
