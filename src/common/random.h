#ifndef PSTORM_COMMON_RANDOM_H_
#define PSTORM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pstorm {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Everything stochastic in the simulator flows from explicit
/// seeds through this class so runs are reproducible bit-for-bit across
/// platforms — std::mt19937 distributions are not portable across standard
/// library implementations, which is why the distributions below are
/// hand-rolled.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Gaussian with the given mean and standard deviation (Box–Muller).
  double Gaussian(double mean, double stddev);

  /// Log-normal: exp(Gaussian(mu, sigma)). Used for node-load noise, which
  /// is multiplicative and right-skewed (occasional badly overloaded nodes,
  /// i.e. stragglers).
  double LogNormal(double mu, double sigma);

  /// Zipf-distributed rank in [1, n] with exponent `s`. Used for word/key
  /// frequency distributions in the synthetic text data sets.
  uint64_t Zipf(uint64_t n, double s);

  /// True with probability p.
  bool Bernoulli(double p);

  /// A fresh generator whose stream is independent of this one.
  /// `stream_id` distinguishes children forked from the same parent state.
  Rng Fork(uint64_t stream_id);

  /// k distinct indices sampled uniformly from [0, n), in increasing order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
  // Cached Zipf constants (Hörmann rejection-inversion) so repeated draws
  // with the same (n, s) skip re-deriving them.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  double zipf_h_x1_ = 0.0;
  double zipf_h_n_ = 0.0;
  double zipf_threshold_ = 0.0;
};

}  // namespace pstorm

#endif  // PSTORM_COMMON_RANDOM_H_
