#ifndef PSTORM_COMMON_HASH_H_
#define PSTORM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace pstorm {

/// 64-bit FNV-1a. Stable across platforms (used in SSTable bloom filters
/// and for hashing intermediate keys to reduce partitions).
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixes an integer into an avalanche hash (finalizer of murmur3).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace pstorm

#endif  // PSTORM_COMMON_HASH_H_
