#include "optimizer/cbo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "whatif/map_outcome_cache.h"

namespace pstorm::optimizer {

namespace {

int LogUniformInt(Rng* rng, int lo, int hi) {
  const double x = rng->Uniform(std::log(static_cast<double>(lo)),
                                std::log(static_cast<double>(hi) + 1.0));
  return std::clamp(static_cast<int>(std::exp(x)), lo, hi);
}

}  // namespace

CostBasedOptimizer::CostBasedOptimizer(const whatif::WhatIfEngine* engine,
                                       Options options)
    : engine_(engine), options_(options) {
  PSTORM_CHECK(engine != nullptr);
}

Result<CostBasedOptimizer::Recommendation> CostBasedOptimizer::Optimize(
    const profiler::ExecutionProfile& profile, const mrsim::DataSetSpec& data,
    obs::CboTrace* trace) const {
  static obs::Histogram& optimize_micros =
      obs::MetricsRegistry::Global().GetHistogram("pstorm_cbo_optimize_micros");
  obs::ScopedTimer optimize_timer(&optimize_micros,
                                  trace != nullptr ? &trace->seconds : nullptr);
  const mrsim::ClusterSpec& cluster = engine_->cluster();
  const double max_sort_mb =
      std::max(32.0, cluster.task_heap_mb - options_.heap_margin_mb);
  const int max_reducers = 3 * cluster.total_reduce_slots();

  Rng rng(options_.seed);

  auto random_candidate = [&]() {
    mrsim::Configuration c;
    c.io_sort_mb = rng.Uniform(32.0, max_sort_mb);
    c.io_sort_record_percent = rng.Uniform(0.01, 0.40);
    c.io_sort_spill_percent = rng.Uniform(0.50, 0.95);
    c.io_sort_factor = LogUniformInt(&rng, 2, 300);
    c.use_combiner = rng.Bernoulli(0.5);
    c.min_num_spills_for_combine = rng.Bernoulli(0.5) ? 1 : 3;
    c.compress_map_output = rng.Bernoulli(0.5);
    c.reduce_slowstart_completed_maps = rng.Uniform(0.0, 1.0);
    c.num_reduce_tasks = LogUniformInt(&rng, 1, max_reducers);
    c.shuffle_input_buffer_percent = rng.Uniform(0.30, 0.90);
    c.shuffle_merge_percent = rng.Uniform(0.30, 0.95);
    c.inmem_merge_threshold = LogUniformInt(&rng, 100, 10000);
    c.reduce_input_buffer_percent = rng.Uniform(0.0, 0.60);
    c.compress_output = rng.Bernoulli(0.5);
    return c;
  };

  auto perturb = [&](const mrsim::Configuration& base) {
    mrsim::Configuration c = base;
    c.io_sort_mb = std::clamp(
        base.io_sort_mb * rng.LogNormal(0.0, 0.15), 32.0, max_sort_mb);
    c.io_sort_record_percent = std::clamp(
        base.io_sort_record_percent + rng.Gaussian(0.0, 0.03), 0.01, 0.40);
    c.io_sort_spill_percent = std::clamp(
        base.io_sort_spill_percent + rng.Gaussian(0.0, 0.05), 0.50, 0.95);
    c.io_sort_factor = std::clamp(
        static_cast<int>(base.io_sort_factor * rng.LogNormal(0.0, 0.2)), 2,
        300);
    if (rng.Bernoulli(0.15)) c.use_combiner = !c.use_combiner;
    if (rng.Bernoulli(0.15)) c.compress_map_output = !c.compress_map_output;
    if (rng.Bernoulli(0.15)) c.compress_output = !c.compress_output;
    c.reduce_slowstart_completed_maps = std::clamp(
        base.reduce_slowstart_completed_maps + rng.Gaussian(0.0, 0.1), 0.0,
        1.0);
    c.num_reduce_tasks = std::clamp(
        static_cast<int>(std::lround(base.num_reduce_tasks *
                                     rng.LogNormal(0.0, 0.25))),
        1, max_reducers);
    c.shuffle_input_buffer_percent = std::clamp(
        base.shuffle_input_buffer_percent + rng.Gaussian(0.0, 0.05), 0.30,
        0.90);
    c.reduce_input_buffer_percent = std::clamp(
        base.reduce_input_buffer_percent + rng.Gaussian(0.0, 0.08), 0.0,
        0.60);
    return c;
  };

  Recommendation best;
  best.predicted_runtime_s = std::numeric_limits<double>::infinity();
  int evaluated = 0;

  const size_t num_threads =
      options_.num_threads > 0
          ? static_cast<size_t>(options_.num_threads)
          : std::max(1u, std::thread::hardware_concurrency());
  common::ThreadPool* pool =
      num_threads > 1 ? common::ThreadPool::Shared() : nullptr;
  // One memo table per Optimize call: it is keyed on the map-relevant
  // configuration subset alone, so it is only valid for this
  // (profile, data) pair.
  whatif::MapOutcomeCache map_cache;

  // Evaluates a batch of candidates across the pool and folds it into the
  // incumbent. Every candidate in a batch is generated before any is
  // evaluated (evaluation consumes no randomness), and the argmin scans in
  // candidate order with a strict '<' — ties keep the earlier index — so
  // the result is bit-identical to the sequential generate-then-evaluate
  // loop for any thread count.
  auto evaluate_batch = [&](const std::vector<mrsim::Configuration>& batch,
                            const char* phase) {
    obs::CboRoundTrace round_trace;
    round_trace.phase = phase;
    {
      obs::ScopedTimer round_timer(nullptr, &round_trace.seconds);
      std::vector<double> runtimes(batch.size(),
                                   std::numeric_limits<double>::infinity());
      std::vector<char> feasible(batch.size(), 0);
      common::ParallelFor(
          pool, 0, batch.size(),
          [&](size_t i) {
            const mrsim::Configuration& c = batch[i];
            if (!c.Validate().ok()) return;
            auto prediction = engine_->Predict(profile, data, c, &map_cache);
            if (!prediction.ok()) return;
            runtimes[i] = prediction->runtime_s;
            feasible[i] = 1;
          },
          num_threads);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!feasible[i]) continue;
        ++evaluated;
        ++round_trace.candidates_evaluated;
        if (runtimes[i] < best.predicted_runtime_s) {
          best.predicted_runtime_s = runtimes[i];
          best.config = batch[i];
        }
      }
    }
    if (trace != nullptr) {
      round_trace.map_cache_hits = map_cache.hits();
      round_trace.best_predicted_s = best.predicted_runtime_s;
      trace->rounds.push_back(std::move(round_trace));
    }
  };

  // Seed points first: the Hadoop defaults and a sensible-reducers
  // variant, so the optimizer can never be worse than the obvious
  // baselines according to its own model. Then global exploration — all
  // candidates drawn up front from the single RNG on this thread.
  {
    std::vector<mrsim::Configuration> batch;
    batch.reserve(2 + static_cast<size_t>(options_.global_samples));
    batch.emplace_back();
    {
      mrsim::Configuration c;
      c.num_reduce_tasks =
          std::max(1, static_cast<int>(0.9 * cluster.total_reduce_slots()));
      batch.push_back(c);
    }
    for (int i = 0; i < options_.global_samples; ++i) {
      batch.push_back(random_candidate());
    }
    evaluate_batch(batch, "seed+global");
  }

  // Local refinement around the incumbent (recursive random search). A
  // round's perturbations all derive from the incumbent entering the
  // round, so generation stays on the submitting thread and rounds remain
  // sequential barriers.
  for (int round = 0; round < options_.refinement_rounds; ++round) {
    const mrsim::Configuration incumbent = best.config;
    std::vector<mrsim::Configuration> batch;
    batch.reserve(static_cast<size_t>(options_.local_samples));
    for (int i = 0; i < options_.local_samples; ++i) {
      batch.push_back(perturb(incumbent));
    }
    char phase[24];
    std::snprintf(phase, sizeof(phase), "refine %d", round + 1);
    evaluate_batch(batch, phase);
  }

  static obs::Counter& candidates_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "pstorm_cbo_candidates_evaluated_total");
  candidates_counter.Add(static_cast<uint64_t>(evaluated));
  if (trace != nullptr) {
    trace->candidates_evaluated = static_cast<uint64_t>(evaluated);
    trace->map_cache_hits = map_cache.hits();
    trace->map_cache_lookups = map_cache.lookups();
  }

  if (!std::isfinite(best.predicted_runtime_s)) {
    return Status::Internal("no feasible configuration found");
  }
  best.candidates_evaluated = evaluated;
  return best;
}

}  // namespace pstorm::optimizer
