#include "optimizer/rbo.h"

#include <algorithm>
#include <cmath>

namespace pstorm::optimizer {

mrsim::Configuration RuleBasedOptimizer::Recommend(
    const mrsim::ClusterSpec& cluster, const RboHints& hints) const {
  mrsim::Configuration config;  // Start from the Hadoop defaults.

  // Rule: mapred.compress.map.output — enable LZO compression when the
  // intermediate data is non-negligible or larger than the input. Trades
  // CPU for spill IO and shuffle volume.
  if (hints.expect_large_intermediate_data) {
    config.compress_map_output = true;
  }

  // Rule: io.sort.mb — raise the buffer for jobs with larger size/number
  // of intermediate records, bounded by what the task heap can spare.
  if (hints.expect_large_intermediate_data) {
    config.io_sort_mb =
        std::min(200.0, std::floor(cluster.task_heap_mb * 0.5));
  }

  // Rule: io.sort.record.percent — when intermediate records are small,
  // reserve more of the buffer for their metadata so record count does
  // not trigger premature spills.
  if (hints.expect_small_intermediate_records) {
    config.io_sort_record_percent = 0.15;
  }

  // Rule: combiner usage — always enable the combiner when the reduce
  // function is associative and commutative (sum, min, max).
  config.use_combiner = hints.reduce_is_associative;

  // Rule: mapred.reduce.tasks — 90% of the cluster's reduce slots, so a
  // failed reducer always has a free slot to retry on.
  config.num_reduce_tasks = std::max(
      1, static_cast<int>(0.9 * cluster.total_reduce_slots()));

  return config;
}

}  // namespace pstorm::optimizer
