#ifndef PSTORM_OPTIMIZER_RBO_H_
#define PSTORM_OPTIMIZER_RBO_H_

#include "mrsim/cluster.h"
#include "mrsim/configuration.h"

namespace pstorm::optimizer {

/// What a Hadoop administrator is assumed to know about a job before
/// running it — the "expectations" the Appendix B tuning rules condition
/// on. Unlike the CBO, the RBO never sees an execution profile.
struct RboHints {
  /// The map output is expected to be as large as or larger than the
  /// input (triggers the compression rule and the io.sort.mb rule).
  bool expect_large_intermediate_data = false;
  /// Intermediate records are expected to be individually small (triggers
  /// the io.sort.record.percent rule).
  bool expect_small_intermediate_records = true;
  /// The reduce function is associative and commutative, so a combiner is
  /// safe (triggers the combiner rule).
  bool reduce_is_associative = false;
};

/// The thesis Appendix B rule-based optimizer: five rules collected from
/// Hadoop tuning folklore. Heuristic by design — the thesis shows it can
/// even hurt (Figure 6.3, inverted index).
class RuleBasedOptimizer {
 public:
  mrsim::Configuration Recommend(const mrsim::ClusterSpec& cluster,
                                 const RboHints& hints) const;
};

}  // namespace pstorm::optimizer

#endif  // PSTORM_OPTIMIZER_RBO_H_
