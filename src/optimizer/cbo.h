#ifndef PSTORM_OPTIMIZER_CBO_H_
#define PSTORM_OPTIMIZER_CBO_H_

#include <cstdint>

#include "common/result.h"
#include "mrsim/configuration.h"
#include "mrsim/dataset.h"
#include "obs/trace.h"
#include "profiler/profile.h"
#include "whatif/whatif_engine.h"

namespace pstorm::optimizer {

/// The Starfish cost-based optimizer stand-in: searches the space of the
/// 14 configuration parameters, asking the what-if engine to predict the
/// runtime of each candidate, and recommends the cheapest. Quality depends
/// entirely on the profile it is given — which is exactly what PStorM
/// supplies.
class CostBasedOptimizer {
 public:
  struct Options {
    /// Random candidates in the global exploration phase.
    int global_samples = 400;
    /// Random candidates in each local refinement phase.
    int local_samples = 150;
    /// Refinement rounds around the incumbent best.
    int refinement_rounds = 2;
    /// Heap headroom the optimizer must leave when sizing io.sort.mb.
    double heap_margin_mb = 80.0;
    uint64_t seed = 17;
    /// What-if evaluations run across the shared thread pool with this
    /// much parallelism; 0 means the hardware concurrency, 1 runs inline
    /// on the submitting thread. The recommendation is bit-identical for
    /// every value: candidates are generated up front from the single
    /// seeded RNG and reduced with a deterministic argmin.
    int num_threads = 0;
  };

  /// `engine` must outlive the optimizer.
  explicit CostBasedOptimizer(const whatif::WhatIfEngine* engine)
      : CostBasedOptimizer(engine, Options{}) {}
  CostBasedOptimizer(const whatif::WhatIfEngine* engine, Options options);

  /// The recommendation plus its predicted runtime.
  struct Recommendation {
    mrsim::Configuration config;
    double predicted_runtime_s = 0;
    int candidates_evaluated = 0;
  };

  /// Finds a near-optimal configuration for the job described by
  /// `profile` on `data`. `trace` (optional) receives the search-effort
  /// accounting: candidates evaluated, MapOutcomeCache hit ratio, and wall
  /// time per round.
  Result<Recommendation> Optimize(const profiler::ExecutionProfile& profile,
                                  const mrsim::DataSetSpec& data,
                                  obs::CboTrace* trace = nullptr) const;

 private:
  const whatif::WhatIfEngine* engine_;
  Options options_;
};

}  // namespace pstorm::optimizer

#endif  // PSTORM_OPTIMIZER_CBO_H_
