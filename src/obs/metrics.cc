#include "obs/metrics.h"

#include <cmath>
#include <sstream>

namespace pstorm {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

std::pair<uint64_t, uint64_t> Histogram::BucketRange(int idx) {
  if (idx <= 0) return {0, 0};
  const uint64_t lo = uint64_t{1} << (idx - 1);
  const uint64_t hi =
      idx >= 64 ? ~uint64_t{0} : (uint64_t{1} << idx) - 1;
  return {lo, hi};
}

std::pair<uint64_t, uint64_t> Histogram::QuantileBounds(double p) const {
  uint64_t counts[kBuckets];
  uint64_t n = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    n += counts[i];
  }
  if (n == 0) return {0, 0};
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;

  // Mirror pstorm::Percentile's rank convention: the exact value is an
  // interpolation between the floor(rank)-th and ceil(rank)-th samples, so
  // those two samples' buckets bracket it.
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  const auto lo_idx = static_cast<uint64_t>(std::floor(rank));
  const auto hi_idx = static_cast<uint64_t>(std::ceil(rank));

  auto bucket_of = [&counts](uint64_t sample_idx) {
    uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += counts[i];
      if (sample_idx < cum) return i;
    }
    return kBuckets - 1;
  };
  return {BucketRange(bucket_of(lo_idx)).first,
          BucketRange(bucket_of(hi_idx)).second};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return *slot;
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t c = hist->BucketCount(i);
      if (c == 0) continue;  // only populated buckets get a line
      cum += c;
      out << name << "_bucket{le=\"" << Histogram::BucketRange(i).second
          << "\"} " << cum << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    out << name << "_sum " << hist->Sum() << "\n";
    out << name << "_count " << hist->Count() << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

void MetricsRegistry::SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace pstorm
