#ifndef PSTORM_OBS_METRICS_H_
#define PSTORM_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace pstorm {
namespace obs {

// When the build compiles observability out (-DPSTORM_OBS_DISABLED), every
// mutation below folds to a constant branch the optimizer deletes; the types
// and the registry keep existing so call sites never need #ifdefs.
#ifdef PSTORM_OBS_DISABLED
inline constexpr bool kCompiledOut = true;
#else
inline constexpr bool kCompiledOut = false;
#endif

namespace internal {

extern std::atomic<bool> g_enabled;

inline bool Enabled() {
  if constexpr (kCompiledOut) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

/// Dense per-thread shard index. Threads beyond kShards wrap around, which
/// only costs contention, never correctness.
inline uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  static thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace internal

/// Monotonic counter sharded across cache lines so concurrent writers on the
/// hot path never bounce the same line. Reads sum the shards and are
/// approximate only in the sense of racing with in-flight increments; every
/// increment is eventually visible exactly once.
class Counter {
 public:
  static constexpr uint32_t kShards = 16;
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be a power of 2");

  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    if (!internal::Enabled()) return;
    shards_[internal::ThisThreadShard() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  std::string name_;
  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value (e.g. live region count).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!internal::Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!internal::Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket base-2 exponential histogram for nonnegative integer samples
/// (latencies in microseconds, sizes in bytes). Bucket 0 holds exactly {0};
/// bucket k >= 1 holds [2^(k-1), 2^k - 1], so any uint64 sample lands in one
/// of the 65 buckets via std::bit_width. Recording is one relaxed fetch_add
/// per sample; there is no lock anywhere.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    if (!internal::Enabled()) return;
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  /// Inclusive value range covered by bucket `idx`.
  static std::pair<uint64_t, uint64_t> BucketRange(int idx);

  /// Bounds within which the exact p-th percentile (as computed by
  /// pstorm::Percentile over the same samples, rank = p/100*(n-1) with
  /// linear interpolation) is guaranteed to lie. The lower bound is the
  /// bucket floor of the floor(rank)-th sample, the upper bound the bucket
  /// ceiling of the ceil(rank)-th sample. Returns {0, 0} when empty.
  std::pair<uint64_t, uint64_t> QuantileBounds(double p) const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Process-wide registry. Get*() interns by name and returns a reference that
/// stays valid for the life of the process (instruments are never destroyed,
/// only zeroed), so hot paths cache it in a function-local static.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Prometheus-style text exposition, instruments sorted by name.
  std::string Dump() const;

  /// Zeroes every instrument without invalidating references.
  void ResetForTest();

  /// Runtime kill switch. Disabled recording is a single relaxed load and a
  /// predictable branch; Dump() keeps working and reports whatever was
  /// recorded while enabled. Defaults to enabled (unless compiled out).
  static void SetEnabled(bool enabled);
  static bool Enabled() { return internal::Enabled(); }

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records the wall time of a scope into a histogram (microseconds) and/or a
/// caller-provided seconds slot. Either sink may be null.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, double* out_seconds = nullptr)
      : hist_(hist),
        out_seconds_(out_seconds),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(seconds * 1e6));
    }
    if (out_seconds_ != nullptr) *out_seconds_ = seconds;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  double* out_seconds_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace pstorm

#endif  // PSTORM_OBS_METRICS_H_
