#ifndef PSTORM_OBS_TRACE_H_
#define PSTORM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pstorm {
namespace obs {

/// One matcher funnel stage on one side (map or reduce): how many candidates
/// flowed in, how many survived. `detail` carries the stage-specific datum
/// (threshold used, best score seen) as preformatted text.
struct StageTrace {
  std::string name;
  uint64_t candidates_in = 0;
  uint64_t candidates_out = 0;
  std::string detail;
};

/// One side of the two-sided match: the stage funnel plus how the final
/// winner was chosen.
struct SideTrace {
  std::string side;            // "map" or "reduce"
  std::string path;            // "full", "cost_factor_fallback", "no_match"
  std::vector<StageTrace> stages;
  uint64_t tie_break_candidates = 0;
  uint64_t tie_break_vanished = 0;  // candidates deleted mid-match
  std::string winner_job_key;       // empty when no match survived
  double winner_score = 0.0;
};

/// Store-side effort for one submission, accumulated across both sides.
struct StoreOpsTrace {
  uint64_t scans = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t regions_recovered_empty = 0;
  uint64_t entry_gets = 0;
  uint64_t entry_cache_hits = 0;
  uint64_t entry_cache_misses = 0;
  uint64_t profiles_put = 0;
};

/// One round of the CBO search (seed batch or a refinement round).
struct CboRoundTrace {
  std::string phase;  // "seed+global" or "refine N"
  uint64_t candidates_evaluated = 0;
  uint64_t map_cache_hits = 0;   // cumulative cache hits after this round
  double best_predicted_s = 0.0;
  double seconds = 0.0;
};

struct CboTrace {
  std::vector<CboRoundTrace> rounds;
  uint64_t candidates_evaluated = 0;
  uint64_t map_cache_hits = 0;
  uint64_t map_cache_lookups = 0;
  double seconds = 0.0;
};

/// A named wall-time interval inside the submission (see Span below).
struct SpanRecord {
  std::string name;
  double seconds = 0.0;
};

/// Everything one SubmitJob did, for postmortems and the example service's
/// per-job log lines. Owned by the caller, filled in by the layers the
/// submission passes through; never touched concurrently.
struct SubmissionTrace {
  std::string job_key;
  bool matched = false;
  bool composite = false;
  std::string profile_source;  // job key of the matched profile, if any
  SideTrace map_side;
  SideTrace reduce_side;
  StoreOpsTrace store;
  CboTrace cbo;
  std::vector<SpanRecord> timeline;

  /// Multi-line human-readable rendering (indented; stable field order).
  std::string ToString() const;
};

/// Appends a SpanRecord with the scope's wall time to `trace->timeline` on
/// destruction. A null trace makes the span free apart from the clock reads.
class Span {
 public:
  Span(SubmissionTrace* trace, std::string name)
      : trace_(trace), name_(std::move(name)) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~Span() {
    if (trace_ == nullptr) return;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    trace_->timeline.push_back(SpanRecord{std::move(name_), seconds});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SubmissionTrace* trace_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace pstorm

#endif  // PSTORM_OBS_TRACE_H_
