#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace pstorm {
namespace obs {

namespace {

std::string Seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

void AppendSide(std::ostringstream& out, const SideTrace& side) {
  out << "  " << side.side << " side: path=" << side.path << "\n";
  for (const StageTrace& stage : side.stages) {
    out << "    " << stage.name << ": " << stage.candidates_in << " -> "
        << stage.candidates_out;
    if (!stage.detail.empty()) out << " (" << stage.detail << ")";
    out << "\n";
  }
  if (side.tie_break_candidates > 0) {
    out << "    tie-break: " << side.tie_break_candidates << " candidates";
    if (side.tie_break_vanished > 0) {
      out << ", " << side.tie_break_vanished << " vanished mid-match";
    }
    if (!side.winner_job_key.empty()) {
      out << ", winner=" << side.winner_job_key << " score="
          << side.winner_score;
    }
    out << "\n";
  }
}

}  // namespace

std::string SubmissionTrace::ToString() const {
  std::ostringstream out;
  out << "submission " << job_key << ": "
      << (matched ? (composite ? "matched (composite)" : "matched")
                  : "no match");
  if (!profile_source.empty()) out << " source=" << profile_source;
  out << "\n";
  AppendSide(out, map_side);
  AppendSide(out, reduce_side);
  out << "  store: scans=" << store.scans << " rows_scanned="
      << store.rows_scanned << " rows_returned=" << store.rows_returned
      << " entry_gets=" << store.entry_gets << " cache_hits="
      << store.entry_cache_hits << " cache_misses="
      << store.entry_cache_misses;
  if (store.regions_recovered_empty > 0) {
    out << " regions_recovered_empty=" << store.regions_recovered_empty;
  }
  if (store.profiles_put > 0) out << " profiles_put=" << store.profiles_put;
  out << "\n";
  if (!cbo.rounds.empty() || cbo.candidates_evaluated > 0) {
    out << "  cbo: evaluated=" << cbo.candidates_evaluated
        << " map_cache_hits=" << cbo.map_cache_hits << "/"
        << cbo.map_cache_lookups << " wall=" << Seconds(cbo.seconds) << "\n";
    for (const CboRoundTrace& round : cbo.rounds) {
      out << "    " << round.phase << ": evaluated="
          << round.candidates_evaluated << " best="
          << Seconds(round.best_predicted_s) << " wall="
          << Seconds(round.seconds) << " cum_map_cache_hits="
          << round.map_cache_hits << "\n";
    }
  }
  if (!timeline.empty()) {
    out << "  timeline:";
    for (const SpanRecord& span : timeline) {
      out << " " << span.name << "=" << Seconds(span.seconds);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace pstorm
