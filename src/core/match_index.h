#ifndef PSTORM_CORE_MATCH_INDEX_H_
#define PSTORM_CORE_MATCH_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/feature_vector.h"

namespace pstorm::core {

/// Tuning knobs of the secondary match index (see DESIGN.md §13).
struct MatchIndexOptions {
  /// LSH-style band count for the bucketed dynamic-feature spaces: the
  /// dimensions are split into `bands` contiguous subspaces, each with its
  /// own inverted cell lists. One band gives exact cell-level pruning on
  /// the full distance (the tightest filter); more bands shrink each cell
  /// key but prune each band at only theta/sqrt(bands) over a *subset* of
  /// the dimensions and union the survivors, which on skewed data admits
  /// members that are close in any one band (see DESIGN.md §13 for
  /// measurements). Spaces wider than 4 dims need >=ceil(dims/4) bands to
  /// fit the packed key. Clamped to [ceil(dims/4), dims] per space.
  int bands = 1;
  /// Quantization width of a cell in asinh(value) space. Wider cells mean
  /// fewer, fuller cells (cheaper cell sweep, coarser pruning).
  double cell_width = 0.5;
};

/// An exact secondary index over one vector space (e.g. "map-side dynamic
/// features"): stores every member contiguously in dimension-major (SoA)
/// order and, when `bucketed`, additionally maintains per-band inverted
/// lists keyed on coarse quantized cells of the raw values.
///
/// A lookup enumerates only the members of cells whose minimum possible
/// normalized distance to the probe is within the band's pruning radius,
/// then verifies the survivors with a branch-free vectorized kernel that
/// replays the exhaustive filter's exact arithmetic — the result is the
/// same key set, in the same (lexicographic) order, as the pushed-down
/// region scan it replaces.
///
/// Cell keys are pure functions of the *raw* feature values (quantized in
/// asinh space, which is sign-preserving and scale-free), so they stay
/// valid as the store's normalization bounds widen; normalization enters
/// only at query time, when cell boundaries are mapped through the current
/// bounds.
///
/// Not internally synchronized: the owner (ProfileStore) serializes
/// mutations and excludes them from lookups.
class VectorSpaceIndex {
 public:
  VectorSpaceIndex(size_t dims, bool bucketed, MatchIndexOptions options);

  /// Inserts or replaces `key`. `values.size()` must equal dims().
  void Put(const std::string& key, const std::vector<double>& values);
  /// Removes `key` (idempotent); returns whether it was present.
  bool Delete(const std::string& key);
  void Clear();

  size_t size() const { return live_; }
  size_t dims() const { return dims_; }

  struct QueryStats {
    uint64_t cells_visited = 0;
    uint64_t cells_pruned = 0;
    /// Posting entries enumerated from surviving cells (pre-dedupe); the
    /// index's analogue of rows_scanned.
    uint64_t candidates_enumerated = 0;
    uint64_t candidates_returned = 0;
  };

  /// Keys whose exact normalized Euclidean distance to `probe` is within
  /// `theta`, sorted lexicographically. `mins`/`ranges` are the current
  /// normalization (FeatureBounds mins and effective ranges); the distance
  /// replays `(v - min) / range` per dimension, the squared sum in
  /// dimension order, then `sqrt(sum) <= theta` — the exhaustive filter's
  /// arithmetic exactly.
  std::vector<std::string> Lookup(const std::vector<double>& probe,
                                  double theta,
                                  const std::vector<double>& mins,
                                  const std::vector<double>& ranges,
                                  QueryStats* stats = nullptr) const;

  /// (key, raw values) of every live member, sorted by key. The cell
  /// structure is a pure function of the values, so snapshot equality
  /// implies index equality (crash tests compare rebuilt vs incremental).
  std::vector<std::pair<std::string, std::vector<double>>> Snapshot() const;

 private:
  struct Band {
    size_t begin = 0;  // [begin, end) of the dims this band covers.
    size_t end = 0;
    /// Packed quantized cell -> slots of the members in that cell.
    std::unordered_map<uint64_t, std::vector<uint32_t>> cells;
  };

  uint64_t CellKey(const Band& band, const std::vector<double>& values) const;
  void RemoveSlot(uint32_t slot);

  const size_t dims_;
  const bool bucketed_;
  const double cell_width_;

  /// Dimension-major member storage; slot-parallel with keys_. Tombstoned
  /// slots keep their values (they are unreachable: not in any posting
  /// list, key erased) and are reused by the next Put.
  SoaBatch soa_;
  std::vector<std::string> keys_;  // slot -> key; "" = tombstone.
  std::unordered_map<std::string, uint32_t> slot_of_key_;
  std::vector<uint32_t> free_slots_;
  size_t live_ = 0;

  std::vector<Band> bands_;  // Empty when !bucketed_.
};

/// The full secondary-index layer over a ProfileStore's discovery
/// features: one bucketed space per side for the dynamic-statistic
/// vectors (stage 1 of the funnel) and one scan-only SoA space per side
/// for the cost factors (the alternative filter). Maintained incrementally
/// on PutProfile/DeleteProfile and rebuilt from the table on open.
/// Dimensionality of each indexed space; must match the store's column
/// vectors (Tables 4.1/4.2: 4/5 map-side, 2/4 reduce-side).
struct MatchIndexSpec {
  size_t map_dynamic_dims = 4;
  size_t map_cost_dims = 5;
  size_t reduce_dynamic_dims = 2;
  size_t reduce_cost_dims = 4;
};

class MatchIndex {
 public:
  using Spec = MatchIndexSpec;

  explicit MatchIndex(Spec spec = {}, MatchIndexOptions options = {});

  /// Side selectors (profile_store.h's Side enum maps onto these; this
  /// header stays below profile_store.h in the include order).
  static constexpr int kMap = 0;
  static constexpr int kReduce = 1;

  /// Inserts or replaces `job_key` in all four spaces. A vector of the
  /// wrong length removes the key from that space only — mirroring the
  /// exhaustive filter, which rejects rows with missing or malformed
  /// columns per scanned vector, not per profile.
  void Put(const std::string& job_key, const std::vector<double>& map_dynamic,
           const std::vector<double>& map_costs,
           const std::vector<double>& reduce_dynamic,
           const std::vector<double>& reduce_costs);
  void Delete(const std::string& job_key);
  void Clear();

  /// Live members of the side's dynamic space (the store's notion of an
  /// indexed profile).
  size_t size(int side) const { return dynamic_[side].size(); }

  const VectorSpaceIndex& dynamic_space(int side) const {
    return dynamic_[side];
  }
  const VectorSpaceIndex& cost_space(int side) const { return cost_[side]; }

  std::vector<std::string> DynamicLookup(
      int side, const std::vector<double>& probe, double theta,
      const std::vector<double>& mins, const std::vector<double>& ranges,
      VectorSpaceIndex::QueryStats* stats = nullptr) const {
    return dynamic_[side].Lookup(probe, theta, mins, ranges, stats);
  }
  std::vector<std::string> CostLookup(
      int side, const std::vector<double>& probe, double theta,
      const std::vector<double>& mins, const std::vector<double>& ranges,
      VectorSpaceIndex::QueryStats* stats = nullptr) const {
    return cost_[side].Lookup(probe, theta, mins, ranges, stats);
  }

 private:
  VectorSpaceIndex dynamic_[2];
  VectorSpaceIndex cost_[2];
};

}  // namespace pstorm::core

#endif  // PSTORM_CORE_MATCH_INDEX_H_
