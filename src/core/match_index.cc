#include "core/match_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace pstorm::core {

namespace {

/// Quantized coordinates are packed 16 bits per dimension into the 64-bit
/// cell key, so a band covers at most 4 dimensions. kNanCoord marks a NaN
/// value (its cell is never pruned into the result: the exact verify
/// rejects NaN distances, as the exhaustive filter does).
constexpr int kMaxCoord = 32766;
constexpr int kMinCoord = -32766;
constexpr int kNanCoord = -32768;
constexpr size_t kMaxDimsPerBand = 4;

int QuantizeCoord(double value, double cell_width) {
  const double u = std::asinh(value) / cell_width;
  if (std::isnan(u)) return kNanCoord;
  if (u >= kMaxCoord) return kMaxCoord;
  if (u <= kMinCoord) return kMinCoord;
  return static_cast<int>(std::floor(u));
}

/// The raw-value interval covered by coordinate `c`, padded so that every
/// value that quantizes to `c` provably lies inside despite asinh/sinh
/// rounding. Clamped edge coordinates extend to infinity.
void CoordInterval(int c, double cell_width, double* lo, double* hi) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (c == kNanCoord) {
    // NaN members never pass the exact filter; an unprunable interval
    // keeps the cell conservative without special-casing the caller.
    *lo = -kInf;
    *hi = kInf;
    return;
  }
  *lo = c <= kMinCoord ? -kInf : std::sinh(c * cell_width);
  *hi = c >= kMaxCoord ? kInf : std::sinh((c + 1) * cell_width);
  if (std::isfinite(*lo)) *lo -= std::fabs(*lo) * 1e-9 + 1e-12;
  if (std::isfinite(*hi)) *hi += std::fabs(*hi) * 1e-9 + 1e-12;
}

}  // namespace

VectorSpaceIndex::VectorSpaceIndex(size_t dims, bool bucketed,
                                   MatchIndexOptions options)
    : dims_(dims),
      bucketed_(bucketed),
      cell_width_(options.cell_width > 0 ? options.cell_width : 0.5),
      soa_(dims) {
  PSTORM_CHECK(dims_ > 0);
  if (!bucketed_) return;
  // A band's coordinates must fit the packed cell key; the band count is
  // otherwise the caller's trade-off between pruning radius
  // (theta/sqrt(bands), finer with more bands) and lookups touching every
  // band.
  const size_t min_bands = (dims_ + kMaxDimsPerBand - 1) / kMaxDimsPerBand;
  size_t bands = options.bands < 1 ? 1 : static_cast<size_t>(options.bands);
  bands = std::clamp(bands, min_bands, dims_);
  const size_t base = dims_ / bands;
  const size_t extra = dims_ % bands;
  size_t begin = 0;
  for (size_t b = 0; b < bands; ++b) {
    Band band;
    band.begin = begin;
    band.end = begin + base + (b < extra ? 1 : 0);
    begin = band.end;
    bands_.push_back(std::move(band));
  }
  PSTORM_CHECK(begin == dims_);
}

uint64_t VectorSpaceIndex::CellKey(const Band& band,
                                   const std::vector<double>& values) const {
  uint64_t key = 0;
  for (size_t d = band.begin; d < band.end; ++d) {
    const int c = QuantizeCoord(values[d], cell_width_);
    key = (key << 16) | static_cast<uint16_t>(c - kNanCoord);
  }
  return key;
}

void VectorSpaceIndex::Put(const std::string& key,
                           const std::vector<double>& values) {
  PSTORM_CHECK(values.size() == dims_);
  Delete(key);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    soa_.Assign(slot, values);
    keys_[slot] = key;
  } else {
    slot = static_cast<uint32_t>(soa_.Append(values));
    keys_.push_back(key);
  }
  slot_of_key_[key] = slot;
  ++live_;
  for (Band& band : bands_) {
    band.cells[CellKey(band, values)].push_back(slot);
  }
}

bool VectorSpaceIndex::Delete(const std::string& key) {
  auto it = slot_of_key_.find(key);
  if (it == slot_of_key_.end()) return false;
  RemoveSlot(it->second);
  slot_of_key_.erase(it);
  return true;
}

void VectorSpaceIndex::RemoveSlot(uint32_t slot) {
  const std::vector<double> values = soa_.Row(slot);
  for (Band& band : bands_) {
    auto cell = band.cells.find(CellKey(band, values));
    PSTORM_CHECK(cell != band.cells.end());
    auto& slots = cell->second;
    slots.erase(std::find(slots.begin(), slots.end(), slot));
    if (slots.empty()) band.cells.erase(cell);
  }
  keys_[slot].clear();
  free_slots_.push_back(slot);
  --live_;
}

void VectorSpaceIndex::Clear() {
  soa_ = SoaBatch(dims_);
  keys_.clear();
  slot_of_key_.clear();
  free_slots_.clear();
  live_ = 0;
  for (Band& band : bands_) band.cells.clear();
}

std::vector<std::string> VectorSpaceIndex::Lookup(
    const std::vector<double>& probe, double theta,
    const std::vector<double>& mins, const std::vector<double>& ranges,
    QueryStats* stats) const {
  PSTORM_CHECK(probe.size() == dims_);
  PSTORM_CHECK(mins.size() == dims_);
  PSTORM_CHECK(ranges.size() == dims_);
  QueryStats local;
  QueryStats& q = stats != nullptr ? *stats : local;
  q = QueryStats{};

  // The probe normalized exactly as FeatureBounds::Normalize does.
  std::vector<double> normalized_probe(dims_);
  for (size_t d = 0; d < dims_; ++d) {
    normalized_probe[d] = (probe[d] - mins[d]) / ranges[d];
  }

  std::vector<uint32_t> rows;
  if (bands_.empty()) {
    // Scan-only space: verify every slot (tombstones are filtered at the
    // accept stage below).
    rows.resize(keys_.size());
    for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
    q.candidates_enumerated = live_;
  } else {
    // Any member within theta overall is within theta/sqrt(B) in at least
    // one of the B band subspaces, so the union of each band's
    // cells-within-radius is a superset of the true result. The per-band
    // radius is padded by a hair so floating-point slack in the cell
    // bounds can never drop a true candidate (the exact verify below
    // removes every false one).
    const double band_theta_sq =
        theta * theta / static_cast<double>(bands_.size()) * (1.0 + 1e-9) +
        1e-12;
    for (const Band& band : bands_) {
      for (const auto& [cell_key, slots] : band.cells) {
        ++q.cells_visited;
        // Minimum possible squared normalized distance, over this band's
        // dimensions, between the probe and any point of the cell.
        uint64_t packed = cell_key;
        double min_dist_sq = 0.0;
        for (size_t d = band.end; d-- > band.begin;) {
          const int c =
              static_cast<int>(packed & 0xffff) + kNanCoord;
          packed >>= 16;
          double lo, hi;
          CoordInterval(c, cell_width_, &lo, &hi);
          const double nlo = (lo - mins[d]) / ranges[d];
          const double nhi = (hi - mins[d]) / ranges[d];
          const double p = normalized_probe[d];
          double gap = 0.0;
          if (p < nlo) gap = nlo - p;
          if (p > nhi) gap = p - nhi;
          min_dist_sq += gap * gap;
        }
        if (min_dist_sq > band_theta_sq) {
          ++q.cells_pruned;
          continue;
        }
        q.candidates_enumerated += slots.size();
        rows.insert(rows.end(), slots.begin(), slots.end());
      }
    }
    // The same slot can surface from several bands.
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }

  std::vector<double> distances;
  BatchNormalizedDistances(soa_, rows, mins, ranges, normalized_probe,
                           &distances);
  std::vector<std::string> out;
  for (size_t j = 0; j < rows.size(); ++j) {
    if (distances[j] <= theta && !keys_[rows[j]].empty()) {
      out.push_back(keys_[rows[j]]);
    }
  }
  // The exhaustive path scans rows in key order; matching it exactly
  // keeps order-sensitive downstream steps (TieBreak among exact ties)
  // bit-identical.
  std::sort(out.begin(), out.end());
  q.candidates_returned = out.size();
  return out;
}

std::vector<std::pair<std::string, std::vector<double>>>
VectorSpaceIndex::Snapshot() const {
  std::vector<std::pair<std::string, std::vector<double>>> out;
  out.reserve(slot_of_key_.size());
  for (const auto& [key, slot] : slot_of_key_) {
    out.emplace_back(key, soa_.Row(slot));
  }
  std::sort(out.begin(), out.end());
  return out;
}

MatchIndex::MatchIndex(Spec spec, MatchIndexOptions options)
    : dynamic_{VectorSpaceIndex(spec.map_dynamic_dims, /*bucketed=*/true,
                                options),
               VectorSpaceIndex(spec.reduce_dynamic_dims, /*bucketed=*/true,
                                options)},
      cost_{VectorSpaceIndex(spec.map_cost_dims, /*bucketed=*/false, options),
            VectorSpaceIndex(spec.reduce_cost_dims, /*bucketed=*/false,
                             options)} {}

void MatchIndex::Put(const std::string& job_key,
                     const std::vector<double>& map_dynamic,
                     const std::vector<double>& map_costs,
                     const std::vector<double>& reduce_dynamic,
                     const std::vector<double>& reduce_costs) {
  const auto put_or_drop = [&](VectorSpaceIndex& space,
                               const std::vector<double>& values) {
    if (values.size() == space.dims()) {
      space.Put(job_key, values);
    } else {
      space.Delete(job_key);
    }
  };
  put_or_drop(dynamic_[kMap], map_dynamic);
  put_or_drop(cost_[kMap], map_costs);
  put_or_drop(dynamic_[kReduce], reduce_dynamic);
  put_or_drop(cost_[kReduce], reduce_costs);
}

void MatchIndex::Delete(const std::string& job_key) {
  for (VectorSpaceIndex& space : dynamic_) space.Delete(job_key);
  for (VectorSpaceIndex& space : cost_) space.Delete(job_key);
}

void MatchIndex::Clear() {
  for (VectorSpaceIndex& space : dynamic_) space.Clear();
  for (VectorSpaceIndex& space : cost_) space.Clear();
}

}  // namespace pstorm::core
