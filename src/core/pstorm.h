#ifndef PSTORM_CORE_PSTORM_H_
#define PSTORM_CORE_PSTORM_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/matcher.h"
#include "core/profile_store.h"
#include "jobs/benchmark_jobs.h"
#include "optimizer/cbo.h"
#include "profiler/profiler.h"
#include "whatif/whatif_engine.h"

namespace pstorm::core {

struct PStormOptions {
  MatchOptions match;
  optimizer::CostBasedOptimizer::Options cbo;
  /// Passed through to the profile store: the backing table (set
  /// store.table.db_options.maintenance_pool to move region
  /// flushes/compactions off the SubmitJob path onto the background
  /// scheduler) plus the secondary match index knobs (index_bands,
  /// index_rebuild_on_open, ...).
  ProfileStoreOptions store;
};

/// The PStorM system facade (thesis chapter 3): given a submitted MR job,
/// run one sample map task (plus reducers) with profiling on, probe the
/// profile store, and
///
///  * on a match: hand the (possibly composite) stored profile to the
///    Starfish CBO, then run the job with the tuned configuration and
///    profiling off;
///  * on No Match Found: run the job with the submitted configuration and
///    profiling on, and store the collected complete profile for future
///    submissions.
///
/// Thread-safety contract: SubmitJob is reentrant — any number of threads
/// may submit jobs concurrently against one PStorM instance. Each call
/// works on its own SubmissionContext (sample, probe, matcher, CBO); the
/// only shared mutable state is the ProfileStore, which synchronizes
/// internally. Matching runs against whatever profiles are visible when
/// the probe's scans execute, exactly as in a shared-cluster deployment
/// where submissions race.
class PStorM {
 public:
  /// `simulator` and `env` must outlive the instance. `store_path` roots
  /// the profile store inside `env`.
  static Result<std::unique_ptr<PStorM>> Create(
      const mrsim::Simulator* simulator, storage::Env* env,
      std::string store_path, PStormOptions options = PStormOptions{});

  struct SubmissionOutcome {
    /// Whether the matcher found a usable profile.
    bool matched = false;
    /// Whether the returned profile stitched two different jobs.
    bool composite = false;
    /// "job@dataset" (or "a+b" for composites) the profile came from;
    /// empty when no match.
    std::string profile_source;
    /// Configuration the job finally ran with.
    mrsim::Configuration config_used;
    /// Wall time of the final run.
    double runtime_s = 0;
    /// Wall time of the 1-task sampling run (PStorM's overhead).
    double sample_runtime_s = 0;
    /// CBO's predicted runtime for the chosen configuration (0 when the
    /// job ran untuned).
    double predicted_runtime_s = 0;
    /// True when a freshly collected profile was added to the store.
    bool stored_new_profile = false;
  };

  /// Runs the full submission workflow. Safe to call concurrently.
  /// `trace` (optional) receives the submission's full story: the matcher
  /// stage funnel for both sides, store-op accounting, CBO search effort,
  /// and a phase timeline. Each concurrent call must pass its own trace.
  Result<SubmissionOutcome> SubmitJob(const jobs::BenchmarkJob& job,
                                      const mrsim::DataSetSpec& data,
                                      const mrsim::Configuration& submitted,
                                      uint64_t seed,
                                      obs::SubmissionTrace* trace = nullptr)
      const;

  /// Adds an existing complete profile (e.g. collected elsewhere).
  Status AddProfile(const std::string& job_key,
                    const profiler::ExecutionProfile& profile,
                    const staticanalysis::StaticFeatures& statics);

  ProfileStore& store() { return *store_; }
  const ProfileStore& store() const { return *store_; }

 private:
  PStorM(const mrsim::Simulator* simulator,
         std::unique_ptr<ProfileStore> store, PStormOptions options);

  /// Everything one submission touches, stack-allocated per SubmitJob
  /// call so concurrent submissions share nothing mutable.
  struct SubmissionContext {
    const jobs::BenchmarkJob& job;
    const mrsim::DataSetSpec& data;
    const mrsim::Configuration& submitted;
    const uint64_t seed;
    staticanalysis::StaticFeatures statics;
    profiler::ProfiledRun sample;
    MatchResult match;
    SubmissionOutcome outcome;
    obs::SubmissionTrace* trace = nullptr;  // may be null
  };

  /// Workflow phases, each operating on the call's own context.
  Status SampleAndProbe(SubmissionContext& ctx) const;
  Status RunTuned(SubmissionContext& ctx) const;
  Status RunUntunedAndStore(SubmissionContext& ctx) const;

  const mrsim::Simulator* simulator_;
  std::unique_ptr<ProfileStore> store_;
  const PStormOptions options_;
  const profiler::Profiler profiler_;
  const whatif::WhatIfEngine engine_;
};

}  // namespace pstorm::core

#endif  // PSTORM_CORE_PSTORM_H_
