#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/random.h"
#include "common/statistics.h"
#include "jobs/datasets.h"
#include "ml/feature_selection.h"
#include "staticanalysis/cfg_matcher.h"

namespace pstorm::core {

namespace {

/// All numeric map-side fields a Starfish profile exposes — the candidate
/// pool for the generic information-gain feature selection (§6.1.1). Mixes
/// per-job rates (transferable from a 1-task sample to a complete profile)
/// with run totals (not transferable) — which is precisely why naive
/// selection underperforms.
std::vector<double> MapNumericPool(const profiler::ExecutionProfile& p) {
  const profiler::MapSideProfile& m = p.map_side;
  return {m.size_selectivity,    m.pairs_selectivity,
          m.combine_size_selectivity, m.combine_pairs_selectivity,
          m.read_hdfs_io_cost,   m.read_local_io_cost,
          m.write_local_io_cost, m.map_cpu_cost,
          m.combine_cpu_cost,    m.read_s,
          m.map_s,               m.collect_s,
          m.spill_s,             m.merge_s,
          m.input_bytes,         m.input_records,
          m.output_bytes,        m.output_records,
          static_cast<double>(m.num_tasks)};
}

std::vector<double> ReduceNumericPool(const profiler::ExecutionProfile& p) {
  const profiler::ReduceSideProfile& r = p.reduce_side;
  return {r.size_selectivity,  r.pairs_selectivity, r.write_hdfs_io_cost,
          r.read_local_io_cost, r.write_local_io_cost, r.reduce_cpu_cost,
          r.shuffle_s,         r.sort_s,            r.reduce_s,
          r.write_s,           r.input_bytes,       r.input_records,
          r.output_bytes,      r.output_records,
          static_cast<double>(r.num_tasks)};
}

std::vector<std::string> MapCategoricalPool(
    const staticanalysis::StaticFeatures& f) {
  return f.MapCategorical();
}

std::vector<std::string> ReduceCategoricalPool(
    const staticanalysis::StaticFeatures& f) {
  return f.ReduceCategorical();
}

/// Number of features PStorM uses per side (static incl. CFG + dynamic):
/// the F of §6.1.1.
size_t PStormFeatureCount(Side side) {
  return side == Side::kMap ? 7 + 1 + 4 : 4 + 1 + 2;
}

/// Min-max bounds of a feature matrix, column-wise.
FeatureBounds BoundsOf(const ml::FeatureMatrix& x) {
  FeatureBounds bounds;
  if (x.empty()) return bounds;
  bounds.mins = x[0];
  bounds.maxs = x[0];
  for (const auto& row : x) {
    for (size_t i = 0; i < row.size(); ++i) {
      bounds.mins[i] = std::min(bounds.mins[i], row[i]);
      bounds.maxs[i] = std::max(bounds.maxs[i], row[i]);
    }
  }
  return bounds;
}

}  // namespace

int Corpus::TwinOf(size_t index) const {
  const CorpusItem& item = items[index];
  for (size_t j = 0; j < items.size(); ++j) {
    if (j == index) continue;
    if (items[j].entry.job.spec.name == item.entry.job.spec.name &&
        items[j].entry.data_set != item.entry.data_set) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

Result<Corpus> BuildEvaluationCorpus(const mrsim::Simulator& simulator,
                                     const mrsim::Configuration& config,
                                     uint64_t seed) {
  profiler::Profiler profiler(&simulator);
  Corpus corpus;
  uint64_t item_seed = seed;
  for (const jobs::WorkloadEntry& entry : jobs::Table61Workload()) {
    PSTORM_ASSIGN_OR_RETURN(mrsim::DataSetSpec data,
                            jobs::FindDataSet(entry.data_set));
    ++item_seed;
    PSTORM_ASSIGN_OR_RETURN(
        profiler::ProfiledRun complete,
        profiler.ProfileFullRun(entry.job.spec, data, config, item_seed));
    PSTORM_ASSIGN_OR_RETURN(
        profiler::ProfiledRun sample,
        profiler.ProfileOneTask(entry.job.spec, data, config,
                                item_seed ^ 0x5a5aULL));
    CorpusItem item;
    item.job_key = entry.job.spec.name + "@" + entry.data_set;
    item.entry = entry;
    item.data = data;
    item.complete = complete.profile;
    item.sample = sample.profile;
    item.statics = staticanalysis::ExtractStaticFeatures(entry.job.program);
    corpus.items.push_back(std::move(item));
  }
  return corpus;
}

MatcherEvaluator::MatcherEvaluator(storage::Env* env, Corpus corpus)
    : env_(env), corpus_(std::move(corpus)) {
  PSTORM_CHECK(env != nullptr);
}

Result<std::unique_ptr<ProfileStore>> MatcherEvaluator::BuildFullStore(
    const std::string& path) const {
  PSTORM_ASSIGN_OR_RETURN(auto store, ProfileStore::Open(env_, path));
  for (const CorpusItem& item : corpus_.items) {
    PSTORM_RETURN_IF_ERROR(
        store->PutProfile(item.job_key, item.complete, item.statics));
  }
  return store;
}

Result<AccuracyReport> MatcherEvaluator::EvaluatePStorM(
    StoreState state, MatchOptions options) const {
  static int store_id = 0;
  const std::string path =
      "/pstorm-eval/store-" + std::to_string(store_id++);
  PSTORM_ASSIGN_OR_RETURN(auto store, BuildFullStore(path));
  MultiStageMatcher matcher(store.get(), options);

  AccuracyReport report;
  for (size_t i = 0; i < corpus_.items.size(); ++i) {
    const CorpusItem& item = corpus_.items[i];
    if (state == StoreState::kDifferentData) {
      PSTORM_RETURN_IF_ERROR(store->DeleteProfile(item.job_key));
    }

    const JobFeatureVector probe =
        BuildFeatureVector(item.sample, item.statics);
    PSTORM_ASSIGN_OR_RETURN(MatchResult match, matcher.Match(probe));

    std::string expected;
    if (state == StoreState::kSameData) {
      expected = item.job_key;
    } else {
      const int twin = corpus_.TwinOf(i);
      expected = twin >= 0 ? corpus_.items[twin].job_key : "";
    }
    ++report.total;
    if (!expected.empty() && match.found) {
      if (match.map_side.job_key == expected) ++report.map_correct;
      if (match.reduce_side.job_key == expected) ++report.reduce_correct;
    }

    if (state == StoreState::kDifferentData) {
      PSTORM_RETURN_IF_ERROR(
          store->PutProfile(item.job_key, item.complete, item.statics));
    }
  }
  return report;
}

Result<AccuracyReport> MatcherEvaluator::EvaluateBaseline(
    StoreState state, BaselineFeatures feature_mode) const {
  AccuracyReport report;

  for (Side side : {Side::kMap, Side::kReduce}) {
    // Build the training matrix from the complete (stored) profiles; the
    // label of each profile is its own identity (the matcher must find
    // *this* profile again).
    ml::FeatureMatrix numeric;
    std::vector<std::vector<std::string>> categorical;
    std::vector<int> labels;
    for (size_t i = 0; i < corpus_.items.size(); ++i) {
      const CorpusItem& item = corpus_.items[i];
      numeric.push_back(side == Side::kMap ? MapNumericPool(item.complete)
                                           : ReduceNumericPool(item.complete));
      categorical.push_back(side == Side::kMap
                                ? MapCategoricalPool(item.statics)
                                : ReduceCategoricalPool(item.statics));
      labels.push_back(static_cast<int>(i));
    }

    // Rank: numeric features by binned information gain; in SP mode the
    // categorical features compete in the same ranking.
    struct Scored {
      double gain;
      bool is_categorical;
      size_t index;
    };
    std::vector<Scored> scored;
    const size_t num_numeric = numeric[0].size();
    for (size_t f = 0; f < num_numeric; ++f) {
      std::vector<double> column;
      for (const auto& row : numeric) column.push_back(row[f]);
      scored.push_back({ml::InformationGain(column, labels), false, f});
    }
    if (feature_mode == BaselineFeatures::kStaticPlusProfile) {
      const size_t num_categorical = categorical[0].size();
      for (size_t f = 0; f < num_categorical; ++f) {
        std::map<std::string, int> ids;
        std::vector<int> as_ids;
        for (const auto& row : categorical) {
          as_ids.push_back(
              ids.emplace(row[f], static_cast<int>(ids.size()))
                  .first->second);
        }
        scored.push_back(
            {ml::InformationGainCategorical(as_ids, labels), true, f});
      }
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.gain > b.gain;
                     });
    const size_t budget = std::min(PStormFeatureCount(side), scored.size());
    std::vector<Scored> selected(scored.begin(), scored.begin() + budget);

    // Normalization bounds over the numeric columns actually selected.
    const FeatureBounds bounds = BoundsOf(numeric);

    // Mixed distance: normalized Euclidean over the selected numeric
    // features plus 0/1 mismatch terms for any selected categorical ones.
    auto distance = [&](const std::vector<double>& a_num,
                        const std::vector<std::string>& a_cat,
                        size_t candidate) {
      double sq = 0;
      for (const Scored& s : selected) {
        if (s.is_categorical) {
          if (a_cat[s.index] != categorical[candidate][s.index]) sq += 1.0;
        } else {
          const double range = bounds.maxs[s.index] - bounds.mins[s.index];
          if (range <= 0) continue;
          const double av = (a_num[s.index] - bounds.mins[s.index]) / range;
          const double bv =
              (numeric[candidate][s.index] - bounds.mins[s.index]) / range;
          sq += (av - bv) * (av - bv);
        }
      }
      return sq;
    };

    // Score every submission.
    int correct = 0;
    for (size_t i = 0; i < corpus_.items.size(); ++i) {
      const CorpusItem& item = corpus_.items[i];
      const std::vector<double> probe_numeric =
          side == Side::kMap ? MapNumericPool(item.sample)
                             : ReduceNumericPool(item.sample);
      const std::vector<std::string> probe_categorical =
          side == Side::kMap ? MapCategoricalPool(item.statics)
                             : ReduceCategoricalPool(item.statics);

      int best = -1;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < corpus_.items.size(); ++c) {
        if (state == StoreState::kDifferentData && c == i) continue;
        const double d = distance(probe_numeric, probe_categorical, c);
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<int>(c);
        }
      }
      const int expected = state == StoreState::kSameData
                               ? static_cast<int>(i)
                               : corpus_.TwinOf(i);
      if (best >= 0 && expected >= 0 && best == expected) ++correct;
    }

    if (side == Side::kMap) {
      report.map_correct = correct;
    } else {
      report.reduce_correct = correct;
    }
  }
  report.total = static_cast<int>(corpus_.items.size());
  return report;
}

Result<AccuracyReport> MatcherEvaluator::EvaluateGbrt(
    StoreState state, const ml::GradientBoostedTrees::Options& options,
    const whatif::WhatIfEngine& engine, int pairs_per_job,
    uint64_t seed) const {
  const size_t n = corpus_.items.size();
  if (n < 3) return Status::FailedPrecondition("corpus too small for GBRT");

  // Feature vectors of the stored (complete) profiles and the probes.
  std::vector<JobFeatureVector> stored, probes;
  stored.reserve(n);
  probes.reserve(n);
  for (const CorpusItem& item : corpus_.items) {
    stored.push_back(BuildFeatureVector(item.complete, item.statics));
    probes.push_back(BuildFeatureVector(item.sample, item.statics));
  }

  // Global normalization bounds per side for the distance features.
  ml::FeatureMatrix map_dyn, map_cost, red_dyn, red_cost;
  for (const JobFeatureVector& v : stored) {
    map_dyn.push_back(v.map_dynamic);
    map_cost.push_back(v.map_costs);
    red_dyn.push_back(v.reduce_dynamic);
    red_cost.push_back(v.reduce_costs);
  }
  const FeatureBounds b_map_dyn = BoundsOf(map_dyn);
  const FeatureBounds b_map_cost = BoundsOf(map_cost);
  const FeatureBounds b_red_dyn = BoundsOf(red_dyn);
  const FeatureBounds b_red_cost = BoundsOf(red_cost);

  // The 8 distance features of Equation (1): map-side Jaccard, dynamic
  // Euclidean, cost Euclidean, CFG match; then the reduce-side four.
  auto pair_features = [&](const JobFeatureVector& a, size_t map_candidate,
                           size_t reduce_candidate) {
    const JobFeatureVector& m = stored[map_candidate];
    const JobFeatureVector& r = stored[reduce_candidate];
    return std::vector<double>{
        PositionalJaccard(a.map_categorical, m.map_categorical),
        EuclideanDistance(b_map_dyn.Normalize(a.map_dynamic),
                          b_map_dyn.Normalize(m.map_dynamic)),
        EuclideanDistance(b_map_cost.Normalize(a.map_costs),
                          b_map_cost.Normalize(m.map_costs)),
        staticanalysis::MatchCfgs(a.map_cfg, m.map_cfg) ? 1.0 : 0.0,
        PositionalJaccard(a.reduce_categorical, r.reduce_categorical),
        EuclideanDistance(b_red_dyn.Normalize(a.reduce_dynamic),
                          b_red_dyn.Normalize(r.reduce_dynamic)),
        EuclideanDistance(b_red_cost.Normalize(a.reduce_costs),
                          b_red_cost.Normalize(r.reduce_costs)),
        staticanalysis::MatchCfgs(a.reduce_cfg, r.reduce_cfg) ? 1.0 : 0.0};
  };

  // ---- Training set (§4.4): for each job J, pairs (J1, J2) labelled by
  // the what-if runtime gap between using J's own profile and using the
  // composite. ----
  Rng rng(seed);
  ml::FeatureMatrix train_x;
  std::vector<double> train_y;
  const mrsim::Configuration default_config;
  for (size_t j = 0; j < n; ++j) {
    auto base = engine.Predict(corpus_.items[j].complete,
                               corpus_.items[j].data, default_config);
    if (!base.ok()) continue;

    auto add_sample = [&](size_t j1, size_t j2) -> Status {
      profiler::ExecutionProfile composite = corpus_.items[j1].complete;
      composite.reduce_side = corpus_.items[j2].complete.reduce_side;
      auto predicted =
          engine.Predict(composite, corpus_.items[j].data, default_config);
      if (!predicted.ok()) return Status::OK();  // Skip unusable pairs.
      // The submitted-job side of the distance vector uses the job's
      // 1-task sample (the matcher's operating condition); the label still
      // measures the what-if gap between the true and composite profiles.
      train_x.push_back(pair_features(probes[j], j1, j2));
      // Relative what-if runtime gap: how much worse the CBO's picture of
      // the job gets when this composite stands in for the real profile.
      train_y.push_back(std::fabs(base->runtime_s - predicted->runtime_s) /
                        base->runtime_s);
      return Status::OK();
    };

    // The perfect-match sample (distance 0 by construction, §4.4) and, when
    // available, the profile-twin samples, plus a structured
    // neighbourhood: half-correct composites teach the model what each
    // side's features are worth; fully random pairs anchor the far field.
    PSTORM_RETURN_IF_ERROR(add_sample(j, j));
    const int twin = corpus_.TwinOf(j);
    if (twin >= 0) {
      const size_t t = static_cast<size_t>(twin);
      PSTORM_RETURN_IF_ERROR(add_sample(t, t));
      PSTORM_RETURN_IF_ERROR(add_sample(j, t));
      PSTORM_RETURN_IF_ERROR(add_sample(t, j));
    }
    for (int k = 0; k < pairs_per_job; ++k) {
      switch (k % 3) {
        case 0:
          PSTORM_RETURN_IF_ERROR(add_sample(j, rng.NextUint64(n)));
          break;
        case 1:
          PSTORM_RETURN_IF_ERROR(add_sample(rng.NextUint64(n), j));
          break;
        default:
          PSTORM_RETURN_IF_ERROR(
              add_sample(rng.NextUint64(n), rng.NextUint64(n)));
          break;
      }
    }
  }
  if (train_x.size() < 20) {
    return Status::FailedPrecondition("too few usable training samples");
  }

  PSTORM_ASSIGN_OR_RETURN(ml::GradientBoostedTrees model,
                          ml::GradientBoostedTrees::Fit(train_x, train_y,
                                                        options));

  // ---- Matching: the candidate pair with the smallest predicted
  // distance is the answer (nearest neighbour under the learned metric).
  AccuracyReport report;
  for (size_t i = 0; i < n; ++i) {
    int best_map = -1, best_reduce = -1;
    double best = std::numeric_limits<double>::infinity();
    for (size_t c1 = 0; c1 < n; ++c1) {
      if (state == StoreState::kDifferentData && c1 == i) continue;
      for (size_t c2 = 0; c2 < n; ++c2) {
        if (state == StoreState::kDifferentData && c2 == i) continue;
        const double d = model.Predict(pair_features(probes[i], c1, c2));
        if (d < best) {
          best = d;
          best_map = static_cast<int>(c1);
          best_reduce = static_cast<int>(c2);
        }
      }
    }
    const int expected = state == StoreState::kSameData
                             ? static_cast<int>(i)
                             : corpus_.TwinOf(i);
    ++report.total;
    if (expected >= 0) {
      if (best_map == expected) ++report.map_correct;
      if (best_reduce == expected) ++report.reduce_correct;
    }
  }
  return report;
}

}  // namespace pstorm::core
