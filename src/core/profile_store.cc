#include "core/profile_store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/logging.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "staticanalysis/cfg_matcher.h"

namespace pstorm::core {

namespace {

obs::Counter& EntryCacheHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_store_entry_cache_hits_total");
  return c;
}
obs::Counter& EntryCacheMisses() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_store_entry_cache_misses_total");
  return c;
}

constexpr char kFamily[] = "F";
constexpr char kDynamicPrefix[] = "Dynamic/";
constexpr char kStaticPrefix[] = "Static/";
constexpr char kPayloadPrefix[] = "Payload/";
constexpr char kBoundsRow[] = "Meta/bounds";
constexpr char kInputBytesColumn[] = "INPUT_BYTES";
constexpr char kProfileColumn[] = "PROFILE";
constexpr char kMapCfgColumn[] = "MAP_CFG";
constexpr char kRedCfgColumn[] = "RED_CFG";
constexpr char kUserParamsColumn[] = "USER_PARAMS";
constexpr char kMapCallsColumn[] = "MAP_CALLS";
constexpr char kRedCallsColumn[] = "RED_CALLS";

std::string EncodeDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool DecodeDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

/// Reads the named numeric columns of a row into a vector; false when any
/// column is missing or malformed.
bool ReadColumns(const hstore::RowResult& row,
                 const std::vector<std::string>& names,
                 std::vector<double>* out) {
  out->clear();
  out->reserve(names.size());
  for (const std::string& name : names) {
    const std::string* raw = row.GetValue(kFamily, name);
    double v;
    if (raw == nullptr || !DecodeDouble(*raw, &v)) return false;
    out->push_back(v);
  }
  return true;
}

/// Server-side filter implementing stage 1 of Figure 4.4: normalized
/// Euclidean distance over dynamic features (or the cost-factor
/// alternative).
class EuclideanFilter final : public hstore::RowFilter {
 public:
  EuclideanFilter(std::vector<std::string> columns,
                  std::vector<double> normalized_probe, FeatureBounds bounds,
                  double theta)
      : columns_(std::move(columns)),
        normalized_probe_(std::move(normalized_probe)),
        bounds_(std::move(bounds)),
        theta_(theta) {}

  bool Matches(const hstore::RowResult& row) const override {
    std::vector<double> values;
    if (!ReadColumns(row, columns_, &values)) return false;
    const std::vector<double> normalized = bounds_.Normalize(values);
    return EuclideanDistance(normalized, normalized_probe_) <= theta_;
  }

  std::string Describe() const override {
    return "euclidean(dim=" + std::to_string(columns_.size()) +
           ", theta=" + FormatDouble(theta_, 3) + ")";
  }

 private:
  std::vector<std::string> columns_;
  std::vector<double> normalized_probe_;
  FeatureBounds bounds_;
  double theta_;
};

/// Server-side CFG filter: conservative structural match against the
/// probe's CFG (stage 2).
class CfgFilter final : public hstore::RowFilter {
 public:
  CfgFilter(std::string column, staticanalysis::Cfg probe)
      : column_(std::move(column)), probe_(std::move(probe)) {}

  bool Matches(const hstore::RowResult& row) const override {
    const std::string* raw = row.GetValue(kFamily, column_);
    if (raw == nullptr) return false;
    auto cfg = staticanalysis::ParseCfg(*raw);
    if (!cfg.ok()) return false;
    return staticanalysis::MatchCfgs(probe_, cfg.value());
  }

  std::string Describe() const override { return "cfg-match(" + column_ + ")"; }

 private:
  std::string column_;
  staticanalysis::Cfg probe_;
};

/// Server-side Jaccard filter over the categorical features (stage 3).
class JaccardFilter final : public hstore::RowFilter {
 public:
  JaccardFilter(std::vector<std::string> columns,
                std::vector<std::string> probe, double theta)
      : columns_(std::move(columns)), probe_(std::move(probe)),
        theta_(theta) {}

  bool Matches(const hstore::RowResult& row) const override {
    std::vector<std::string> values;
    values.reserve(columns_.size());
    for (const std::string& name : columns_) {
      const std::string* raw = row.GetValue(kFamily, name);
      if (raw == nullptr) return false;
      values.push_back(*raw);
    }
    return PositionalJaccard(values, probe_) >= theta_;
  }

  std::string Describe() const override {
    return "jaccard(theta=" + FormatDouble(theta_, 2) + ")";
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::string> probe_;
  double theta_;
};

/// Restricts a scan to rows "<prefix><key>" with key in a fixed set (used
/// to chain filter stages).
class KeySetFilter final : public hstore::RowFilter {
 public:
  KeySetFilter(std::string prefix, const std::vector<std::string>& keys)
      : prefix_(std::move(prefix)), keys_(keys.begin(), keys.end()) {}

  bool Matches(const hstore::RowResult& row) const override {
    if (!StartsWith(row.row(), prefix_)) return false;
    return keys_.count(row.row().substr(prefix_.size())) > 0;
  }

  std::string Describe() const override {
    return "key-in-set(" + std::to_string(keys_.size()) + ")";
  }

 private:
  std::string prefix_;
  std::set<std::string> keys_;
};

std::vector<std::string> KeysFromRows(
    const std::vector<hstore::RowResult>& rows, const std::string& prefix) {
  std::vector<std::string> keys;
  keys.reserve(rows.size());
  for (const hstore::RowResult& row : rows) {
    keys.push_back(row.row().substr(prefix.size()));
  }
  return keys;
}

}  // namespace

const std::vector<std::string>& DynamicColumnNames(Side side) {
  static const auto* kMap = new std::vector<std::string>{
      "MAP_SIZE_SEL", "MAP_PAIRS_SEL", "COMBINE_SIZE_SEL",
      "COMBINE_PAIRS_SEL"};
  static const auto* kReduce =
      new std::vector<std::string>{"RED_SIZE_SEL", "RED_PAIRS_SEL"};
  return side == Side::kMap ? *kMap : *kReduce;
}

const std::vector<std::string>& CostColumnNames(Side side) {
  static const auto* kMap = new std::vector<std::string>{
      "M_READ_HDFS_IO_COST", "M_READ_LOCAL_IO_COST", "M_WRITE_LOCAL_IO_COST",
      "M_MAP_CPU_COST", "M_COMBINE_CPU_COST"};
  static const auto* kReduce = new std::vector<std::string>{
      "R_WRITE_HDFS_IO_COST", "R_READ_LOCAL_IO_COST",
      "R_WRITE_LOCAL_IO_COST", "R_REDUCE_CPU_COST"};
  return side == Side::kMap ? *kMap : *kReduce;
}

const std::vector<std::string>& StaticColumnNames(Side side) {
  static const auto* kMap = new std::vector<std::string>{
      "IN_FORMATTER", "MAPPER",      "MAP_IN_KEY", "MAP_IN_VAL",
      "MAP_OUT_KEY",  "MAP_OUT_VAL", "COMBINER"};
  static const auto* kReduce = new std::vector<std::string>{
      "REDUCER", "RED_OUT_KEY", "RED_OUT_VAL", "OUT_FORMATTER"};
  return side == Side::kMap ? *kMap : *kReduce;
}

std::vector<double> FeatureBounds::Normalize(
    const std::vector<double>& values) const {
  PSTORM_CHECK(values.size() == mins.size());
  // The degenerate-range guard lives in EffectiveRanges: with few stored
  // profiles a feature's observed spread can be tiny (e.g. local-IO cost
  // varying by 5% across a handful of jobs); dividing a noisy probe by
  // that sliver would let a near-constant feature dominate the distance.
  // Sharing the helper keeps this scalar path and the index's vectorized
  // kernels arithmetically identical.
  const std::vector<double> ranges = EffectiveRanges(mins, maxs);
  std::vector<double> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back((values[i] - mins[i]) / ranges[i]);
  }
  return out;
}

ProfileStore::ProfileStore(std::unique_ptr<hstore::HTable> table,
                           ProfileStoreOptions options)
    : table_(std::move(table)), options_(std::move(options)) {
  if (!options_.enable_match_index) return;
  MatchIndex::Spec spec;
  spec.map_dynamic_dims = DynamicColumnNames(Side::kMap).size();
  spec.map_cost_dims = CostColumnNames(Side::kMap).size();
  spec.reduce_dynamic_dims = DynamicColumnNames(Side::kReduce).size();
  spec.reduce_cost_dims = CostColumnNames(Side::kReduce).size();
  MatchIndexOptions index_options;
  index_options.bands = options_.index_bands;
  index_options.cell_width = options_.index_cell_width;
  index_ = std::make_unique<MatchIndex>(spec, index_options);
}

Result<std::unique_ptr<ProfileStore>> ProfileStore::Open(
    storage::Env* env, std::string path, ProfileStoreOptions options) {
  hstore::TableSchema schema;
  schema.name = "Jobs";
  schema.families = {kFamily};
  PSTORM_ASSIGN_OR_RETURN(
      auto table,
      hstore::HTable::Open(env, std::move(path), schema, options.table));
  auto store = std::unique_ptr<ProfileStore>(
      new ProfileStore(std::move(table), std::move(options)));
  // Corrupt metadata degrades to an empty-looking store instead of failing
  // the open: the matcher then returns No Match Found and PStorM falls
  // back to run-untuned + re-profile (the paper's own cold path), which
  // re-populates everything lost. Bounds only ever widen, so starting them
  // empty is always safe.
  if (Status s = store->LoadBounds(); !s.ok()) {
    if (!s.IsCorruption()) return s;
    PSTORM_LOG(Warning) << "profile store: resetting corrupt normalization "
                        << "bounds: " << s.ToString();
    store->bounds_.clear();
    ++store->recovery_stats_.bounds_resets;
    obs::MetricsRegistry::Global()
        .GetCounter("pstorm_store_bounds_resets_total")
        .Increment();
  }
  if (Status s = store->RecountProfiles(); !s.ok()) {
    if (!s.IsCorruption()) return s;
    PSTORM_LOG(Warning) << "profile store: profile count unavailable under "
                        << "corruption: " << s.ToString();
    store->num_profiles_ = 0;
    ++store->recovery_stats_.count_resets;
    obs::MetricsRegistry::Global()
        .GetCounter("pstorm_store_count_resets_total")
        .Increment();
  }
  if (store->index_ != nullptr) {
    if (store->options_.index_rebuild_on_open) {
      if (Status s = store->RebuildMatchIndex(); !s.ok()) {
        // Same graceful-degradation posture as the metadata above: a
        // store whose index cannot be rebuilt still serves — the matcher
        // falls back to the exhaustive scans.
        PSTORM_LOG(Warning) << "profile store: match index rebuild failed, "
                            << "falling back to exhaustive scans: "
                            << s.ToString();
        obs::MetricsRegistry::Global()
            .GetCounter("pstorm_match_index_rebuild_failures_total")
            .Increment();
      }
    } else if (store->num_profiles() == 0) {
      // Nothing stored yet: the (empty) index trivially covers the store
      // and incremental maintenance keeps it complete.
      store->index_ready_ = true;
    }
  }
  return store;
}

Status ProfileStore::RebuildMatchIndex() {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("match index disabled");
  }
  std::lock_guard<std::mutex> write_lock(write_mu_);
  hstore::ScanSpec spec;
  spec.filter = std::make_shared<hstore::PrefixFilter>(kDynamicPrefix);
  PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec));
  std::unique_lock<std::shared_mutex> index_lock(index_mu_);
  index_->Clear();
  for (const hstore::RowResult& row : rows) {
    const std::string key = row.row().substr(sizeof(kDynamicPrefix) - 1);
    // Each vector is indexed independently: a row with one malformed
    // column set still gets its healthy vectors indexed, mirroring how
    // the exhaustive filters judge each scanned vector on its own.
    std::vector<double> map_dynamic, map_costs, reduce_dynamic, reduce_costs;
    if (!ReadColumns(row, DynamicColumnNames(Side::kMap), &map_dynamic)) {
      map_dynamic.clear();
    }
    if (!ReadColumns(row, CostColumnNames(Side::kMap), &map_costs)) {
      map_costs.clear();
    }
    if (!ReadColumns(row, DynamicColumnNames(Side::kReduce),
                     &reduce_dynamic)) {
      reduce_dynamic.clear();
    }
    if (!ReadColumns(row, CostColumnNames(Side::kReduce), &reduce_costs)) {
      reduce_costs.clear();
    }
    index_->Put(key, map_dynamic, map_costs, reduce_dynamic, reduce_costs);
  }
  index_ready_ = true;
  obs::MetricsRegistry::Global()
      .GetCounter("pstorm_match_index_rebuilds_total")
      .Increment();
  obs::MetricsRegistry::Global()
      .GetCounter("pstorm_match_index_rebuilt_entries_total")
      .Add(rows.size());
  return Status::OK();
}

Status ProfileStore::RecountProfiles() {
  hstore::ScanSpec spec;
  spec.filter = std::make_shared<hstore::PrefixFilter>(kPayloadPrefix);
  PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec));
  num_profiles_ = rows.size();
  profile_keys_.clear();
  profile_keys_.reserve(rows.size());
  for (const hstore::RowResult& row : rows) {
    profile_keys_.insert(row.row().substr(sizeof(kPayloadPrefix) - 1));
  }
  profile_keys_authoritative_ = true;
  return Status::OK();
}

ProfileStore::CacheShard& ProfileStore::ShardFor(
    const std::string& job_key) const {
  return entry_cache_[std::hash<std::string>{}(job_key) % kCacheShards];
}

void ProfileStore::WidenLocked(const std::string& feature, double value) {
  auto it = bounds_.find(feature);
  if (it == bounds_.end()) {
    bounds_[feature] = {value, value};
  } else {
    it->second.first = std::min(it->second.first, value);
    it->second.second = std::max(it->second.second, value);
  }
}

Status ProfileStore::SaveBounds() {
  hstore::PutOp put(kBoundsRow);
  {
    std::shared_lock<std::shared_mutex> lock(bounds_mu_);
    for (const auto& [feature, minmax] : bounds_) {
      put.Add(kFamily, feature + ".min", EncodeDouble(minmax.first));
      put.Add(kFamily, feature + ".max", EncodeDouble(minmax.second));
    }
  }
  return table_->Put(put);
}

Status ProfileStore::LoadBounds() {
  auto row = table_->Get(kBoundsRow);
  if (!row.ok()) {
    if (row.status().IsNotFound()) return Status::OK();  // Fresh store.
    return row.status();
  }
  for (const auto& [qualifier, raw] : row->FamilyMap(kFamily)) {
    double v;
    if (!DecodeDouble(raw, &v)) return Status::Corruption("bad bounds value");
    if (EndsWith(qualifier, ".min")) {
      const std::string feature = qualifier.substr(0, qualifier.size() - 4);
      bounds_[feature].first = v;
    } else if (EndsWith(qualifier, ".max")) {
      const std::string feature = qualifier.substr(0, qualifier.size() - 4);
      bounds_[feature].second = v;
    } else {
      return Status::Corruption("bad bounds column: " + qualifier);
    }
  }
  return Status::OK();
}

Status ProfileStore::PutProfile(
    const std::string& job_key, const profiler::ExecutionProfile& profile,
    const staticanalysis::StaticFeatures& statics) {
  if (job_key.empty()) return Status::InvalidArgument("empty job key");
  if (job_key.find('/') != std::string::npos) {
    return Status::InvalidArgument("job key must not contain '/'");
  }
  std::lock_guard<std::mutex> write_lock(write_mu_);
  // Cache rule: a put invalidates exactly the decoded entry it replaces.
  {
    CacheShard& shard = ShardFor(job_key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(job_key);
    ++shard.epoch;
  }
  const bool existed = profile_keys_authoritative_
                           ? profile_keys_.count(job_key) > 0
                           : table_->Get(kPayloadPrefix + job_key).ok();

  // Row publication order matters under concurrency: the matcher discovers
  // candidates by scanning Dynamic rows and then fetches their Static and
  // Payload rows, so the Dynamic row is written LAST. A concurrent matcher
  // either does not see the in-flight profile at all, or sees it with all
  // three rows already in place — never a dangling candidate.

  // Dynamic row: the numeric features the matcher filters on. Built (and
  // the bounds widened) first, published last.
  hstore::PutOp dynamic_put(kDynamicPrefix + job_key);
  {
    hstore::PutOp& put = dynamic_put;
    std::unique_lock<std::shared_mutex> bounds_lock(bounds_mu_);
    const auto add_side = [&](Side side, const std::vector<double>& dynamic,
                              const std::vector<double>& costs) {
      const auto& dyn_names = DynamicColumnNames(side);
      const auto& cost_names = CostColumnNames(side);
      PSTORM_CHECK(dynamic.size() == dyn_names.size());
      PSTORM_CHECK(costs.size() == cost_names.size());
      for (size_t i = 0; i < dynamic.size(); ++i) {
        put.Add(kFamily, dyn_names[i], EncodeDouble(dynamic[i]));
        WidenLocked(dyn_names[i], dynamic[i]);
      }
      for (size_t i = 0; i < costs.size(); ++i) {
        put.Add(kFamily, cost_names[i], EncodeDouble(costs[i]));
        WidenLocked(cost_names[i], costs[i]);
      }
    };
    add_side(Side::kMap, profile.map_side.DynamicVector(),
             profile.map_side.CostVector());
    add_side(Side::kReduce, profile.reduce_side.DynamicVector(),
             profile.reduce_side.CostVector());
    bounds_lock.unlock();
    put.Add(kFamily, kInputBytesColumn,
            EncodeDouble(profile.input_data_bytes));
  }

  // Static row: categorical features + CFGs.
  {
    hstore::PutOp put(kStaticPrefix + job_key);
    const auto map_names = StaticColumnNames(Side::kMap);
    const auto map_values = statics.MapCategorical();
    PSTORM_CHECK(map_values.size() == map_names.size());
    for (size_t i = 0; i < map_names.size(); ++i) {
      put.Add(kFamily, map_names[i], map_values[i]);
    }
    const auto red_names = StaticColumnNames(Side::kReduce);
    const auto red_values = statics.ReduceCategorical();
    PSTORM_CHECK(red_values.size() == red_names.size());
    for (size_t i = 0; i < red_names.size(); ++i) {
      put.Add(kFamily, red_names[i], red_values[i]);
    }
    put.Add(kFamily, kMapCfgColumn,
            staticanalysis::SerializeCfg(statics.map_cfg));
    put.Add(kFamily, kRedCfgColumn,
            staticanalysis::SerializeCfg(statics.reduce_cfg));
    // §7.2 extension columns — added to an existing feature type without
    // any schema change, as the data model promises.
    put.Add(kFamily, kUserParamsColumn, statics.user_params);
    put.Add(kFamily, kMapCallsColumn, StrJoin(statics.map_calls, ","));
    put.Add(kFamily, kRedCallsColumn, StrJoin(statics.reduce_calls, ","));
    PSTORM_RETURN_IF_ERROR(table_->Put(put));
  }

  // Payload row: the complete profile blob handed to the CBO on a match.
  {
    hstore::PutOp put(kPayloadPrefix + job_key);
    put.Add(kFamily, kProfileColumn, profile.Serialize());
    PSTORM_RETURN_IF_ERROR(table_->Put(put));
  }

  // Publish: the Dynamic row makes the profile discoverable.
  PSTORM_RETURN_IF_ERROR(table_->Put(dynamic_put));

  // Index maintenance rides immediately on publication — before anything
  // below can fail — so on every exit the index agrees with the table's
  // Dynamic rows.
  if (index_ != nullptr) {
    std::unique_lock<std::shared_mutex> index_lock(index_mu_);
    IndexPutLocked(job_key, profile);
  }

  // Profiles are precious (a full profiled run each): persist eagerly so a
  // reopen never loses them to a buffered memtable. Bulk loaders opt out
  // and Flush() once per batch — which also defers the Meta/bounds row
  // rewrite (~60 columns per put otherwise, pure write amplification at
  // corpus-load scale) to that single Flush.
  if (options_.eager_flush) {
    PSTORM_RETURN_IF_ERROR(SaveBounds());
    PSTORM_RETURN_IF_ERROR(table_->Flush());
  }
  // Second invalidation, now that the rows are written: a reader that was
  // decoding mid-put may have stitched old and new rows together; the
  // epoch bump keeps that hybrid out of the cache.
  {
    CacheShard& shard = ShardFor(job_key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(job_key);
    ++shard.epoch;
  }
  if (!existed) num_profiles_.fetch_add(1, std::memory_order_relaxed);
  profile_keys_.insert(job_key);
  static obs::Counter& puts = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_store_put_profiles_total");
  puts.Increment();
  return Status::OK();
}

Result<StoredEntry> ProfileStore::GetEntry(const std::string& job_key) const {
  PSTORM_ASSIGN_OR_RETURN(std::shared_ptr<const StoredEntry> entry,
                          GetEntryRef(job_key));
  return *entry;
}

size_t ProfileStore::entry_cache_size() const {
  size_t total = 0;
  for (CacheShard& shard : entry_cache_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

Result<std::shared_ptr<const StoredEntry>> ProfileStore::GetEntryRef(
    const std::string& job_key, bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  CacheShard& shard = ShardFor(job_key);
  uint64_t epoch_at_miss;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(job_key);
    if (it != shard.map.end()) {
      EntryCacheHits().Increment();
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second;
    }
    epoch_at_miss = shard.epoch;
  }
  EntryCacheMisses().Increment();

  StoredEntry entry;
  entry.job_key = job_key;

  PSTORM_ASSIGN_OR_RETURN(hstore::RowResult payload,
                          table_->Get(kPayloadPrefix + job_key));
  const std::string* blob = payload.GetValue(kFamily, kProfileColumn);
  if (blob == nullptr) return Status::Corruption("payload row lacks profile");
  PSTORM_ASSIGN_OR_RETURN(entry.profile,
                          profiler::ExecutionProfile::Parse(*blob));

  PSTORM_ASSIGN_OR_RETURN(hstore::RowResult statics,
                          table_->Get(kStaticPrefix + job_key));
  auto read_string = [&](const std::string& column,
                         std::string* out) -> Status {
    const std::string* raw = statics.GetValue(kFamily, column);
    if (raw == nullptr) {
      return Status::Corruption("static row lacks " + column);
    }
    *out = *raw;
    return Status::OK();
  };
  auto& f = entry.statics;
  PSTORM_RETURN_IF_ERROR(read_string("IN_FORMATTER", &f.in_formatter));
  PSTORM_RETURN_IF_ERROR(read_string("MAPPER", &f.mapper));
  PSTORM_RETURN_IF_ERROR(read_string("MAP_IN_KEY", &f.map_in_key));
  PSTORM_RETURN_IF_ERROR(read_string("MAP_IN_VAL", &f.map_in_val));
  PSTORM_RETURN_IF_ERROR(read_string("MAP_OUT_KEY", &f.map_out_key));
  PSTORM_RETURN_IF_ERROR(read_string("MAP_OUT_VAL", &f.map_out_val));
  PSTORM_RETURN_IF_ERROR(read_string("COMBINER", &f.combiner));
  PSTORM_RETURN_IF_ERROR(read_string("REDUCER", &f.reducer));
  PSTORM_RETURN_IF_ERROR(read_string("RED_OUT_KEY", &f.red_out_key));
  PSTORM_RETURN_IF_ERROR(read_string("RED_OUT_VAL", &f.red_out_val));
  PSTORM_RETURN_IF_ERROR(read_string("OUT_FORMATTER", &f.out_formatter));
  std::string cfg_text;
  PSTORM_RETURN_IF_ERROR(read_string(kMapCfgColumn, &cfg_text));
  PSTORM_ASSIGN_OR_RETURN(f.map_cfg, staticanalysis::ParseCfg(cfg_text));
  PSTORM_RETURN_IF_ERROR(read_string(kRedCfgColumn, &cfg_text));
  PSTORM_ASSIGN_OR_RETURN(f.reduce_cfg, staticanalysis::ParseCfg(cfg_text));
  // Extension columns: absent in stores written before §7.2 support.
  if (const std::string* raw = statics.GetValue(kFamily, kUserParamsColumn)) {
    f.user_params = *raw;
  }
  auto read_calls = [&](const char* column, std::vector<std::string>* out) {
    const std::string* raw = statics.GetValue(kFamily, column);
    if (raw == nullptr || raw->empty()) return;
    *out = StrSplit(*raw, ',');
  };
  read_calls(kMapCallsColumn, &f.map_calls);
  read_calls(kRedCallsColumn, &f.reduce_calls);

  auto shared = std::make_shared<const StoredEntry>(std::move(entry));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Only cache what no mutation invalidated while we were decoding; a
    // racing reader's copy is still correct to *return* (it reflects some
    // point-in-time state) but must not outlive the invalidation.
    if (shard.epoch == epoch_at_miss) shard.map[job_key] = shared;
  }
  return shared;
}

Status ProfileStore::DeleteProfile(const std::string& job_key) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  {
    CacheShard& shard = ShardFor(job_key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(job_key);
    ++shard.epoch;
  }
  const bool existed = profile_keys_authoritative_
                           ? profile_keys_.count(job_key) > 0
                           : table_->Get(kPayloadPrefix + job_key).ok();
  PSTORM_RETURN_IF_ERROR(table_->DeleteRow(kDynamicPrefix + job_key));
  // The Dynamic row is gone, so the profile is undiscoverable; drop it
  // from the index before the remaining rows disappear.
  if (index_ != nullptr) {
    std::unique_lock<std::shared_mutex> index_lock(index_mu_);
    index_->Delete(job_key);
    static obs::Counter& deletes = obs::MetricsRegistry::Global().GetCounter(
        "pstorm_match_index_deletes_total");
    deletes.Increment();
  }
  PSTORM_RETURN_IF_ERROR(table_->DeleteRow(kStaticPrefix + job_key));
  PSTORM_RETURN_IF_ERROR(table_->DeleteRow(kPayloadPrefix + job_key));
  // Second invalidation (see PutProfile): evict anything a concurrent
  // reader cached from the rows that were just deleted.
  {
    CacheShard& shard = ShardFor(job_key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(job_key);
    ++shard.epoch;
  }
  if (existed && num_profiles_.load(std::memory_order_relaxed) > 0) {
    num_profiles_.fetch_sub(1, std::memory_order_relaxed);
  }
  profile_keys_.erase(job_key);
  return Status::OK();
}

Result<std::vector<std::string>> ProfileStore::ListJobKeys() const {
  hstore::ScanSpec spec;
  spec.filter = std::make_shared<hstore::PrefixFilter>(kPayloadPrefix);
  PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec));
  return KeysFromRows(rows, kPayloadPrefix);
}

FeatureBounds ProfileStore::DynamicBounds(Side side) const {
  FeatureBounds out;
  std::shared_lock<std::shared_mutex> lock(bounds_mu_);
  for (const std::string& name : DynamicColumnNames(side)) {
    auto it = bounds_.find(name);
    out.mins.push_back(it == bounds_.end() ? 0.0 : it->second.first);
    out.maxs.push_back(it == bounds_.end() ? 0.0 : it->second.second);
  }
  return out;
}

FeatureBounds ProfileStore::CostBounds(Side side) const {
  FeatureBounds out;
  std::shared_lock<std::shared_mutex> lock(bounds_mu_);
  for (const std::string& name : CostColumnNames(side)) {
    auto it = bounds_.find(name);
    out.mins.push_back(it == bounds_.end() ? 0.0 : it->second.first);
    out.maxs.push_back(it == bounds_.end() ? 0.0 : it->second.second);
  }
  return out;
}

void ProfileStore::IndexPutLocked(const std::string& job_key,
                                  const profiler::ExecutionProfile& profile) {
  // The in-memory doubles and the %.17g-encoded table columns round-trip
  // bit-exactly, so the incrementally maintained index and one rebuilt
  // from the rows are identical (the crash tests assert exactly this).
  index_->Put(job_key, profile.map_side.DynamicVector(),
              profile.map_side.CostVector(),
              profile.reduce_side.DynamicVector(),
              profile.reduce_side.CostVector());
  static obs::Counter& puts = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_puts_total");
  puts.Increment();
}

bool ProfileStore::match_index_ready() const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return index_ != nullptr && index_ready_;
}

size_t ProfileStore::match_index_size(Side side) const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return index_ == nullptr ? 0 : index_->size(static_cast<int>(side));
}

std::vector<std::pair<std::string, std::vector<double>>>
ProfileStore::MatchIndexDynamicSnapshot(Side side) const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (index_ == nullptr) return {};
  return index_->dynamic_space(static_cast<int>(side)).Snapshot();
}

std::vector<std::pair<std::string, std::vector<double>>>
ProfileStore::MatchIndexCostSnapshot(Side side) const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (index_ == nullptr) return {};
  return index_->cost_space(static_cast<int>(side)).Snapshot();
}

Result<std::vector<std::string>> ProfileStore::IndexedDynamicScan(
    Side side, const std::vector<double>& probe, double theta,
    VectorSpaceIndex::QueryStats* stats) const {
  const FeatureBounds bounds = DynamicBounds(side);
  const std::vector<double> ranges = EffectiveRanges(bounds.mins, bounds.maxs);
  VectorSpaceIndex::QueryStats local;
  VectorSpaceIndex::QueryStats& q = stats != nullptr ? *stats : local;
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (index_ == nullptr || !index_ready_) {
    return Status::FailedPrecondition("match index not ready");
  }
  auto out = index_->DynamicLookup(static_cast<int>(side), probe, theta,
                                   bounds.mins, ranges, &q);
  static obs::Counter& lookups = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_lookups_total");
  static obs::Counter& candidates = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_candidates_total");
  static obs::Counter& pruned = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_pruned_cells_total");
  lookups.Increment();
  candidates.Add(q.candidates_enumerated);
  pruned.Add(q.cells_pruned);
  return out;
}

Result<std::vector<std::string>> ProfileStore::IndexedCostScan(
    Side side, const std::vector<double>& probe, double theta,
    VectorSpaceIndex::QueryStats* stats) const {
  const FeatureBounds bounds = CostBounds(side);
  const std::vector<double> ranges = EffectiveRanges(bounds.mins, bounds.maxs);
  VectorSpaceIndex::QueryStats local;
  VectorSpaceIndex::QueryStats& q = stats != nullptr ? *stats : local;
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (index_ == nullptr || !index_ready_) {
    return Status::FailedPrecondition("match index not ready");
  }
  auto out = index_->CostLookup(static_cast<int>(side), probe, theta,
                                bounds.mins, ranges, &q);
  static obs::Counter& lookups = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_lookups_total");
  static obs::Counter& candidates = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_match_index_candidates_total");
  lookups.Increment();
  candidates.Add(q.candidates_enumerated);
  return out;
}

Result<std::vector<std::string>> ProfileStore::DynamicEuclideanScan(
    Side side, const std::vector<double>& probe, double theta,
    bool server_side, hstore::ScanStats* stats) const {
  const FeatureBounds bounds = DynamicBounds(side);
  hstore::ScanSpec spec;
  std::vector<std::shared_ptr<const hstore::RowFilter>> filters = {
      std::make_shared<hstore::PrefixFilter>(kDynamicPrefix),
      std::make_shared<EuclideanFilter>(DynamicColumnNames(side),
                                        bounds.Normalize(probe), bounds,
                                        theta),
  };
  spec.filter = std::make_shared<hstore::AndFilter>(std::move(filters));
  spec.server_side_filtering = server_side;
  PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec, stats));
  return KeysFromRows(rows, kDynamicPrefix);
}

Result<std::vector<std::string>> ProfileStore::CostEuclideanScan(
    Side side, const std::vector<double>& probe, double theta,
    bool server_side, hstore::ScanStats* stats) const {
  const FeatureBounds bounds = CostBounds(side);
  hstore::ScanSpec spec;
  std::vector<std::shared_ptr<const hstore::RowFilter>> filters = {
      std::make_shared<hstore::PrefixFilter>(kDynamicPrefix),
      std::make_shared<EuclideanFilter>(CostColumnNames(side),
                                        bounds.Normalize(probe), bounds,
                                        theta),
  };
  spec.filter = std::make_shared<hstore::AndFilter>(std::move(filters));
  spec.server_side_filtering = server_side;
  PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec, stats));
  return KeysFromRows(rows, kDynamicPrefix);
}

Result<std::vector<std::string>> ProfileStore::FilterCandidates(
    const std::string& prefix, const std::vector<std::string>& candidates,
    const std::shared_ptr<const hstore::RowFilter>& filter,
    hstore::ScanStats* stats) const {
  // Small candidate sets (the common case once the stage-1 index pruned)
  // take point reads: k Gets cost O(k log n) against the scan's O(n), and
  // the filters are pure per-row predicates, so evaluating them on the
  // fetched rows returns exactly what the pushed-down scan would. Large
  // sets keep the scan — one sequential pass beats a Get per row. The
  // 8x margin keeps the crossover comfortably on the scan's side of
  // break-even.
  if (candidates.size() * 8 >= num_profiles()) {
    hstore::ScanSpec spec;
    std::vector<std::shared_ptr<const hstore::RowFilter>> filters = {
        std::make_shared<KeySetFilter>(prefix, candidates), filter};
    spec.filter = std::make_shared<hstore::AndFilter>(std::move(filters));
    PSTORM_ASSIGN_OR_RETURN(auto rows, table_->Scan(spec, stats));
    return KeysFromRows(rows, prefix);
  }
  // Sorted unique keys replay the scan's row order (Scan returns rows in
  // key order, and every key shares `prefix`).
  std::vector<std::string> sorted(candidates);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  hstore::ScanStats local;
  std::vector<std::string> out;
  for (const std::string& key : sorted) {
    auto row = table_->Get(prefix + key);
    if (row.status().IsNotFound()) continue;  // Deleted mid-funnel.
    PSTORM_RETURN_IF_ERROR(row.status());
    ++local.rows_scanned;
    ++local.rows_transferred;
    local.bytes_transferred += row->PayloadBytes();
    if (filter->Matches(*row)) {
      ++local.rows_returned;
      out.push_back(key);
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<std::string>> ProfileStore::CfgMatchScan(
    Side side, const staticanalysis::Cfg& probe_cfg,
    const std::vector<std::string>& candidates,
    hstore::ScanStats* stats) const {
  return FilterCandidates(
      kStaticPrefix, candidates,
      std::make_shared<CfgFilter>(
          side == Side::kMap ? kMapCfgColumn : kRedCfgColumn, probe_cfg),
      stats);
}

Result<std::vector<std::string>> ProfileStore::JaccardScan(
    Side side, const std::vector<std::string>& probe, double theta,
    const std::vector<std::string>& candidates, hstore::ScanStats* stats,
    bool include_user_params) const {
  std::vector<std::string> columns = StaticColumnNames(side);
  if (include_user_params) columns.push_back(kUserParamsColumn);
  return FilterCandidates(
      kStaticPrefix, candidates,
      std::make_shared<JaccardFilter>(std::move(columns), probe, theta),
      stats);
}

Result<std::vector<std::string>> ProfileStore::CallSetScan(
    Side side, const std::vector<std::string>& probe_calls,
    const std::vector<std::string>& candidates,
    hstore::ScanStats* stats) const {
  const char* column =
      side == Side::kMap ? kMapCallsColumn : kRedCallsColumn;
  return FilterCandidates(
      kStaticPrefix, candidates,
      std::make_shared<hstore::ColumnValueFilter>(
          kFamily, column, hstore::CompareOp::kEqual,
          StrJoin(probe_calls, ",")),
      stats);
}

Result<double> ProfileStore::InputDataBytes(const std::string& job_key) const {
  PSTORM_ASSIGN_OR_RETURN(hstore::RowResult row,
                          table_->Get(kDynamicPrefix + job_key));
  const std::string* raw = row.GetValue(kFamily, kInputBytesColumn);
  double v;
  if (raw == nullptr || !DecodeDouble(*raw, &v)) {
    return Status::Corruption("missing input bytes for " + job_key);
  }
  return v;
}

}  // namespace pstorm::core
