#include "core/matcher.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <unordered_set>

#include "common/logging.h"
#include "common/statistics.h"
#include "obs/metrics.h"

namespace pstorm::core {

namespace {

/// Folds one scan's work into the submission's store accounting.
void RecordScan(const hstore::ScanStats& s, obs::StoreOpsTrace* t) {
  if (t == nullptr) return;
  ++t->scans;
  t->rows_scanned += s.rows_scanned;
  t->rows_returned += s.rows_returned;
  // A per-open state, not a per-scan delta: keep the max, not the sum.
  if (s.regions_recovered_empty > t->regions_recovered_empty) {
    t->regions_recovered_empty = s.regions_recovered_empty;
  }
}

void RecordStage(obs::SideTrace* t, const char* name, uint64_t in,
                 uint64_t out, std::string detail = {}) {
  if (t == nullptr) return;
  t->stages.push_back(obs::StageTrace{name, in, out, std::move(detail)});
}

std::string ThetaDetail(double theta) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "theta=%.3f", theta);
  return buf;
}

const char* PathName(MatchPath path) {
  switch (path) {
    case MatchPath::kFullPath:
      return "full";
    case MatchPath::kCostFactorFallback:
      return "cost_factor_fallback";
    case MatchPath::kNoMatch:
      break;
  }
  return "no_match";
}

/// Publishes the side outcome on every exit of MatchSide: the path name
/// into the trace, and the outcome tally into the global registry (an
/// error return counts as no-match — that is exactly what the layer above
/// degrades it to).
struct SideOutcomeOnExit {
  const SideMatch* result;
  obs::SideTrace* trace;
  ~SideOutcomeOnExit() {
    if (trace != nullptr) trace->path = PathName(result->path);
    static obs::Counter& full = obs::MetricsRegistry::Global().GetCounter(
        "pstorm_matcher_side_full_path_total");
    static obs::Counter& fallback = obs::MetricsRegistry::Global().GetCounter(
        "pstorm_matcher_side_fallback_total");
    static obs::Counter& no_match = obs::MetricsRegistry::Global().GetCounter(
        "pstorm_matcher_side_no_match_total");
    switch (result->path) {
      case MatchPath::kFullPath:
        full.Increment();
        break;
      case MatchPath::kCostFactorFallback:
        fallback.Increment();
        break;
      case MatchPath::kNoMatch:
        no_match.Increment();
        break;
    }
  }
};

}  // namespace

MultiStageMatcher::MultiStageMatcher(const ProfileStore* store,
                                     MatchOptions options)
    : store_(store), options_(options) {
  PSTORM_CHECK(store != nullptr);
}

Result<std::vector<std::string>> MultiStageMatcher::EuclideanCandidates(
    Side side, bool cost_space, const std::vector<double>& probe,
    double theta, obs::StoreOpsTrace* store_trace, bool* used_index) const {
  *used_index = false;
  if (options_.use_index && store_->match_index_ready()) {
    VectorSpaceIndex::QueryStats qstats;
    auto indexed =
        cost_space ? store_->IndexedCostScan(side, probe, theta, &qstats)
                   : store_->IndexedDynamicScan(side, probe, theta, &qstats);
    if (indexed.ok()) {
      *used_index = true;
      if (store_trace != nullptr) {
        // The index's enumeration work, folded into the same accounting
        // the exhaustive scan feeds: candidates verified ~ rows scanned.
        ++store_trace->scans;
        store_trace->rows_scanned += qstats.candidates_enumerated;
        store_trace->rows_returned += qstats.candidates_returned;
      }
      return indexed;
    }
    // The index raced to not-ready (or was disabled between the check and
    // the call): the exhaustive scan below serves the identical set.
  }
  if (options_.use_index) {
    static obs::Counter& fallbacks = obs::MetricsRegistry::Global().GetCounter(
        "pstorm_match_index_fallback_scans_total");
    fallbacks.Increment();
  }
  hstore::ScanStats sstats;
  auto scanned =
      cost_space
          ? store_->CostEuclideanScan(side, probe, theta,
                                      options_.server_side_filtering, &sstats)
          : store_->DynamicEuclideanScan(
                side, probe, theta, options_.server_side_filtering, &sstats);
  if (scanned.ok()) RecordScan(sstats, store_trace);
  return scanned;
}

double MultiStageMatcher::ThetaEuclidean(size_t dims) const {
  if (options_.theta_euclidean_override > 0.0) {
    return options_.theta_euclidean_override;
  }
  // Features are normalized to [0,1], so the maximum possible distance is
  // sqrt(dims); the thesis sets the threshold to half of it.
  return 0.5 * std::sqrt(static_cast<double>(dims));
}

Result<std::string> MultiStageMatcher::TieBreak(
    Side side, const std::vector<std::string>& candidates,
    const std::vector<std::string>& categorical,
    const std::vector<double>& dynamic, double probe_input_bytes,
    obs::SideTrace* side_trace, obs::StoreOpsTrace* store_trace) const {
  PSTORM_CHECK(!candidates.empty());
  if (side_trace != nullptr) {
    side_trace->tie_break_candidates = candidates.size();
  }
  const FeatureBounds bounds = store_->DynamicBounds(side);
  const std::vector<double> probe_normalized =
      dynamic.empty() ? std::vector<double>() : bounds.Normalize(dynamic);

  struct Scored {
    std::string key;
    double jaccard;
    double input_gap;
    double dynamic_distance;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  // Candidates' dynamic vectors, gathered into a contiguous SoA batch so
  // the distance criterion runs through the branch-free vectorized kernel
  // (one pass over all survivors) instead of per-candidate scalar loops.
  SoaBatch stored_dynamics(probe_normalized.size());
  stored_dynamics.Reserve(candidates.size());
  for (const std::string& key : candidates) {
    bool cache_hit = false;
    auto entry_or = store_->GetEntryRef(key, &cache_hit);
    if (store_trace != nullptr) {
      ++store_trace->entry_gets;
      ++(cache_hit ? store_trace->entry_cache_hits
                   : store_trace->entry_cache_misses);
    }
    if (entry_or.status().IsNotFound()) {
      // A concurrent DeleteProfile removed this candidate between the
      // scan that produced it and now; score the survivors.
      if (side_trace != nullptr) ++side_trace->tie_break_vanished;
      continue;
    }
    PSTORM_RETURN_IF_ERROR(entry_or.status());
    const std::shared_ptr<const StoredEntry> entry =
        std::move(entry_or).value();
    Scored s;
    s.key = key;
    std::vector<std::string> stored_categorical =
        side == Side::kMap ? entry->statics.MapCategorical()
                           : entry->statics.ReduceCategorical();
    // A probe extended with the user-parameter feature (§7.2.1) compares
    // against the stored parameter string in the same slot.
    if (categorical.size() == stored_categorical.size() + 1) {
      stored_categorical.push_back(entry->statics.user_params);
    }
    s.jaccard = categorical.empty()
                    ? 0.0
                    : PositionalJaccard(stored_categorical, categorical);
    s.input_gap =
        std::fabs(entry->profile.input_data_bytes - probe_input_bytes);
    s.dynamic_distance = 0.0;
    if (!probe_normalized.empty()) {
      stored_dynamics.Append(side == Side::kMap
                                 ? entry->profile.map_side.DynamicVector()
                                 : entry->profile.reduce_side.DynamicVector());
    }
    scored.push_back(std::move(s));
  }
  if (!probe_normalized.empty() && !scored.empty()) {
    std::vector<uint32_t> rows(scored.size());
    for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
    std::vector<double> distances;
    BatchNormalizedDistances(stored_dynamics, rows, bounds.mins,
                             EffectiveRanges(bounds.mins, bounds.maxs),
                             probe_normalized, &distances);
    for (size_t i = 0; i < scored.size(); ++i) {
      scored[i].dynamic_distance = distances[i];
    }
  }
  // Every candidate vanished mid-match: report "nothing to pick" via the
  // empty-key sentinel (job keys are never empty) so the caller degrades
  // to No Match instead of erroring.
  if (scored.empty()) return std::string();

  // Exact static matches first; then the thesis's input-size rule; then
  // the closest dynamic behaviour for determinism.
  const Scored* best = &scored[0];
  for (const Scored& s : scored) {
    if (s.jaccard > best->jaccard + 1e-12) {
      best = &s;
    } else if (std::fabs(s.jaccard - best->jaccard) <= 1e-12) {
      if (s.input_gap < best->input_gap - 1e-6) {
        best = &s;
      } else if (std::fabs(s.input_gap - best->input_gap) <= 1e-6 &&
                 s.dynamic_distance < best->dynamic_distance) {
        best = &s;
      }
    }
  }
  if (side_trace != nullptr) {
    side_trace->winner_job_key = best->key;
    side_trace->winner_score = best->jaccard;
  }
  return best->key;
}

Result<SideMatch> MultiStageMatcher::MatchSide(
    Side side, const JobFeatureVector& probe, obs::SideTrace* side_trace,
    obs::StoreOpsTrace* store_trace) const {
  if (side_trace != nullptr) {
    side_trace->side = side == Side::kMap ? "map" : "reduce";
  }
  const std::vector<double>& dynamic =
      side == Side::kMap ? probe.map_dynamic : probe.reduce_dynamic;
  const std::vector<double>& costs =
      side == Side::kMap ? probe.map_costs : probe.reduce_costs;
  const std::vector<std::string>& categorical =
      side == Side::kMap ? probe.map_categorical : probe.reduce_categorical;
  const staticanalysis::Cfg& cfg =
      side == Side::kMap ? probe.map_cfg : probe.reduce_cfg;

  SideMatch result;
  SideOutcomeOnExit outcome_guard{&result, side_trace};
  hstore::ScanStats sstats;

  // Categorical probe, with the §7.2.1 user-parameter extension appended
  // when enabled (the stored side gains the matching column).
  std::vector<std::string> categorical_probe = categorical;
  if (options_.include_user_parameters || options_.static_only) {
    categorical_probe.push_back(probe.user_params);
  }
  const std::vector<std::string>& calls =
      side == Side::kMap ? probe.map_calls : probe.reduce_calls;

  std::vector<std::string> candidates;
  if (options_.static_only) {
    // §7.2.1: static features (with user parameters) suffice; no sample,
    // no dynamic filter, no cost fallback.
    PSTORM_ASSIGN_OR_RETURN(candidates, store_->ListJobKeys());
    result.after_dynamic = candidates.size();
    RecordStage(side_trace, "list_all", candidates.size(), candidates.size(),
                "static-only mode");
    if (candidates.empty()) return result;
    const size_t cfg_in = candidates.size();
    PSTORM_ASSIGN_OR_RETURN(
        std::vector<std::string> cfg_pass,
        store_->CfgMatchScan(side, cfg, candidates, &sstats));
    RecordScan(sstats, store_trace);
    result.after_cfg = cfg_pass.size();
    RecordStage(side_trace, "cfg", cfg_in, cfg_pass.size());
    if (options_.use_call_graph && !cfg_pass.empty()) {
      const size_t calls_in = cfg_pass.size();
      PSTORM_ASSIGN_OR_RETURN(
          cfg_pass, store_->CallSetScan(side, calls, cfg_pass, &sstats));
      RecordScan(sstats, store_trace);
      RecordStage(side_trace, "call_set", calls_in, cfg_pass.size());
    }
    std::vector<std::string> jaccard_pass;
    if (!cfg_pass.empty()) {
      PSTORM_ASSIGN_OR_RETURN(
          jaccard_pass,
          store_->JaccardScan(side, categorical_probe,
                              options_.theta_jaccard, cfg_pass, &sstats,
                              /*include_user_params=*/true));
      RecordScan(sstats, store_trace);
    }
    result.after_jaccard = jaccard_pass.size();
    RecordStage(side_trace, "jaccard", cfg_pass.size(), jaccard_pass.size(),
                ThetaDetail(options_.theta_jaccard));
    if (jaccard_pass.empty()) return result;
    PSTORM_ASSIGN_OR_RETURN(
        result.job_key,
        TieBreak(side, jaccard_pass, categorical_probe, {},
                 probe.input_data_bytes, side_trace, store_trace));
    if (result.job_key.empty()) return result;
    result.path = MatchPath::kFullPath;
    return result;
  }

  if (!options_.static_filters_first) {
    // ---- Stage 1: dynamic features (Figure 4.4 order). ----
    const double theta = ThetaEuclidean(dynamic.size());
    bool used_index = false;
    PSTORM_ASSIGN_OR_RETURN(
        candidates, EuclideanCandidates(side, /*cost_space=*/false, dynamic,
                                        theta, store_trace, &used_index));
    result.after_dynamic = candidates.size();
    RecordStage(side_trace, "dynamic", store_->num_profiles(),
                candidates.size(),
                ThetaDetail(theta) + (used_index ? " indexed" : ""));
    // An empty set after the *first* filter is a hard failure: nothing in
    // the store behaves like this job.
    if (candidates.empty()) return result;
  } else {
    // Ablation: start from everything; the static filters run first.
    PSTORM_ASSIGN_OR_RETURN(candidates, store_->ListJobKeys());
    result.after_dynamic = candidates.size();
    RecordStage(side_trace, "list_all", candidates.size(), candidates.size(),
                "static-filters-first ablation");
    if (candidates.empty()) return result;
  }

  const std::vector<std::string> dynamic_survivors = candidates;

  // ---- Stage 2: conservative CFG match. ----
  PSTORM_ASSIGN_OR_RETURN(
      std::vector<std::string> after_cfg,
      store_->CfgMatchScan(side, cfg, candidates, &sstats));
  RecordScan(sstats, store_trace);
  result.after_cfg = after_cfg.size();
  RecordStage(side_trace, "cfg", candidates.size(), after_cfg.size());

  // ---- Stage 2.5 (§7.2.2 extension): conservative call-set match. ----
  if (options_.use_call_graph && !after_cfg.empty()) {
    const size_t calls_in = after_cfg.size();
    PSTORM_ASSIGN_OR_RETURN(
        after_cfg, store_->CallSetScan(side, calls, after_cfg, &sstats));
    RecordScan(sstats, store_trace);
    RecordStage(side_trace, "call_set", calls_in, after_cfg.size());
  }

  // ---- Stage 3: Jaccard over categorical features. ----
  std::vector<std::string> after_jaccard;
  if (!after_cfg.empty()) {
    PSTORM_ASSIGN_OR_RETURN(
        after_jaccard,
        store_->JaccardScan(side, categorical_probe, options_.theta_jaccard,
                            after_cfg, &sstats,
                            options_.include_user_parameters));
    RecordScan(sstats, store_trace);
  }
  result.after_jaccard = after_jaccard.size();
  RecordStage(side_trace, "jaccard", after_cfg.size(), after_jaccard.size(),
              ThetaDetail(options_.theta_jaccard));

  if (options_.static_filters_first) {
    // Ablation order: dynamic filter runs last, over the static survivors.
    if (after_jaccard.empty()) return result;
    std::vector<std::string> final_set;
    const double theta = ThetaEuclidean(dynamic.size());
    bool used_index = false;
    PSTORM_ASSIGN_OR_RETURN(
        std::vector<std::string> dynamic_pass,
        EuclideanCandidates(side, /*cost_space=*/false, dynamic, theta,
                            store_trace, &used_index));
    const std::unordered_set<std::string> dynamic_pass_set(
        dynamic_pass.begin(), dynamic_pass.end());
    for (const std::string& key : after_jaccard) {
      if (dynamic_pass_set.count(key) > 0) final_set.push_back(key);
    }
    RecordStage(side_trace, "dynamic", after_jaccard.size(),
                final_set.size(), ThetaDetail(theta));
    if (final_set.empty()) return result;
    PSTORM_ASSIGN_OR_RETURN(
        result.job_key,
        TieBreak(side, final_set, categorical_probe, dynamic,
                 probe.input_data_bytes, side_trace, store_trace));
    if (result.job_key.empty()) return result;
    result.path = MatchPath::kFullPath;
    return result;
  }

  if (!after_jaccard.empty()) {
    PSTORM_ASSIGN_OR_RETURN(
        result.job_key,
        TieBreak(side, after_jaccard, categorical_probe, dynamic,
                 probe.input_data_bytes, side_trace, store_trace));
    if (result.job_key.empty()) return result;
    result.path = MatchPath::kFullPath;
    return result;
  }

  // The static filters emptied the set: the job was never executed here.
  // Alternative filter — Euclidean distance over the cost factors of the
  // dynamic survivors (§4.3).
  if (!options_.use_cost_factor_fallback) return result;
  const double cost_theta = ThetaEuclidean(costs.size());
  bool used_cost_index = false;
  PSTORM_ASSIGN_OR_RETURN(
      std::vector<std::string> fallback,
      EuclideanCandidates(side, /*cost_space=*/true, costs, cost_theta,
                          store_trace, &used_cost_index));
  // Intersect with the dynamic survivors: the fallback refines C', it
  // does not resurrect profiles the dynamic filter rejected.
  const std::unordered_set<std::string> survivor_set(
      dynamic_survivors.begin(), dynamic_survivors.end());
  std::vector<std::string> refined;
  for (const std::string& key : fallback) {
    if (survivor_set.count(key) > 0) refined.push_back(key);
  }
  RecordStage(side_trace, "cost_factor_fallback", dynamic_survivors.size(),
              refined.size(), ThetaDetail(cost_theta));
  if (refined.empty()) return result;
  // Fallback tie-break: static features already failed, so only input
  // size and dynamic closeness apply.
  PSTORM_ASSIGN_OR_RETURN(
      result.job_key,
      TieBreak(side, refined, {}, dynamic, probe.input_data_bytes,
               side_trace, store_trace));
  if (result.job_key.empty()) return result;
  result.path = MatchPath::kCostFactorFallback;
  return result;
}

Result<MatchResult> MultiStageMatcher::Match(
    const JobFeatureVector& probe, obs::SubmissionTrace* trace) const {
  static obs::Histogram& match_micros =
      obs::MetricsRegistry::Global().GetHistogram("pstorm_match_micros");
  obs::ScopedTimer match_timer(&match_micros);

  obs::SideTrace* map_trace = trace != nullptr ? &trace->map_side : nullptr;
  obs::SideTrace* reduce_trace =
      trace != nullptr ? &trace->reduce_side : nullptr;
  obs::StoreOpsTrace* store_trace = trace != nullptr ? &trace->store : nullptr;

  auto get_entry_traced = [&](const std::string& key) {
    bool cache_hit = false;
    auto entry_or = store_->GetEntryRef(key, &cache_hit);
    if (store_trace != nullptr) {
      ++store_trace->entry_gets;
      ++(cache_hit ? store_trace->entry_cache_hits
                   : store_trace->entry_cache_misses);
    }
    return entry_or;
  };

  MatchResult result;
  PSTORM_ASSIGN_OR_RETURN(result.map_side,
                          MatchSide(Side::kMap, probe, map_trace,
                                    store_trace));
  PSTORM_ASSIGN_OR_RETURN(result.reduce_side,
                          MatchSide(Side::kReduce, probe, reduce_trace,
                                    store_trace));
  if (result.map_side.path == MatchPath::kNoMatch ||
      result.reduce_side.path == MatchPath::kNoMatch) {
    return result;  // found == false: No Match Found.
  }

  result.map_source = result.map_side.job_key;
  result.reduce_source = result.reduce_side.job_key;
  result.composite = result.map_source != result.reduce_source;

  // Compose the returned profile: map half from the map match, reduce
  // half from the reduce match (§4.3). Map and reduce sub-profiles are
  // independent by MR's blocking execution, so the stitch is sound.
  auto map_entry_or = get_entry_traced(result.map_source);
  if (map_entry_or.status().IsNotFound()) return result;  // deleted mid-match
  PSTORM_RETURN_IF_ERROR(map_entry_or.status());
  const std::shared_ptr<const StoredEntry> map_entry =
      std::move(map_entry_or).value();
  result.profile = map_entry->profile;
  if (result.composite) {
    auto reduce_entry_or = get_entry_traced(result.reduce_source);
    if (reduce_entry_or.status().IsNotFound()) return result;
    PSTORM_RETURN_IF_ERROR(reduce_entry_or.status());
    const std::shared_ptr<const StoredEntry> reduce_entry =
        std::move(reduce_entry_or).value();
    result.profile.reduce_side = reduce_entry->profile.reduce_side;
    result.profile.job_name =
        map_entry->profile.job_name + "+" + reduce_entry->profile.job_name;
  }
  result.found = true;
  if (trace != nullptr) {
    trace->matched = true;
    trace->composite = result.composite;
    trace->profile_source =
        result.composite ? result.map_source + "+" + result.reduce_source
                         : result.map_source;
  }
  return result;
}

}  // namespace pstorm::core
