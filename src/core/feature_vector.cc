#include "core/feature_vector.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pstorm::core {

JobFeatureVector BuildFeatureVector(
    const profiler::ExecutionProfile& sample_profile,
    const staticanalysis::StaticFeatures& statics) {
  JobFeatureVector v;
  v.job_name = sample_profile.job_name;
  v.input_data_bytes = sample_profile.input_data_bytes;

  v.map_dynamic = sample_profile.map_side.DynamicVector();
  v.map_costs = sample_profile.map_side.CostVector();
  v.map_categorical = statics.MapCategorical();
  v.map_cfg = statics.map_cfg;

  v.reduce_dynamic = sample_profile.reduce_side.DynamicVector();
  v.reduce_costs = sample_profile.reduce_side.CostVector();
  v.reduce_categorical = statics.ReduceCategorical();
  v.reduce_cfg = statics.reduce_cfg;

  v.user_params = statics.user_params;
  v.map_calls = statics.map_calls;
  v.reduce_calls = statics.reduce_calls;
  return v;
}

void SoaBatch::Reserve(size_t n) {
  for (auto& column : columns) column.reserve(n);
}

size_t SoaBatch::Append(const std::vector<double>& values) {
  PSTORM_CHECK(values.size() == columns.size());
  for (size_t d = 0; d < columns.size(); ++d) {
    columns[d].push_back(values[d]);
  }
  return columns.empty() ? 0 : columns[0].size() - 1;
}

void SoaBatch::Assign(size_t i, const std::vector<double>& values) {
  PSTORM_CHECK(values.size() == columns.size());
  for (size_t d = 0; d < columns.size(); ++d) {
    PSTORM_CHECK(i < columns[d].size());
    columns[d][i] = values[d];
  }
}

std::vector<double> SoaBatch::Row(size_t i) const {
  std::vector<double> out;
  out.reserve(columns.size());
  for (const auto& column : columns) {
    PSTORM_CHECK(i < column.size());
    out.push_back(column[i]);
  }
  return out;
}

std::vector<double> EffectiveRanges(const std::vector<double>& mins,
                                    const std::vector<double>& maxs) {
  PSTORM_CHECK(mins.size() == maxs.size());
  std::vector<double> out;
  out.reserve(mins.size());
  for (size_t i = 0; i < mins.size(); ++i) {
    // Mirrors FeatureBounds::Normalize's degenerate-range guard: the
    // effective range is at least half the feature's magnitude (and never
    // zero), so a near-constant feature cannot dominate the distance.
    const double magnitude = std::max(std::fabs(mins[i]), std::fabs(maxs[i]));
    out.push_back(std::max({maxs[i] - mins[i], 0.5 * magnitude, 1e-12}));
  }
  return out;
}

void BatchNormalizedDistances(const SoaBatch& batch,
                              const std::vector<uint32_t>& rows,
                              const std::vector<double>& mins,
                              const std::vector<double>& ranges,
                              const std::vector<double>& normalized_probe,
                              std::vector<double>* out) {
  const size_t dims = batch.dims();
  PSTORM_CHECK(mins.size() == dims);
  PSTORM_CHECK(ranges.size() == dims);
  PSTORM_CHECK(normalized_probe.size() == dims);
  out->assign(rows.size(), 0.0);
  double* acc = out->data();
  const uint32_t* idx = rows.data();
  const size_t n = rows.size();
  for (size_t d = 0; d < dims; ++d) {
    const double* column = batch.columns[d].data();
    const double min = mins[d];
    const double range = ranges[d];
    const double probe = normalized_probe[d];
    for (size_t j = 0; j < n; ++j) {
      const double diff = (column[idx[j]] - min) / range - probe;
      acc[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < n; ++j) acc[j] = std::sqrt(acc[j]);
}

}  // namespace pstorm::core
