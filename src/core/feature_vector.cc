#include "core/feature_vector.h"

namespace pstorm::core {

JobFeatureVector BuildFeatureVector(
    const profiler::ExecutionProfile& sample_profile,
    const staticanalysis::StaticFeatures& statics) {
  JobFeatureVector v;
  v.job_name = sample_profile.job_name;
  v.input_data_bytes = sample_profile.input_data_bytes;

  v.map_dynamic = sample_profile.map_side.DynamicVector();
  v.map_costs = sample_profile.map_side.CostVector();
  v.map_categorical = statics.MapCategorical();
  v.map_cfg = statics.map_cfg;

  v.reduce_dynamic = sample_profile.reduce_side.DynamicVector();
  v.reduce_costs = sample_profile.reduce_side.CostVector();
  v.reduce_categorical = statics.ReduceCategorical();
  v.reduce_cfg = statics.reduce_cfg;

  v.user_params = statics.user_params;
  v.map_calls = statics.map_calls;
  v.reduce_calls = statics.reduce_calls;
  return v;
}

}  // namespace pstorm::core
