#include "core/explain.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "staticanalysis/cfg_matcher.h"

namespace pstorm::core {

namespace {

double Divergence(double a, double b) {
  const double mean = 0.5 * (std::fabs(a) + std::fabs(b));
  if (mean <= 0) return 0;
  return std::fabs(a - b) / mean;
}

}  // namespace

std::vector<Explanation> ExplainPerformanceDifference(
    const profiler::ExecutionProfile& profile_a,
    const staticanalysis::StaticFeatures& statics_a,
    const profiler::ExecutionProfile& profile_b,
    const staticanalysis::StaticFeatures& statics_b,
    ExplainOptions options) {
  // Causal hints derivable from the static features — the information
  // PerfXplain's dynamic-only log cannot supply (§7.2.4).
  const bool formatters_differ =
      statics_a.in_formatter != statics_b.in_formatter;
  const bool out_formatters_differ =
      statics_a.out_formatter != statics_b.out_formatter;
  const bool map_cfgs_differ =
      !staticanalysis::MatchCfgs(statics_a.map_cfg, statics_b.map_cfg);
  const bool reduce_cfgs_differ =
      !staticanalysis::MatchCfgs(statics_a.reduce_cfg, statics_b.reduce_cfg);
  const bool combiners_differ = statics_a.combiner != statics_b.combiner;

  struct Metric {
    const char* name;
    double a;
    double b;
    std::string cause;
  };
  const auto& ma = profile_a.map_side;
  const auto& mb = profile_b.map_side;
  const auto& ra = profile_a.reduce_side;
  const auto& rb = profile_b.reduce_side;

  const std::vector<Metric> metrics = {
      {"map: read time/task (s)", ma.read_s, mb.read_s,
       formatters_differ ? "different input formatters (" +
                               statics_a.in_formatter + " vs " +
                               statics_b.in_formatter + ")"
                         : ""},
      {"map: READ_HDFS_IO_COST (ns/B)", ma.read_hdfs_io_cost,
       mb.read_hdfs_io_cost,
       formatters_differ ? "different input formatters" : ""},
      {"map: function time/task (s)", ma.map_s, mb.map_s,
       map_cfgs_differ ? "map control flow graphs differ" : ""},
      {"map: MAP_CPU_COST (ns/record)", ma.map_cpu_cost, mb.map_cpu_cost,
       map_cfgs_differ ? "map control flow graphs differ" : ""},
      {"map: size selectivity", ma.size_selectivity, mb.size_selectivity,
       map_cfgs_differ ? "map control flow graphs differ" : ""},
      {"map: combine selectivity", ma.combine_pairs_selectivity,
       mb.combine_pairs_selectivity,
       combiners_differ ? "different combiners (" + statics_a.combiner +
                              " vs " + statics_b.combiner + ")"
                        : ""},
      {"map: spill time/task (s)", ma.spill_s, mb.spill_s, ""},
      {"map: merge time/task (s)", ma.merge_s, mb.merge_s, ""},
      {"reduce: shuffle time/task (s)", ra.shuffle_s, rb.shuffle_s,
       Divergence(profile_a.input_data_bytes, profile_b.input_data_bytes) >
               0.5
           ? "input data sizes differ (" +
                 HumanBytes(static_cast<uint64_t>(
                     profile_a.input_data_bytes)) +
                 " vs " +
                 HumanBytes(
                     static_cast<uint64_t>(profile_b.input_data_bytes)) +
                 ")"
           : ""},
      {"reduce: sort time/task (s)", ra.sort_s, rb.sort_s, ""},
      {"reduce: function time/task (s)", ra.reduce_s, rb.reduce_s,
       reduce_cfgs_differ ? "reduce control flow graphs differ" : ""},
      {"reduce: REDUCE_CPU_COST (ns/record)", ra.reduce_cpu_cost,
       rb.reduce_cpu_cost,
       reduce_cfgs_differ ? "reduce control flow graphs differ" : ""},
      {"reduce: write time/task (s)", ra.write_s, rb.write_s,
       out_formatters_differ ? "different output formatters (" +
                                   statics_a.out_formatter + " vs " +
                                   statics_b.out_formatter + ")"
                             : ""},
      {"reduce: size selectivity", ra.size_selectivity, rb.size_selectivity,
       ""},
  };

  std::vector<Explanation> out;
  for (const Metric& metric : metrics) {
    const double divergence = Divergence(metric.a, metric.b);
    if (divergence < options.min_divergence) continue;
    Explanation e;
    e.metric = metric.name;
    e.value_a = metric.a;
    e.value_b = metric.b;
    e.divergence = divergence;
    e.cause = metric.cause;
    out.push_back(std::move(e));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Explanation& x, const Explanation& y) {
                     // Metrics with an attested cause outrank bare
                     // observations of equal strength.
                     if (x.cause.empty() != y.cause.empty()) {
                       return !x.cause.empty();
                     }
                     return x.divergence > y.divergence;
                   });
  if (out.size() > options.max_explanations) {
    out.resize(options.max_explanations);
  }
  return out;
}

std::string RenderExplanations(
    const std::string& job_a, const std::string& job_b,
    const std::vector<Explanation>& explanations) {
  std::string report = "Why does '" + job_a + "' perform differently from '" +
                       job_b + "'?\n";
  if (explanations.empty()) {
    report += "  No metric diverges meaningfully: the jobs behave alike.\n";
    return report;
  }
  for (const Explanation& e : explanations) {
    report += "  - " + e.metric + ": " + FormatDouble(e.value_a, 2) +
              " vs " + FormatDouble(e.value_b, 2) + "  (" +
              FormatDouble(100 * e.divergence, 0) + "% apart)";
    if (!e.cause.empty()) report += "\n      because: " + e.cause;
    report += "\n";
  }
  return report;
}

}  // namespace pstorm::core
