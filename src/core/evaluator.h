#ifndef PSTORM_CORE_EVALUATOR_H_
#define PSTORM_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/matcher.h"
#include "core/profile_store.h"
#include "jobs/benchmark_jobs.h"
#include "ml/gbrt.h"
#include "mrsim/simulator.h"
#include "profiler/profiler.h"
#include "whatif/whatif_engine.h"

namespace pstorm::core {

/// One profiled (job, data set) execution of the evaluation workload:
/// everything the accuracy experiments need.
struct CorpusItem {
  std::string job_key;  // "<job-name>@<data-set>"
  jobs::WorkloadEntry entry;
  mrsim::DataSetSpec data;
  profiler::ExecutionProfile complete;  // Full profile (the store content).
  profiler::ExecutionProfile sample;    // 1-task sample (the probe).
  staticanalysis::StaticFeatures statics;
};

struct Corpus {
  std::vector<CorpusItem> items;

  /// Index of the item with the same job name but a different data set,
  /// or -1 when the job ran on only one data set (no profile twin).
  int TwinOf(size_t index) const;
};

/// Profiles the whole Table 6.1 workload — one complete profile and one
/// 1-task sample per (job, data set) — under `config`.
Result<Corpus> BuildEvaluationCorpus(const mrsim::Simulator& simulator,
                                     const mrsim::Configuration& config,
                                     uint64_t seed);

/// Store content states of §6.1: whether the submitted (job, data set)'s
/// own complete profile is present (SD) or only the twin on the other
/// data set (DD).
enum class StoreState { kSameData, kDifferentData };

/// Per-side matching accuracy over all submissions (the Figure 6.1/6.2
/// metric: correct matches / total submissions).
struct AccuracyReport {
  int total = 0;
  int map_correct = 0;
  int reduce_correct = 0;

  double map_accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(map_correct) / total;
  }
  double reduce_accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(reduce_correct) / total;
  }
};

/// The two generic feature-selection baselines of §6.1.1.
enum class BaselineFeatures {
  /// Top-F dynamic (profile) features by information gain.
  kProfileOnly,
  /// Static features added to the pool before ranking; the top-F still
  /// come out numerical, as the thesis observes.
  kStaticPlusProfile,
};

/// Runs the §6.1 matching-accuracy protocol: for every corpus item, build
/// the store in the requested content state, submit the item's 1-task
/// sample as the probe, and score the matcher's answer (SD: the item's own
/// key; DD: its twin's key; items without twins can never be correct,
/// reproducing the thesis's false-positive accounting).
class MatcherEvaluator {
 public:
  /// `env` hosts the throwaway evaluation stores; `corpus` is copied.
  MatcherEvaluator(storage::Env* env, Corpus corpus);

  /// PStorM's multi-stage matcher.
  Result<AccuracyReport> EvaluatePStorM(StoreState state,
                                        MatchOptions options = {}) const;

  /// Nearest-neighbour matching over information-gain-selected numeric
  /// features (P-features / SP-features).
  Result<AccuracyReport> EvaluateBaseline(StoreState state,
                                          BaselineFeatures features) const;

  /// The GBRT learned-distance matcher of §4.4 / §6.1.2. `pairs_per_job`
  /// bounds the training pairs sampled per job (the full cross product is
  /// cubic in the corpus).
  Result<AccuracyReport> EvaluateGbrt(
      StoreState state, const ml::GradientBoostedTrees::Options& options,
      const whatif::WhatIfEngine& engine, int pairs_per_job,
      uint64_t seed) const;

  const Corpus& corpus() const { return corpus_; }

  /// Builds a store holding every corpus profile (the SD content state),
  /// rooted at `path`. Exposed for benches.
  Result<std::unique_ptr<ProfileStore>> BuildFullStore(
      const std::string& path) const;

 private:
  storage::Env* env_;
  Corpus corpus_;
};

}  // namespace pstorm::core

#endif  // PSTORM_CORE_EVALUATOR_H_
