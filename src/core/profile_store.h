#ifndef PSTORM_CORE_PROFILE_STORE_H_
#define PSTORM_CORE_PROFILE_STORE_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/match_index.h"
#include "hstore/table.h"
#include "profiler/profile.h"
#include "staticanalysis/features.h"
#include "storage/env.h"

namespace pstorm::core {

/// Which half of the job a store operation concerns (the matching
/// workflow of Figure 4.4 runs once per side).
enum class Side { kMap, kReduce };

/// One stored job: its complete execution profile and static features.
struct StoredEntry {
  std::string job_key;
  profiler::ExecutionProfile profile;
  staticanalysis::StaticFeatures statics;
};

/// Min/max observed per feature, maintained incrementally as profiles are
/// added (thesis §4.2): the store normalizes features to [0,1] with these
/// bounds at matching time.
struct FeatureBounds {
  std::vector<double> mins;
  std::vector<double> maxs;

  /// (v - min) / (max - min) per dimension; a constant dimension maps
  /// to 0.
  std::vector<double> Normalize(const std::vector<double>& values) const;
};

/// Store-level configuration: the backing table's options plus the
/// secondary match index and ingest knobs. Implicitly constructible from
/// bare HTableOptions so call sites that only configure the table keep
/// working (and get the index defaults).
struct ProfileStoreOptions {
  ProfileStoreOptions() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  ProfileStoreOptions(hstore::HTableOptions table_options)
      : table(std::move(table_options)) {}

  /// The backing hstore table (region split size, read-only mode,
  /// DbOptions::maintenance_pool, ...).
  hstore::HTableOptions table;

  /// Maintain the in-memory secondary match index (DESIGN.md §13). Off,
  /// every stage-1 lookup falls back to the exhaustive region scan.
  bool enable_match_index = true;
  /// Band count / cell width of the index (MatchIndexOptions).
  int index_bands = 1;
  double index_cell_width = 0.5;
  /// Rebuild the index from the table at Open. When disabled on a
  /// non-empty store the index starts not-ready and stage 1 keeps using
  /// the exhaustive scan (ablation / fast-open knob); incremental
  /// maintenance still runs so a store opened empty stays indexed.
  bool index_rebuild_on_open = true;

  /// Flush the backing table after every PutProfile (profiles are
  /// precious: each one costs a full profiled run). Bulk loaders turn
  /// this off and call Flush() themselves once per batch.
  bool eager_flush = true;
};

/// PStorM's profile store: the Table 5.1 HBase data model on the hstore
/// layer. Row keys are "<FeatureType>/<job key>" — feature type as a
/// row-key prefix rather than a column family, so new feature types can be
/// added without schema surgery (HBase forbids new column families after
/// creation, §5.1):
///
///   Dynamic/<job>  data-flow statistics + cost factors + input size
///   Static/<job>   Table 4.3 categorical features + both CFGs
///   Payload/<job>  the serialized complete execution profile
///   Meta/bounds    per-feature min/max for normalization
///
/// One column family ("F") holds everything, with per-row column sets.
///
/// Thread-safety contract: all methods may be called concurrently from any
/// number of threads. Reads go straight to the (thread-safe) table plus a
/// sharded decoded-entry cache; mutations (PutProfile/DeleteProfile)
/// additionally serialize on an internal write mutex so the multi-row
/// writes of one profile are never interleaved with another's and the
/// profile count stays exact. Normalization bounds are read under a shared
/// lock and only ever widen.
class ProfileStore {
 public:
  /// `options` configures the backing table (notably
  /// DbOptions::maintenance_pool, which moves region flushes/compactions
  /// off the PutProfile path onto a background scheduler) and the
  /// secondary match index.
  static Result<std::unique_ptr<ProfileStore>> Open(
      storage::Env* env, std::string path, ProfileStoreOptions options = {});

  /// Quiesces the backing table's background maintenance (no-op without a
  /// maintenance pool); returns the first latched background error.
  Status WaitForIdle() const { return table_->WaitForIdle(); }

  /// Inserts or replaces the profile of `job_key` and updates the
  /// normalization bounds.
  Status PutProfile(const std::string& job_key,
                    const profiler::ExecutionProfile& profile,
                    const staticanalysis::StaticFeatures& statics);

  /// Loads one stored job; NotFound if absent.
  Result<StoredEntry> GetEntry(const std::string& job_key) const;

  /// Like GetEntry but shares the store's decoded-entry cache: repeated
  /// probes of the same rows (matcher tie-breaks, composite stitches)
  /// skip re-deserializing the payload blob and re-parsing both CFGs.
  /// The returned entry is immutable and stays valid after invalidation.
  /// Cache rule: an entry is invalidated by the PutProfile or
  /// DeleteProfile of its own job key, and by nothing else.
  /// `cache_hit` (optional) reports whether the decoded-entry cache served
  /// the request; corrupt or missing rows leave it false.
  Result<std::shared_ptr<const StoredEntry>> GetEntryRef(
      const std::string& job_key, bool* cache_hit = nullptr) const;

  /// Decoded entries currently cached (tests/diagnostics).
  size_t entry_cache_size() const;

  /// Removes a job's rows (idempotent). Bounds are left as-is (they only
  /// ever widen, which keeps normalization stable).
  Status DeleteProfile(const std::string& job_key);

  /// All stored job keys, sorted.
  Result<std::vector<std::string>> ListJobKeys() const;

  size_t num_profiles() const {
    return num_profiles_.load(std::memory_order_relaxed);
  }

  /// Normalization bounds of the side's dynamic-feature vector.
  FeatureBounds DynamicBounds(Side side) const;
  /// Normalization bounds of the side's cost-factor vector.
  FeatureBounds CostBounds(Side side) const;

  /// Stage-1 filter of Figure 4.4, pushed down to the regions: job keys
  /// whose normalized side-dynamic features lie within Euclidean distance
  /// `theta` of `probe`. `server_side=false` ships every row to the
  /// client first (the §5.3 ablation).
  Result<std::vector<std::string>> DynamicEuclideanScan(
      Side side, const std::vector<double>& probe, double theta,
      bool server_side = true, hstore::ScanStats* stats = nullptr) const;

  /// The alternative filter: same, over the side's cost factors.
  Result<std::vector<std::string>> CostEuclideanScan(
      Side side, const std::vector<double>& probe, double theta,
      bool server_side = true, hstore::ScanStats* stats = nullptr) const;

  /// Whether the secondary match index covers every stored profile (it
  /// was rebuilt at Open, or the store opened empty, and has been
  /// maintained incrementally since). When false the matcher must use the
  /// exhaustive scans; the indexed scans return FailedPrecondition.
  bool match_index_ready() const;

  /// Profiles currently in the side's dynamic index space
  /// (tests/diagnostics).
  size_t match_index_size(Side side) const;

  /// The index-backed equivalent of DynamicEuclideanScan: same key set,
  /// same (lexicographic) order, but enumerating only bucket-colliding
  /// candidates and verifying them with the vectorized kernel instead of
  /// scanning every Dynamic row. FailedPrecondition when the index is
  /// disabled or not ready.
  Result<std::vector<std::string>> IndexedDynamicScan(
      Side side, const std::vector<double>& probe, double theta,
      VectorSpaceIndex::QueryStats* stats = nullptr) const;

  /// The index-backed equivalent of CostEuclideanScan (a vectorized
  /// full sweep of the in-memory cost vectors — the fallback filter has
  /// no buckets).
  Result<std::vector<std::string>> IndexedCostScan(
      Side side, const std::vector<double>& probe, double theta,
      VectorSpaceIndex::QueryStats* stats = nullptr) const;

  /// (job key, raw vector) of every member of the side's dynamic / cost
  /// index space, sorted by key. The index's cell structure is a pure
  /// function of these values, so snapshot equality implies index
  /// equality — the crash tests compare the incrementally-maintained
  /// index against a fresh rebuild with this. Empty when disabled.
  std::vector<std::pair<std::string, std::vector<double>>>
  MatchIndexDynamicSnapshot(Side side) const;
  std::vector<std::pair<std::string, std::vector<double>>>
  MatchIndexCostSnapshot(Side side) const;

  /// Drops and rebuilds the match index from the table's Dynamic rows
  /// (what Open does when index_rebuild_on_open is set). Rows that are
  /// unreadable or malformed are skipped — exactly the rows the
  /// exhaustive filters reject — so the rebuilt index stays equivalent to
  /// the scans even over a store degraded by quarantine.
  Status RebuildMatchIndex();

  /// Persists the normalization bounds and flushes the backing table (for
  /// bulk loads with eager_flush off, which defer both to this call).
  Status Flush() {
    PSTORM_RETURN_IF_ERROR(SaveBounds());
    return table_->Flush();
  }

  /// Stage-2 filter: of `candidates`, the job keys whose stored side-CFG
  /// structurally matches `probe_cfg` (pushed down).
  Result<std::vector<std::string>> CfgMatchScan(
      Side side, const staticanalysis::Cfg& probe_cfg,
      const std::vector<std::string>& candidates,
      hstore::ScanStats* stats = nullptr) const;

  /// Stage-3 filter: of `candidates`, the job keys whose side categorical
  /// features have Jaccard index >= `theta` against `probe` (pushed down).
  /// When `include_user_params` is set, the canonicalized user-parameter
  /// string joins the categorical vector on both sides (the §7.2.1
  /// extension) — `probe` must then carry it as its last element.
  Result<std::vector<std::string>> JaccardScan(
      Side side, const std::vector<std::string>& probe, double theta,
      const std::vector<std::string>& candidates,
      hstore::ScanStats* stats = nullptr,
      bool include_user_params = false) const;

  /// §7.2.2 call-flow filter: of `candidates`, the job keys whose stored
  /// side call set equals `probe_calls` exactly (conservative, like the
  /// CFG filter).
  Result<std::vector<std::string>> CallSetScan(
      Side side, const std::vector<std::string>& probe_calls,
      const std::vector<std::string>& candidates,
      hstore::ScanStats* stats = nullptr) const;

  /// Input data size stored for a job (the tie-break feature).
  Result<double> InputDataBytes(const std::string& job_key) const;

  /// The .META.-style region catalog entries of the backing table.
  std::vector<std::string> MetaEntries() const { return table_->MetaEntries(); }

  /// The backing table, for wiring an hstore::HTableReplica to this store
  /// (the replica ships the table's WAL; the store stays oblivious).
  /// Owned by the store; valid for the store's lifetime.
  hstore::HTable* table() const { return table_.get(); }

  /// Storage counters summed over the backing table's regions. After a
  /// reopen over damaged files this is where quarantined-sstable and
  /// WAL-recovery counts surface (the observability half of the graceful-
  /// degradation contract: corruption costs stored profiles, never an
  /// error out of SubmitJob).
  storage::DbStats StorageStats() const { return table_->AggregatedDbStats(); }

  /// Regions of the backing table that were unreadable at open and came
  /// back empty.
  const std::vector<std::string>& RegionOpenErrors() const {
    return table_->region_open_errors();
  }

  /// Metadata degradations Open performed on this store (each is also
  /// counted in the global metrics registry). Like region_open_errors,
  /// immutable after Open.
  struct RecoveryStats {
    /// Corrupt Meta/bounds row reset to empty (bounds re-widen from puts).
    uint64_t bounds_resets = 0;
    /// Profile count unavailable under corruption, reset to 0 until the
    /// next successful recount.
    uint64_t count_resets = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

 private:
  ProfileStore(std::unique_ptr<hstore::HTable> table,
               ProfileStoreOptions options);

  Status LoadBounds();
  /// Requires bounds_mu_ NOT held (takes it shared itself).
  Status SaveBounds();
  /// Requires bounds_mu_ held exclusively.
  void WidenLocked(const std::string& feature, double value);
  Status RecountProfiles();

  /// One stripe of the decoded-entry cache. The mutex guards the map and
  /// epoch; the entries themselves are immutable shared values. The epoch
  /// advances on every invalidation, so a reader that decoded its entry
  /// before a concurrent mutation can tell its copy is stale and skip
  /// caching it (coherence: the cache never outlives an invalidation).
  struct CacheShard {
    std::mutex mu;
    uint64_t epoch = 0;
    std::unordered_map<std::string, std::shared_ptr<const StoredEntry>> map;
  };
  CacheShard& ShardFor(const std::string& job_key) const;

  /// Requires index_mu_ held exclusively (or the single-threaded open).
  void IndexPutLocked(const std::string& job_key,
                      const profiler::ExecutionProfile& profile);

  /// `filter` applied to the candidate rows under `prefix`: point reads
  /// when the candidate set is small (sublinear funnel stages after the
  /// stage-1 index pruned), one pushed-down KeySet scan otherwise. Same
  /// keys, same (row) order, either way.
  Result<std::vector<std::string>> FilterCandidates(
      const std::string& prefix, const std::vector<std::string>& candidates,
      const std::shared_ptr<const hstore::RowFilter>& filter,
      hstore::ScanStats* stats) const;

  std::unique_ptr<hstore::HTable> table_;
  const ProfileStoreOptions options_;

  /// Serializes mutations (PutProfile/DeleteProfile). Lock order:
  /// write_mu_ → bounds_mu_ → a cache-shard mutex (readers take only the
  /// latter two, each alone).
  std::mutex write_mu_;

  /// Guards bounds_: shared for the Bounds accessors and SaveBounds,
  /// exclusive for WidenLocked (and the single-threaded open).
  mutable std::shared_mutex bounds_mu_;
  /// feature name -> (min, max) observed.
  std::map<std::string, std::pair<double, double>> bounds_;

  std::atomic<size_t> num_profiles_{0};

  /// Stored job keys, mirrored from the table's Payload rows: loaded by
  /// RecountProfiles at Open, maintained by PutProfile/DeleteProfile.
  /// Turns the per-mutation existence check into a hash probe instead of
  /// a table Get (which opens a merging iterator over every sstable — the
  /// dominant cost of bulk loads). Only touched under write_mu_ (or the
  /// single-threaded Open). When the open-time recount failed under
  /// corruption the mirror is not authoritative and existence checks fall
  /// back to the table.
  std::unordered_set<std::string> profile_keys_;
  bool profile_keys_authoritative_ = false;

  RecoveryStats recovery_stats_;  // Written only during Open.

  /// Decoded-entry cache behind GetEntryRef, sharded by job-key hash so
  /// concurrent matcher probes of different keys don't contend. Mutations
  /// erase the affected key from its shard — see the cache rule on
  /// GetEntryRef.
  static constexpr size_t kCacheShards = 16;
  mutable std::array<CacheShard, kCacheShards> entry_cache_;

  /// The secondary match index (null when disabled). Guarded by
  /// index_mu_: exclusive for maintenance (under write_mu_, extending the
  /// lock order to write_mu_ → index_mu_), shared for lookups.
  /// index_ready_ flips true once the index provably covers every stored
  /// profile (rebuilt at Open, or the store opened empty) and never flips
  /// back: incremental maintenance keeps it complete from then on.
  mutable std::shared_mutex index_mu_;
  std::unique_ptr<MatchIndex> index_;
  bool index_ready_ = false;
};

/// Column names of the side's dynamic features / cost factors, in vector
/// order (exposed for the pushdown filters and tests).
const std::vector<std::string>& DynamicColumnNames(Side side);
const std::vector<std::string>& CostColumnNames(Side side);
const std::vector<std::string>& StaticColumnNames(Side side);

}  // namespace pstorm::core

#endif  // PSTORM_CORE_PROFILE_STORE_H_
