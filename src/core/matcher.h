#ifndef PSTORM_CORE_MATCHER_H_
#define PSTORM_CORE_MATCHER_H_

#include <string>

#include "common/result.h"
#include "core/feature_vector.h"
#include "core/profile_store.h"
#include "obs/trace.h"

namespace pstorm::core {

/// Knobs of the multi-stage matcher. Defaults are the thesis settings
/// (§6): θ_Jacc = 0.5 and θ_Eucl = √(#dynamic features)/2 over [0,1]-
/// normalized features.
struct MatchOptions {
  double theta_jaccard = 0.5;
  /// When > 0 overrides the √d/2 default for the dynamic-feature filter.
  double theta_euclidean_override = 0.0;
  /// Apply the cost-factor fallback filter when the static filters empty
  /// the candidate set (the "alternative filter" of Figure 4.4).
  bool use_cost_factor_fallback = true;
  /// Push filters to the store's regions (§5.3); false ships every row to
  /// the client (ablation).
  bool server_side_filtering = true;
  /// Enumerate the Euclidean-filter candidates from the store's secondary
  /// match index (banded bucket pruning + vectorized exact verify; see
  /// DESIGN.md §13) when it is ready. The indexed and exhaustive paths
  /// return identical candidate sets in identical order; when the index
  /// is disabled or not ready the matcher silently uses the exhaustive
  /// region scan. False forces the exhaustive scan (ablation).
  bool use_index = true;
  /// Ablation of §4.3's stage order: run the static filters before the
  /// dynamic filter. Loses the composite-profile opportunities the thesis
  /// describes (e.g. same code, different user parameters).
  bool static_filters_first = false;
  /// §7.2.1 extension: fold the job's user parameters into the categorical
  /// feature vector. With this on, the static features alone can separate
  /// the same code run with different parameters.
  bool include_user_parameters = false;
  /// §7.2.1 corollary: match on static features only (no 1-task sample
  /// needed). Requires include_user_parameters to be discriminative.
  /// The dynamic filter and the cost-factor fallback are skipped; the
  /// tie-break uses Jaccard + input size.
  bool static_only = false;
  /// §7.2.2 extension: require the stored job's helper-call set to equal
  /// the probe's, as an extra conservative filter after the CFG stage.
  bool use_call_graph = false;
};

/// How one side of the match was decided.
enum class MatchPath {
  kNoMatch,
  /// Survived dynamic -> CFG -> Jaccard -> tie-break.
  kFullPath,
  /// Static filters emptied the set; matched via the cost-factor
  /// alternative filter (the previously-unseen-job path).
  kCostFactorFallback,
};

/// Outcome of one side's workflow.
struct SideMatch {
  std::string job_key;  // Empty when no match.
  MatchPath path = MatchPath::kNoMatch;
  /// Candidates surviving each stage (diagnostics / benches).
  size_t after_dynamic = 0;
  size_t after_cfg = 0;
  size_t after_jaccard = 0;
};

/// Outcome of a full match: a (possibly composite) profile for the CBO.
struct MatchResult {
  bool found = false;
  /// Map side taken from `map_source`, reduce side from `reduce_source`.
  std::string map_source;
  std::string reduce_source;
  bool composite = false;  // True when the two sources differ.
  profiler::ExecutionProfile profile;
  SideMatch map_side;
  SideMatch reduce_side;
};

/// The PStorM profile matcher (thesis chapter 4): a domain-specific
/// multi-stage workflow, applied once for the map side and once for the
/// reduce side, that filters the stored profiles by (1) normalized
/// Euclidean distance over the Table 4.1 data-flow statistics, (2)
/// conservative CFG equivalence, (3) Jaccard similarity over the Table 4.3
/// categorical features, breaking ties by closest input data size; when
/// the static filters empty the candidate set (a previously unseen job),
/// it falls back to a Euclidean filter over the Table 4.2 cost factors.
class MultiStageMatcher {
 public:
  /// `store` must outlive the matcher.
  explicit MultiStageMatcher(const ProfileStore* store)
      : MultiStageMatcher(store, MatchOptions{}) {}
  MultiStageMatcher(const ProfileStore* store, MatchOptions options);

  /// Runs the workflow for `probe`. `found == false` (with OK status)
  /// means No Match Found — the caller then runs the job with profiling
  /// on and stores the collected profile. `trace` (optional) receives the
  /// per-stage funnel, tie-break path, and store-op accounting of both
  /// sides.
  Result<MatchResult> Match(const JobFeatureVector& probe,
                            obs::SubmissionTrace* trace = nullptr) const;

  /// One side's workflow, exposed for tests and benches. `side_trace` and
  /// `store_trace` (optional, independent) receive the stage funnel and
  /// the store-op accounting.
  Result<SideMatch> MatchSide(Side side, const JobFeatureVector& probe,
                              obs::SideTrace* side_trace = nullptr,
                              obs::StoreOpsTrace* store_trace = nullptr) const;

  /// The Figure 4.4 tie-break with one refinement: when several candidates
  /// survive every filter, prefer those with the highest Jaccard score
  /// (exact static matches beat near matches), then the closest input
  /// data size, then the smallest dynamic distance — the last two exactly
  /// as the thesis motivates via Figure 4.6. Pass empty `categorical` /
  /// `dynamic` to skip the respective criterion (fallback path).
  /// Exposed for tests and benches.
  Result<std::string> TieBreak(Side side,
                               const std::vector<std::string>& candidates,
                               const std::vector<std::string>& categorical,
                               const std::vector<double>& dynamic,
                               double probe_input_bytes,
                               obs::SideTrace* side_trace = nullptr,
                               obs::StoreOpsTrace* store_trace = nullptr) const;

 private:
  /// Euclidean candidate enumeration (stage 1 over the dynamic features,
  /// or the cost-factor alternative): through the store's match index
  /// when `use_index` is set and the index is ready, else the exhaustive
  /// scan. `used_index` (required) reports the path taken.
  Result<std::vector<std::string>> EuclideanCandidates(
      Side side, bool cost_space, const std::vector<double>& probe,
      double theta, obs::StoreOpsTrace* store_trace, bool* used_index) const;

  double ThetaEuclidean(size_t dims) const;

  const ProfileStore* store_;
  MatchOptions options_;
};

}  // namespace pstorm::core

#endif  // PSTORM_CORE_MATCHER_H_
