#include "core/pstorm.h"

#include "common/logging.h"

namespace pstorm::core {

PStorM::PStorM(const mrsim::Simulator* simulator,
               std::unique_ptr<ProfileStore> store, PStormOptions options)
    : simulator_(simulator),
      store_(std::move(store)),
      options_(options),
      profiler_(simulator),
      engine_(simulator->cluster()) {}

Result<std::unique_ptr<PStorM>> PStorM::Create(
    const mrsim::Simulator* simulator, storage::Env* env,
    std::string store_path, PStormOptions options) {
  PSTORM_CHECK(simulator != nullptr);
  PSTORM_ASSIGN_OR_RETURN(auto store,
                          ProfileStore::Open(env, std::move(store_path)));
  return std::unique_ptr<PStorM>(
      new PStorM(simulator, std::move(store), options));
}

Status PStorM::AddProfile(const std::string& job_key,
                          const profiler::ExecutionProfile& profile,
                          const staticanalysis::StaticFeatures& statics) {
  return store_->PutProfile(job_key, profile, statics);
}

Result<PStorM::SubmissionOutcome> PStorM::SubmitJob(
    const jobs::BenchmarkJob& job, const mrsim::DataSetSpec& data,
    const mrsim::Configuration& submitted, uint64_t seed) {
  SubmissionOutcome outcome;

  // 1. One sample map task with profiling on: PStorM's only overhead.
  PSTORM_ASSIGN_OR_RETURN(
      profiler::ProfiledRun sample,
      profiler_.ProfileOneTask(job.spec, data, submitted, seed));
  outcome.sample_runtime_s = sample.run.runtime_s;

  // 2. Probe the store. A corrupt store must not fail the submission: a
  // wrong profile would mistune the job, but No Match Found merely costs
  // one profiled run (thesis §3) — so corruption degrades to the untuned
  // fallback path below instead of propagating.
  const staticanalysis::StaticFeatures statics =
      staticanalysis::ExtractStaticFeatures(job.program);
  const JobFeatureVector probe =
      BuildFeatureVector(sample.profile, statics);
  MultiStageMatcher matcher(store_.get(), options_.match);
  MatchResult match;
  if (Result<MatchResult> matched = matcher.Match(probe); matched.ok()) {
    match = std::move(matched).value();
  } else if (matched.status().IsCorruption()) {
    PSTORM_LOG(Warning) << "profile store corruption while matching; "
                        << "treating as No Match Found: "
                        << matched.status().ToString();
    match = MatchResult{};
  } else {
    return matched.status();
  }

  if (match.found) {
    // 3a. Tune with the returned profile; run with profiling off.
    outcome.matched = true;
    outcome.composite = match.composite;
    outcome.profile_source = match.composite
                                 ? match.map_source + "+" + match.reduce_source
                                 : match.map_source;
    optimizer::CostBasedOptimizer cbo(&engine_, options_.cbo);
    PSTORM_ASSIGN_OR_RETURN(auto recommendation,
                            cbo.Optimize(match.profile, data));
    outcome.config_used = recommendation.config;
    outcome.predicted_runtime_s = recommendation.predicted_runtime_s;
    mrsim::RunOptions run_options;
    run_options.seed = seed ^ 0x72756eULL;
    PSTORM_ASSIGN_OR_RETURN(
        mrsim::JobRunResult run,
        simulator_->RunJob(job.spec, data, recommendation.config,
                           run_options));
    outcome.runtime_s = run.runtime_s;
    return outcome;
  }

  // 3b. No Match Found: run with the submitted configuration, profiler
  // on, and keep the collected profile for the future.
  mrsim::RunOptions run_options;
  run_options.profiling_enabled = true;
  run_options.seed = seed ^ 0x72756eULL;
  PSTORM_ASSIGN_OR_RETURN(
      mrsim::JobRunResult run,
      simulator_->RunJob(job.spec, data, submitted, run_options));
  outcome.config_used = submitted;
  outcome.runtime_s = run.runtime_s;
  const profiler::ExecutionProfile collected =
      profiler::Profiler::ExtractProfile(run, job.spec.name, data, 1.0);
  if (Status stored = store_->PutProfile(job.spec.name + "@" + data.name,
                                         collected, statics);
      stored.ok()) {
    outcome.stored_new_profile = true;
  } else if (stored.IsCorruption()) {
    // The job itself ran fine; losing one profile to a sick store is the
    // cheaper outcome.
    PSTORM_LOG(Warning) << "profile store corruption while storing "
                        << job.spec.name << "@" << data.name
                        << "; profile dropped: " << stored.ToString();
  } else {
    return stored;
  }
  return outcome;
}

}  // namespace pstorm::core
