#include "core/pstorm.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace pstorm::core {

namespace {

obs::Counter& Submissions() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pstorm_submissions_total");
  return c;
}

obs::Counter& SubmissionsMatched() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_submissions_matched_total");
  return c;
}

obs::Counter& SubmissionsComposite() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_submissions_composite_total");
  return c;
}

obs::Counter& SubmissionsNoMatch() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_submissions_no_match_total");
  return c;
}

}  // namespace

PStorM::PStorM(const mrsim::Simulator* simulator,
               std::unique_ptr<ProfileStore> store, PStormOptions options)
    : simulator_(simulator),
      store_(std::move(store)),
      options_(options),
      profiler_(simulator),
      engine_(simulator->cluster()) {}

Result<std::unique_ptr<PStorM>> PStorM::Create(
    const mrsim::Simulator* simulator, storage::Env* env,
    std::string store_path, PStormOptions options) {
  PSTORM_CHECK(simulator != nullptr);
  PSTORM_ASSIGN_OR_RETURN(
      auto store,
      ProfileStore::Open(env, std::move(store_path), options.store));
  return std::unique_ptr<PStorM>(
      new PStorM(simulator, std::move(store), options));
}

Status PStorM::AddProfile(const std::string& job_key,
                          const profiler::ExecutionProfile& profile,
                          const staticanalysis::StaticFeatures& statics) {
  return store_->PutProfile(job_key, profile, statics);
}

Status PStorM::SampleAndProbe(SubmissionContext& ctx) const {
  // 1. One sample map task with profiling on: PStorM's only overhead.
  {
    obs::Span span(ctx.trace, "sample");
    PSTORM_ASSIGN_OR_RETURN(
        ctx.sample,
        profiler_.ProfileOneTask(ctx.job.spec, ctx.data, ctx.submitted,
                                 ctx.seed));
  }
  ctx.outcome.sample_runtime_s = ctx.sample.run.runtime_s;

  // 2. Probe the store. A corrupt store must not fail the submission: a
  // wrong profile would mistune the job, but No Match Found merely costs
  // one profiled run (thesis §3) — so corruption degrades to the untuned
  // fallback path instead of propagating.
  obs::Span span(ctx.trace, "match");
  ctx.statics = staticanalysis::ExtractStaticFeatures(ctx.job.program);
  const JobFeatureVector probe =
      BuildFeatureVector(ctx.sample.profile, ctx.statics);
  MultiStageMatcher matcher(store_.get(), options_.match);
  if (Result<MatchResult> matched = matcher.Match(probe, ctx.trace);
      matched.ok()) {
    ctx.match = std::move(matched).value();
  } else if (matched.status().IsCorruption()) {
    PSTORM_LOG(Warning) << "profile store corruption while matching; "
                        << "treating as No Match Found: "
                        << matched.status().ToString();
    ctx.match = MatchResult{};
  } else {
    return matched.status();
  }
  return Status::OK();
}

Status PStorM::RunTuned(SubmissionContext& ctx) const {
  // 3a. Tune with the returned profile; run with profiling off.
  ctx.outcome.matched = true;
  ctx.outcome.composite = ctx.match.composite;
  ctx.outcome.profile_source =
      ctx.match.composite ? ctx.match.map_source + "+" + ctx.match.reduce_source
                          : ctx.match.map_source;
  optimizer::CostBasedOptimizer cbo(&engine_, options_.cbo);
  optimizer::CostBasedOptimizer::Recommendation recommendation;
  {
    obs::Span span(ctx.trace, "cbo_optimize");
    PSTORM_ASSIGN_OR_RETURN(
        recommendation,
        cbo.Optimize(ctx.match.profile, ctx.data,
                     ctx.trace != nullptr ? &ctx.trace->cbo : nullptr));
  }
  ctx.outcome.config_used = recommendation.config;
  ctx.outcome.predicted_runtime_s = recommendation.predicted_runtime_s;
  mrsim::RunOptions run_options;
  run_options.seed = ctx.seed ^ 0x72756eULL;
  obs::Span span(ctx.trace, "run_tuned");
  PSTORM_ASSIGN_OR_RETURN(
      mrsim::JobRunResult run,
      simulator_->RunJob(ctx.job.spec, ctx.data, recommendation.config,
                         run_options));
  ctx.outcome.runtime_s = run.runtime_s;
  return Status::OK();
}

Status PStorM::RunUntunedAndStore(SubmissionContext& ctx) const {
  // 3b. No Match Found: run with the submitted configuration, profiler
  // on, and keep the collected profile for the future.
  obs::Span span(ctx.trace, "run_untuned_and_store");
  mrsim::RunOptions run_options;
  run_options.profiling_enabled = true;
  run_options.seed = ctx.seed ^ 0x72756eULL;
  PSTORM_ASSIGN_OR_RETURN(
      mrsim::JobRunResult run,
      simulator_->RunJob(ctx.job.spec, ctx.data, ctx.submitted, run_options));
  ctx.outcome.config_used = ctx.submitted;
  ctx.outcome.runtime_s = run.runtime_s;
  const profiler::ExecutionProfile collected = profiler::Profiler::
      ExtractProfile(run, ctx.job.spec.name, ctx.data, 1.0);
  const std::string job_key = ctx.job.spec.name + "@" + ctx.data.name;
  if (Status stored = store_->PutProfile(job_key, collected, ctx.statics);
      stored.ok()) {
    ctx.outcome.stored_new_profile = true;
    if (ctx.trace != nullptr) ++ctx.trace->store.profiles_put;
  } else if (stored.IsCorruption()) {
    // The job itself ran fine; losing one profile to a sick store is the
    // cheaper outcome.
    PSTORM_LOG(Warning) << "profile store corruption while storing "
                        << job_key << "; profile dropped: "
                        << stored.ToString();
  } else if (stored.code() == StatusCode::kFailedPrecondition) {
    // Read-only replica store: jobs submitted against a warm standby are
    // still matched and tuned from the replicated profiles; only the
    // write-back is skipped (it belongs on the primary).
    PSTORM_LOG(Info) << "profile store is read-only; profile for "
                     << job_key << " not stored: " << stored.ToString();
  } else {
    return stored;
  }
  return Status::OK();
}

Result<PStorM::SubmissionOutcome> PStorM::SubmitJob(
    const jobs::BenchmarkJob& job, const mrsim::DataSetSpec& data,
    const mrsim::Configuration& submitted, uint64_t seed,
    obs::SubmissionTrace* trace) const {
  static obs::Histogram& submit_micros =
      obs::MetricsRegistry::Global().GetHistogram("pstorm_submit_micros");
  obs::ScopedTimer submit_timer(&submit_micros);
  Submissions().Increment();
  SubmissionContext ctx{job, data, submitted, seed, {}, {}, {}, {}, trace};
  if (trace != nullptr) {
    trace->job_key = job.spec.name + "@" + data.name;
  }
  PSTORM_RETURN_IF_ERROR(SampleAndProbe(ctx));
  if (ctx.match.found) {
    SubmissionsMatched().Increment();
    if (ctx.match.composite) SubmissionsComposite().Increment();
    PSTORM_RETURN_IF_ERROR(RunTuned(ctx));
  } else {
    SubmissionsNoMatch().Increment();
    PSTORM_RETURN_IF_ERROR(RunUntunedAndStore(ctx));
  }
  return std::move(ctx.outcome);
}

}  // namespace pstorm::core
