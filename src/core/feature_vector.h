#ifndef PSTORM_CORE_FEATURE_VECTOR_H_
#define PSTORM_CORE_FEATURE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/profile.h"
#include "staticanalysis/features.h"

namespace pstorm::core {

/// The probe PStorM builds for a submitted MR job: dynamic features from a
/// 1-task sample profile plus static features from the job's "bytecode"
/// (thesis §4.1), split into the map side and the reduce side so the two
/// matching passes of Figure 4.4 can run independently.
struct JobFeatureVector {
  std::string job_name;
  /// Size of the input data set of the submission (tie-break feature).
  double input_data_bytes = 0;

  // Map side.
  std::vector<double> map_dynamic;              // Table 4.1 map-side (4).
  std::vector<double> map_costs;                // Table 4.2 map-side (5).
  std::vector<std::string> map_categorical;     // Table 4.3 map-side (7).
  staticanalysis::Cfg map_cfg;

  // Reduce side.
  std::vector<double> reduce_dynamic;           // Table 4.1 reduce-side (2).
  std::vector<double> reduce_costs;             // Table 4.2 reduce-side (4).
  std::vector<std::string> reduce_categorical;  // Table 4.3 reduce-side (4).
  staticanalysis::Cfg reduce_cfg;

  // §7.2 extension features (consumed only when the corresponding
  // MatchOptions flags are set).
  std::string user_params;
  std::vector<std::string> map_calls;
  std::vector<std::string> reduce_calls;
};

/// Assembles the probe from a (sample) profile and the statically
/// extracted features of the submitted job.
JobFeatureVector BuildFeatureVector(
    const profiler::ExecutionProfile& sample_profile,
    const staticanalysis::StaticFeatures& statics);

/// A contiguous dimension-major (structure-of-arrays) batch of
/// equal-length feature vectors: `columns[d][i]` is dimension d of member
/// i. The layout feeds the branch-free batched distance kernels below —
/// the inner loop walks one contiguous column instead of hopping between
/// heap-allocated per-member vectors.
struct SoaBatch {
  explicit SoaBatch(size_t dims = 0) : columns(dims) {}

  size_t dims() const { return columns.size(); }
  size_t size() const { return columns.empty() ? 0 : columns[0].size(); }

  void Reserve(size_t n);
  /// Appends one member; `values.size()` must equal dims(). Returns its
  /// row index.
  size_t Append(const std::vector<double>& values);
  /// Overwrites row `i` in place.
  void Assign(size_t i, const std::vector<double>& values);
  /// One member back as a plain vector (tests/diagnostics).
  std::vector<double> Row(size_t i) const;

  std::vector<std::vector<double>> columns;
};

/// Branch-free batched similarity kernel: for every row index in `rows`,
/// the normalized Euclidean distance between that member and
/// `normalized_probe`, written to `out` (resized to rows.size()).
///
/// Replays the scalar filter's arithmetic exactly — per dimension
/// `(v - min) / range`, the squared differences summed in dimension
/// order, then sqrt — so a comparison of the result against a threshold
/// agrees with FeatureBounds::Normalize + EuclideanDistance on the same
/// values. The accumulation runs dimension-outer over contiguous columns
/// with no per-element branches.
void BatchNormalizedDistances(const SoaBatch& batch,
                              const std::vector<uint32_t>& rows,
                              const std::vector<double>& mins,
                              const std::vector<double>& ranges,
                              const std::vector<double>& normalized_probe,
                              std::vector<double>* out);

/// Effective normalization ranges of the given bounds: the denominator
/// FeatureBounds::Normalize divides by, including its degenerate-range
/// guard. Exposed so the vectorized kernels normalize bit-identically to
/// the scalar path.
std::vector<double> EffectiveRanges(const std::vector<double>& mins,
                                    const std::vector<double>& maxs);

}  // namespace pstorm::core

#endif  // PSTORM_CORE_FEATURE_VECTOR_H_
