#ifndef PSTORM_CORE_FEATURE_VECTOR_H_
#define PSTORM_CORE_FEATURE_VECTOR_H_

#include <string>
#include <vector>

#include "profiler/profile.h"
#include "staticanalysis/features.h"

namespace pstorm::core {

/// The probe PStorM builds for a submitted MR job: dynamic features from a
/// 1-task sample profile plus static features from the job's "bytecode"
/// (thesis §4.1), split into the map side and the reduce side so the two
/// matching passes of Figure 4.4 can run independently.
struct JobFeatureVector {
  std::string job_name;
  /// Size of the input data set of the submission (tie-break feature).
  double input_data_bytes = 0;

  // Map side.
  std::vector<double> map_dynamic;              // Table 4.1 map-side (4).
  std::vector<double> map_costs;                // Table 4.2 map-side (5).
  std::vector<std::string> map_categorical;     // Table 4.3 map-side (7).
  staticanalysis::Cfg map_cfg;

  // Reduce side.
  std::vector<double> reduce_dynamic;           // Table 4.1 reduce-side (2).
  std::vector<double> reduce_costs;             // Table 4.2 reduce-side (4).
  std::vector<std::string> reduce_categorical;  // Table 4.3 reduce-side (4).
  staticanalysis::Cfg reduce_cfg;

  // §7.2 extension features (consumed only when the corresponding
  // MatchOptions flags are set).
  std::string user_params;
  std::vector<std::string> map_calls;
  std::vector<std::string> reduce_calls;
};

/// Assembles the probe from a (sample) profile and the statically
/// extracted features of the submitted job.
JobFeatureVector BuildFeatureVector(
    const profiler::ExecutionProfile& sample_profile,
    const staticanalysis::StaticFeatures& statics);

}  // namespace pstorm::core

#endif  // PSTORM_CORE_FEATURE_VECTOR_H_
