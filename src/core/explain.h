#ifndef PSTORM_CORE_EXPLAIN_H_
#define PSTORM_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "profiler/profile.h"
#include "staticanalysis/features.h"

namespace pstorm::core {

/// One explanation for a performance difference between two jobs: which
/// metric diverged, by how much, and — where the static features identify
/// a cause — why.
struct Explanation {
  /// Metric that diverged, e.g. "reduce: shuffle time/task".
  std::string metric;
  double value_a = 0;
  double value_b = 0;
  /// Relative divergence |a-b| / mean(a,b), used for ranking.
  double divergence = 0;
  /// Human-readable causal hint from the static features, when one
  /// applies ("different input formatters", "map CFGs differ", ...).
  std::string cause;
};

struct ExplainOptions {
  /// Report metrics whose relative divergence is at least this much.
  double min_divergence = 0.25;
  /// At most this many explanations, strongest first.
  size_t max_explanations = 8;
};

/// A PerfXplain-style explainer (thesis §2.3.2 / §7.2.4) over PStorM's
/// profiles: given two jobs' execution profiles and static features, it
/// ranks the diverging performance metrics and annotates them with causes
/// the static features can attest — explanations PerfXplain alone cannot
/// produce, because it only sees dynamic logs.
std::vector<Explanation> ExplainPerformanceDifference(
    const profiler::ExecutionProfile& profile_a,
    const staticanalysis::StaticFeatures& statics_a,
    const profiler::ExecutionProfile& profile_b,
    const staticanalysis::StaticFeatures& statics_b,
    ExplainOptions options = {});

/// Renders explanations as a short report ("A" / "B" name the jobs).
std::string RenderExplanations(const std::string& job_a,
                               const std::string& job_b,
                               const std::vector<Explanation>& explanations);

}  // namespace pstorm::core

#endif  // PSTORM_CORE_EXPLAIN_H_
