#include "profiler/profile.h"

#include <cstdio>
#include <map>

#include "common/strings.h"

namespace pstorm::profiler {

std::vector<double> MapSideProfile::DynamicVector() const {
  return {size_selectivity, pairs_selectivity, combine_size_selectivity,
          combine_pairs_selectivity};
}

std::vector<double> MapSideProfile::CostVector() const {
  return {read_hdfs_io_cost, read_local_io_cost, write_local_io_cost,
          map_cpu_cost, combine_cpu_cost};
}

std::vector<double> ReduceSideProfile::DynamicVector() const {
  return {size_selectivity, pairs_selectivity};
}

std::vector<double> ReduceSideProfile::CostVector() const {
  return {write_hdfs_io_cost, read_local_io_cost, write_local_io_cost,
          reduce_cpu_cost};
}

std::vector<double> ExecutionProfile::DynamicVector() const {
  return {map_side.size_selectivity,
          map_side.pairs_selectivity,
          map_side.combine_size_selectivity,
          map_side.combine_pairs_selectivity,
          reduce_side.size_selectivity,
          reduce_side.pairs_selectivity};
}

std::vector<double> ExecutionProfile::CostVector() const {
  return {map_side.read_hdfs_io_cost,
          reduce_side.write_hdfs_io_cost,
          0.5 * (map_side.read_local_io_cost +
                 reduce_side.read_local_io_cost),
          0.5 * (map_side.write_local_io_cost +
                 reduce_side.write_local_io_cost),
          map_side.map_cpu_cost,
          reduce_side.reduce_cpu_cost,
          map_side.combine_cpu_cost};
}

const std::vector<std::string>& DynamicFeatureNames() {
  static const auto* kNames = new std::vector<std::string>{
      "MAP_SIZE_SEL",     "MAP_PAIRS_SEL", "COMBINE_SIZE_SEL",
      "COMBINE_PAIRS_SEL", "RED_SIZE_SEL",  "RED_PAIRS_SEL"};
  return *kNames;
}

const std::vector<std::string>& CostFactorNames() {
  static const auto* kNames = new std::vector<std::string>{
      "READ_HDFS_IO_COST", "WRITE_HDFS_IO_COST", "READ_LOCAL_IO_COST",
      "WRITE_LOCAL_IO_COST", "MAP_CPU_COST", "REDUCE_CPU_COST",
      "COMBINE_CPU_COST"};
  return *kNames;
}

namespace {

void AppendField(std::string* out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += key;
  *out += "=";
  *out += buf;
  *out += "\n";
}

void AppendField(std::string* out, const char* key, const std::string& value) {
  *out += key;
  *out += "=";
  *out += value;
  *out += "\n";
}

class FieldReader {
 public:
  explicit FieldReader(const std::string& text) {
    for (const std::string& line : StrSplit(text, '\n')) {
      if (line.empty()) continue;
      const size_t eq = line.find('=');
      if (eq == std::string::npos) {
        status_ = Status::Corruption("bad profile line: " + line);
        return;
      }
      fields_[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }

  const Status& status() const { return status_; }

  std::string GetString(const char* key) {
    auto it = fields_.find(key);
    if (it == fields_.end()) {
      status_ = Status::Corruption(std::string("missing field: ") + key);
      return "";
    }
    return it->second;
  }

  double GetDouble(const char* key) {
    const std::string raw = GetString(key);
    if (!status_.ok()) return 0;
    char* end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0') {
      status_ = Status::Corruption(std::string("bad number for ") + key);
      return 0;
    }
    return value;
  }

  int GetInt(const char* key) { return static_cast<int>(GetDouble(key)); }

 private:
  std::map<std::string, std::string> fields_;
  Status status_;
};

}  // namespace

std::string ExecutionProfile::Serialize() const {
  std::string out;
  AppendField(&out, "job_name", job_name);
  AppendField(&out, "data_set", data_set);
  AppendField(&out, "input_data_bytes", input_data_bytes);
  AppendField(&out, "is_sample", is_sample ? 1.0 : 0.0);
  AppendField(&out, "sampling_fraction", sampling_fraction);

  const MapSideProfile& m = map_side;
  AppendField(&out, "m.num_tasks", m.num_tasks);
  AppendField(&out, "m.input_bytes", m.input_bytes);
  AppendField(&out, "m.input_records", m.input_records);
  AppendField(&out, "m.output_bytes", m.output_bytes);
  AppendField(&out, "m.output_records", m.output_records);
  AppendField(&out, "m.final_output_bytes", m.final_output_bytes);
  AppendField(&out, "m.final_output_records", m.final_output_records);
  AppendField(&out, "m.size_sel", m.size_selectivity);
  AppendField(&out, "m.pairs_sel", m.pairs_selectivity);
  AppendField(&out, "m.combine_size_sel", m.combine_size_selectivity);
  AppendField(&out, "m.combine_pairs_sel", m.combine_pairs_selectivity);
  AppendField(&out, "m.read_hdfs", m.read_hdfs_io_cost);
  AppendField(&out, "m.read_local", m.read_local_io_cost);
  AppendField(&out, "m.write_local", m.write_local_io_cost);
  AppendField(&out, "m.map_cpu", m.map_cpu_cost);
  AppendField(&out, "m.combine_cpu", m.combine_cpu_cost);
  AppendField(&out, "m.read_s", m.read_s);
  AppendField(&out, "m.map_s", m.map_s);
  AppendField(&out, "m.collect_s", m.collect_s);
  AppendField(&out, "m.spill_s", m.spill_s);
  AppendField(&out, "m.merge_s", m.merge_s);
  AppendField(&out, "m.map_cpu_cv", m.map_cpu_cost_cv);
  AppendField(&out, "m.inter_compress_ratio", m.intermediate_compress_ratio);

  const ReduceSideProfile& r = reduce_side;
  AppendField(&out, "r.num_tasks", r.num_tasks);
  AppendField(&out, "r.input_bytes", r.input_bytes);
  AppendField(&out, "r.input_records", r.input_records);
  AppendField(&out, "r.output_bytes", r.output_bytes);
  AppendField(&out, "r.output_records", r.output_records);
  AppendField(&out, "r.size_sel", r.size_selectivity);
  AppendField(&out, "r.pairs_sel", r.pairs_selectivity);
  AppendField(&out, "r.write_hdfs", r.write_hdfs_io_cost);
  AppendField(&out, "r.read_local", r.read_local_io_cost);
  AppendField(&out, "r.write_local", r.write_local_io_cost);
  AppendField(&out, "r.reduce_cpu", r.reduce_cpu_cost);
  AppendField(&out, "r.shuffle_s", r.shuffle_s);
  AppendField(&out, "r.sort_s", r.sort_s);
  AppendField(&out, "r.reduce_s", r.reduce_s);
  AppendField(&out, "r.write_s", r.write_s);
  AppendField(&out, "r.output_compress_ratio", r.output_compress_ratio);
  return out;
}

Result<ExecutionProfile> ExecutionProfile::Parse(const std::string& text) {
  FieldReader reader(text);
  ExecutionProfile p;
  p.job_name = reader.GetString("job_name");
  p.data_set = reader.GetString("data_set");
  p.input_data_bytes = reader.GetDouble("input_data_bytes");
  p.is_sample = reader.GetDouble("is_sample") != 0.0;
  p.sampling_fraction = reader.GetDouble("sampling_fraction");

  MapSideProfile& m = p.map_side;
  m.num_tasks = reader.GetInt("m.num_tasks");
  m.input_bytes = reader.GetDouble("m.input_bytes");
  m.input_records = reader.GetDouble("m.input_records");
  m.output_bytes = reader.GetDouble("m.output_bytes");
  m.output_records = reader.GetDouble("m.output_records");
  m.final_output_bytes = reader.GetDouble("m.final_output_bytes");
  m.final_output_records = reader.GetDouble("m.final_output_records");
  m.size_selectivity = reader.GetDouble("m.size_sel");
  m.pairs_selectivity = reader.GetDouble("m.pairs_sel");
  m.combine_size_selectivity = reader.GetDouble("m.combine_size_sel");
  m.combine_pairs_selectivity = reader.GetDouble("m.combine_pairs_sel");
  m.read_hdfs_io_cost = reader.GetDouble("m.read_hdfs");
  m.read_local_io_cost = reader.GetDouble("m.read_local");
  m.write_local_io_cost = reader.GetDouble("m.write_local");
  m.map_cpu_cost = reader.GetDouble("m.map_cpu");
  m.combine_cpu_cost = reader.GetDouble("m.combine_cpu");
  m.read_s = reader.GetDouble("m.read_s");
  m.map_s = reader.GetDouble("m.map_s");
  m.collect_s = reader.GetDouble("m.collect_s");
  m.spill_s = reader.GetDouble("m.spill_s");
  m.merge_s = reader.GetDouble("m.merge_s");
  m.map_cpu_cost_cv = reader.GetDouble("m.map_cpu_cv");
  m.intermediate_compress_ratio = reader.GetDouble("m.inter_compress_ratio");

  ReduceSideProfile& r = p.reduce_side;
  r.num_tasks = reader.GetInt("r.num_tasks");
  r.input_bytes = reader.GetDouble("r.input_bytes");
  r.input_records = reader.GetDouble("r.input_records");
  r.output_bytes = reader.GetDouble("r.output_bytes");
  r.output_records = reader.GetDouble("r.output_records");
  r.size_selectivity = reader.GetDouble("r.size_sel");
  r.pairs_selectivity = reader.GetDouble("r.pairs_sel");
  r.write_hdfs_io_cost = reader.GetDouble("r.write_hdfs");
  r.read_local_io_cost = reader.GetDouble("r.read_local");
  r.write_local_io_cost = reader.GetDouble("r.write_local");
  r.reduce_cpu_cost = reader.GetDouble("r.reduce_cpu");
  r.shuffle_s = reader.GetDouble("r.shuffle_s");
  r.sort_s = reader.GetDouble("r.sort_s");
  r.reduce_s = reader.GetDouble("r.reduce_s");
  r.write_s = reader.GetDouble("r.write_s");
  r.output_compress_ratio = reader.GetDouble("r.output_compress_ratio");

  if (!reader.status().ok()) return reader.status();
  return p;
}

}  // namespace pstorm::profiler
