#include "profiler/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/statistics.h"

namespace pstorm::profiler {

namespace {
constexpr double kSToNs = 1e9;

double SafeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

Profiler::Profiler(const mrsim::Simulator* simulator)
    : simulator_(simulator) {
  PSTORM_CHECK(simulator != nullptr);
}

ExecutionProfile Profiler::ExtractProfile(const mrsim::JobRunResult& run,
                                          const std::string& job_name,
                                          const mrsim::DataSetSpec& data,
                                          double sampling_fraction) {
  ExecutionProfile profile;
  profile.job_name = job_name;
  profile.data_set = data.name;
  profile.input_data_bytes = static_cast<double>(data.size_bytes);
  profile.sampling_fraction = sampling_fraction;
  profile.is_sample = sampling_fraction < 1.0;

  // ---- Map side -----------------------------------------------------
  MapSideProfile& m = profile.map_side;
  m.num_tasks = static_cast<int>(run.map_tasks.size());
  double read_s_total = 0, map_s_total = 0, collect_s_total = 0,
         spill_s_total = 0, merge_s_total = 0;
  double spill_write_s_total = 0, spilled_bytes_total = 0;
  double merge_read_s_total = 0, merge_io_bytes_total = 0;
  double combine_cpu_s_total = 0, combine_in_records_total = 0;
  double combine_out_records = 0, combine_out_bytes = 0;
  double wire_bytes_total = 0;
  bool any_combining = false;
  RunningStat map_cpu_cost_stat;

  for (const mrsim::MapTaskResult& task : run.map_tasks) {
    const mrsim::MapTaskOutcome& o = task.outcome;
    m.input_bytes += task.input_bytes;
    m.input_records += task.input_records;
    m.output_bytes += o.map_output_bytes;
    m.output_records += o.map_output_records;
    m.final_output_bytes += o.final_output_uncompressed_bytes;
    m.final_output_records += o.final_output_records;
    read_s_total += o.read_s;
    map_s_total += o.map_s;
    collect_s_total += o.collect_s;
    spill_s_total += o.spill_s;
    merge_s_total += o.merge_s;
    spill_write_s_total += o.spill_write_s;
    spilled_bytes_total += o.spilled_bytes;
    merge_read_s_total += o.merge_read_s;
    merge_io_bytes_total += o.merge_io_bytes;
    combine_cpu_s_total += o.combine_cpu_s;
    combine_in_records_total += o.combine_input_records;
    wire_bytes_total += o.final_output_wire_bytes;
    if (o.combine_input_records > 0) {
      any_combining = true;
      combine_out_records += o.final_output_records;
      combine_out_bytes += o.final_output_uncompressed_bytes;
    }
    map_cpu_cost_stat.Add(SafeRatio(o.map_s * kSToNs, task.input_records));
  }

  m.size_selectivity = SafeRatio(m.output_bytes, m.input_bytes);
  m.pairs_selectivity = SafeRatio(m.output_records, m.input_records);
  if (any_combining) {
    m.combine_size_selectivity = SafeRatio(combine_out_bytes, m.output_bytes);
    m.combine_pairs_selectivity =
        SafeRatio(combine_out_records, m.output_records);
  }

  m.read_hdfs_io_cost = SafeRatio(read_s_total * kSToNs, m.input_bytes);
  m.write_local_io_cost =
      SafeRatio(spill_write_s_total * kSToNs, spilled_bytes_total);
  // When the map side never merged, no local reads were observed; report
  // the write-side cost scaled by the canonical read/write ratio so the
  // what-if engine still has a usable estimate.
  m.read_local_io_cost =
      merge_io_bytes_total > 0
          ? SafeRatio(merge_read_s_total * kSToNs, merge_io_bytes_total)
          : m.write_local_io_cost * 0.85;
  m.map_cpu_cost = SafeRatio(map_s_total * kSToNs, m.input_records);
  m.combine_cpu_cost =
      SafeRatio(combine_cpu_s_total * kSToNs, combine_in_records_total);
  m.map_cpu_cost_cv = map_cpu_cost_stat.cv();
  if (run.config.compress_map_output && m.final_output_bytes > 0) {
    m.intermediate_compress_ratio =
        wire_bytes_total / m.final_output_bytes;
  }

  const double n_map = std::max<double>(1.0, m.num_tasks);
  m.read_s = read_s_total / n_map;
  m.map_s = map_s_total / n_map;
  m.collect_s = collect_s_total / n_map;
  m.spill_s = spill_s_total / n_map;
  m.merge_s = merge_s_total / n_map;

  // ---- Reduce side ----------------------------------------------------
  ReduceSideProfile& r = profile.reduce_side;
  r.num_tasks = static_cast<int>(run.reduce_tasks.size());
  double shuffle_s_total = 0, sort_s_total = 0, reduce_s_total = 0,
         write_s_total = 0;
  double reduce_cpu_s_total = 0, write_bytes_total = 0;
  double output_uncompressed_total = 0;
  double local_read_s_total = 0, local_read_bytes_total = 0;
  double local_write_s_total = 0, local_write_bytes_total = 0;

  for (const mrsim::ReduceTaskResult& task : run.reduce_tasks) {
    const mrsim::ReduceTaskOutcome& o = task.outcome;
    r.input_bytes += task.input_uncompressed_bytes;
    r.input_records += task.input_records;
    r.output_bytes += o.output_uncompressed_bytes;  // Logical size.
    r.output_records += o.output_records;
    output_uncompressed_total += o.output_uncompressed_bytes;
    shuffle_s_total += o.shuffle_s;
    sort_s_total += o.merge_s;
    reduce_s_total += o.reduce_s;
    write_s_total += o.write_s;
    reduce_cpu_s_total += o.reduce_cpu_s;
    write_bytes_total += o.output_bytes;  // Written (possibly compressed).
    local_read_s_total += o.merge_read_s + o.reduce_read_s;
    local_read_bytes_total += o.merge_io_bytes + o.shuffle_disk_bytes;
    local_write_s_total += o.shuffle_disk_write_s + o.merge_write_s;
    local_write_bytes_total += o.shuffle_disk_bytes + o.merge_io_bytes;
  }

  r.size_selectivity = SafeRatio(r.output_bytes, r.input_bytes);
  r.pairs_selectivity = SafeRatio(r.output_records, r.input_records);
  r.write_hdfs_io_cost = SafeRatio(write_s_total * kSToNs, write_bytes_total);
  r.read_local_io_cost =
      SafeRatio(local_read_s_total * kSToNs, local_read_bytes_total);
  r.write_local_io_cost =
      SafeRatio(local_write_s_total * kSToNs, local_write_bytes_total);
  r.reduce_cpu_cost = SafeRatio(reduce_cpu_s_total * kSToNs, r.input_records);
  if (run.config.compress_output && output_uncompressed_total > 0) {
    // Written bytes vs the logical (uncompressed) output size.
    r.output_compress_ratio =
        write_bytes_total / output_uncompressed_total;
  }

  const double n_red = std::max<double>(1.0, r.num_tasks);
  r.shuffle_s = shuffle_s_total / n_red;
  r.sort_s = sort_s_total / n_red;
  r.reduce_s = reduce_s_total / n_red;
  r.write_s = write_s_total / n_red;

  // Starfish sample profiles are *estimated job profiles*: totals observed
  // over the sampled tasks are extrapolated to the whole job (rates,
  // selectivities, and per-task timings need no scaling).
  if (profile.is_sample && sampling_fraction > 0) {
    const double scale = 1.0 / sampling_fraction;
    m.input_bytes *= scale;
    m.input_records *= scale;
    m.output_bytes *= scale;
    m.output_records *= scale;
    m.final_output_bytes *= scale;
    m.final_output_records *= scale;
    r.input_bytes *= scale;
    r.input_records *= scale;
    r.output_bytes *= scale;
    r.output_records *= scale;
  }

  return profile;
}

Result<ProfiledRun> Profiler::ProfileFullRun(
    const mrsim::JobSpec& job, const mrsim::DataSetSpec& data,
    const mrsim::Configuration& config, uint64_t seed) const {
  mrsim::RunOptions options;
  options.profiling_enabled = true;
  options.seed = seed;
  PSTORM_ASSIGN_OR_RETURN(mrsim::JobRunResult run,
                          simulator_->RunJob(job, data, config, options));
  ProfiledRun out{ExtractProfile(run, job.name, data, 1.0), std::move(run)};
  return out;
}

Result<ProfiledRun> Profiler::ProfileSample(const mrsim::JobSpec& job,
                                            const mrsim::DataSetSpec& data,
                                            const mrsim::Configuration& config,
                                            double fraction,
                                            uint64_t seed) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sampling fraction must be in (0,1]");
  }
  const uint64_t total = data.num_splits();
  if (total == 0) return Status::InvalidArgument("no input splits");
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(fraction * static_cast<double>(total)));

  Rng rng(seed ^ 0x70726f66ULL);  // Distinct stream from the run noise.
  mrsim::RunOptions options;
  options.split_subset = rng.SampleWithoutReplacement(total, k);
  options.profiling_enabled = true;
  options.seed = seed;
  PSTORM_ASSIGN_OR_RETURN(mrsim::JobRunResult run,
                          simulator_->RunJob(job, data, config, options));
  const double actual_fraction =
      static_cast<double>(k) / static_cast<double>(total);
  ProfiledRun out{ExtractProfile(run, job.name, data, actual_fraction),
                  std::move(run)};
  return out;
}

Result<ProfiledRun> Profiler::ProfileOneTask(const mrsim::JobSpec& job,
                                             const mrsim::DataSetSpec& data,
                                             const mrsim::Configuration& config,
                                             uint64_t seed) const {
  const uint64_t total = data.num_splits();
  if (total == 0) return Status::InvalidArgument("no input splits");
  return ProfileSample(
      job, data, config,
      std::min(1.0, 1.0 / static_cast<double>(total) + 1e-12), seed);
}

}  // namespace pstorm::profiler
