#ifndef PSTORM_PROFILER_PROFILER_H_
#define PSTORM_PROFILER_PROFILER_H_

#include <cstdint>

#include "common/result.h"
#include "mrsim/simulator.h"
#include "profiler/profile.h"

namespace pstorm::profiler {

/// A profiled (simulated) run: the extracted profile plus the raw run, so
/// callers can account for profiling overhead (Figure 4.1).
struct ProfiledRun {
  ExecutionProfile profile;
  mrsim::JobRunResult run;
};

/// The Starfish profiler + sampler stand-in. Attaches "instrumentation"
/// (a run-time slowdown) to a simulated job run and aggregates per-task
/// observations into an ExecutionProfile. Sampling follows the Starfish
/// sampler: run only k randomly selected map tasks plus the reducers over
/// their output.
class Profiler {
 public:
  /// `simulator` must outlive the profiler.
  explicit Profiler(const mrsim::Simulator* simulator);

  /// Profiles a complete run (every map task instrumented).
  Result<ProfiledRun> ProfileFullRun(const mrsim::JobSpec& job,
                                     const mrsim::DataSetSpec& data,
                                     const mrsim::Configuration& config,
                                     uint64_t seed) const;

  /// Profiles a random sample of `fraction` of the map tasks (at least
  /// one). The Starfish rule of thumb is fraction = 0.1.
  Result<ProfiledRun> ProfileSample(const mrsim::JobSpec& job,
                                    const mrsim::DataSetSpec& data,
                                    const mrsim::Configuration& config,
                                    double fraction, uint64_t seed) const;

  /// Profiles exactly one random map task plus its reducers — the cheap
  /// sample PStorM uses to build a probe feature vector (thesis §3).
  Result<ProfiledRun> ProfileOneTask(const mrsim::JobSpec& job,
                                     const mrsim::DataSetSpec& data,
                                     const mrsim::Configuration& config,
                                     uint64_t seed) const;

  /// Builds an ExecutionProfile from an already-simulated run. Exposed so
  /// tests and the what-if engine can profile arbitrary runs.
  static ExecutionProfile ExtractProfile(const mrsim::JobRunResult& run,
                                         const std::string& job_name,
                                         const mrsim::DataSetSpec& data,
                                         double sampling_fraction);

 private:
  const mrsim::Simulator* simulator_;
};

}  // namespace pstorm::profiler

#endif  // PSTORM_PROFILER_PROFILER_H_
