#ifndef PSTORM_PROFILER_PROFILE_H_
#define PSTORM_PROFILER_PROFILE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pstorm::profiler {

/// The map-side half of an execution profile: data-flow statistics
/// (Table 4.1), cost factors (Table 4.2) and per-phase timings, aggregated
/// over the profiled map tasks. Kept separable from the reduce side so the
/// matcher can stitch a *composite* profile from two jobs (thesis §4.3).
struct MapSideProfile {
  int num_tasks = 0;

  // Totals across profiled tasks.
  double input_bytes = 0;
  double input_records = 0;
  double output_bytes = 0;    // Emitted by the map function (pre-combine).
  double output_records = 0;
  double final_output_bytes = 0;  // After combine, uncompressed.
  double final_output_records = 0;

  // Data-flow statistics (Table 4.1, map side).
  double size_selectivity = 1.0;          // MAP_SIZE_SEL
  double pairs_selectivity = 1.0;         // MAP_PAIRS_SEL
  double combine_size_selectivity = 1.0;  // COMBINE_SIZE_SEL (1 = no-op)
  double combine_pairs_selectivity = 1.0; // COMBINE_PAIRS_SEL

  // Cost factors (Table 4.2, map side), ns per byte / per record.
  double read_hdfs_io_cost = 0;   // READ_HDFS_IO_COST
  double read_local_io_cost = 0;  // READ_LOCAL_IO_COST
  double write_local_io_cost = 0; // WRITE_LOCAL_IO_COST
  double map_cpu_cost = 0;        // MAP_CPU_COST
  double combine_cpu_cost = 0;    // COMBINE_CPU_COST

  // Mean per-task phase timings, seconds (Figures 4.3/4.5).
  double read_s = 0;
  double map_s = 0;
  double collect_s = 0;
  double spill_s = 0;
  double merge_s = 0;

  /// Coefficient of variation of MAP_CPU_COST across tasks — the §4.1.1
  /// evidence that cost factors are noisy.
  double map_cpu_cost_cv = 0;

  /// Compression ratio of the intermediate data: measured when the
  /// profiled run compressed map output, otherwise a conservative default
  /// estimate the what-if engine can still use.
  double intermediate_compress_ratio = 0.40;

  /// The four map-side dynamic features, Table 4.1 order.
  std::vector<double> DynamicVector() const;
  /// The five map-side cost factors, Table 4.2 order.
  std::vector<double> CostVector() const;
};

/// The reduce-side half of an execution profile.
struct ReduceSideProfile {
  int num_tasks = 0;

  double input_bytes = 0;  // Uncompressed shuffled bytes.
  double input_records = 0;
  double output_bytes = 0;
  double output_records = 0;

  // Data-flow statistics (Table 4.1, reduce side).
  double size_selectivity = 1.0;   // RED_SIZE_SEL
  double pairs_selectivity = 1.0;  // RED_PAIRS_SEL

  // Cost factors (Table 4.2, reduce side).
  double write_hdfs_io_cost = 0;
  double read_local_io_cost = 0;
  double write_local_io_cost = 0;
  double reduce_cpu_cost = 0;

  // Mean per-task phase timings, seconds (Figures 4.5/4.6).
  double shuffle_s = 0;
  double sort_s = 0;  // The reduce-side merge ("sort" in Hadoop's UI).
  double reduce_s = 0;
  double write_s = 0;

  /// Compression ratio of the job output (measured or default estimate).
  double output_compress_ratio = 0.45;

  /// The two reduce-side dynamic features, Table 4.1 order.
  std::vector<double> DynamicVector() const;
  /// The four reduce-side cost factors, Table 4.2 order.
  std::vector<double> CostVector() const;
};

/// A complete execution profile: what the Starfish profiler would emit for
/// one (possibly sampled) run of an MR job.
struct ExecutionProfile {
  /// Job that produced the profile; composite profiles carry both sources
  /// as "mapjob+reducejob".
  std::string job_name;
  std::string data_set;
  /// Size of the data set the profiled job ran over (the tie-breaking
  /// feature of the matcher, Figure 4.4).
  double input_data_bytes = 0;
  /// True when collected from a sampled subset of map tasks.
  bool is_sample = false;
  /// Fraction of map tasks profiled (1.0 for a complete profile).
  double sampling_fraction = 1.0;

  MapSideProfile map_side;
  ReduceSideProfile reduce_side;

  /// All six Table 4.1 statistics: map-side then reduce-side.
  std::vector<double> DynamicVector() const;
  /// All Table 4.2 cost factors in table order: READ_HDFS, WRITE_HDFS,
  /// READ_LOCAL (avg of sides), WRITE_LOCAL (avg), MAP_CPU, REDUCE_CPU,
  /// COMBINE_CPU.
  std::vector<double> CostVector() const;

  /// Key=value text encoding for the profile store; round-trips through
  /// Parse.
  std::string Serialize() const;
  static Result<ExecutionProfile> Parse(const std::string& text);
};

/// Names of the dynamic features in the order of DynamicVector().
const std::vector<std::string>& DynamicFeatureNames();
/// Names of the cost factors in the order of CostVector().
const std::vector<std::string>& CostFactorNames();

}  // namespace pstorm::profiler

#endif  // PSTORM_PROFILER_PROFILE_H_
