#ifndef PSTORM_ML_REGRESSION_TREE_H_
#define PSTORM_ML_REGRESSION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pstorm::ml {

/// Row-major feature matrix: samples[i] is one feature vector. All rows
/// must share a length.
using FeatureMatrix = std::vector<std::vector<double>>;

/// A CART-style regression tree fit by variance-reduction splitting.
/// The base learner of GradientBoostedTrees.
class RegressionTree {
 public:
  struct Options {
    /// Maximum depth ("interaction.depth" in gbm terms).
    int max_depth = 3;
    /// Minimum observations per leaf ("n.minobsinnode").
    int min_samples_leaf = 10;
  };

  /// Fits on the rows selected by `row_indices` (all rows when empty).
  /// `leaf_median = true` uses the median of leaf targets instead of the
  /// mean — the Laplace-loss terminal value.
  static Result<RegressionTree> Fit(const FeatureMatrix& x,
                                    const std::vector<double>& y,
                                    const std::vector<size_t>& row_indices,
                                    Options options, bool leaf_median = false);

  double Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;        // -1 marks a leaf.
    double threshold = 0.0;  // Go left when x[feature] <= threshold.
    double value = 0.0;      // Leaf prediction.
    int left = -1;
    int right = -1;
  };

  std::vector<Node> nodes_;
};

}  // namespace pstorm::ml

#endif  // PSTORM_ML_REGRESSION_TREE_H_
