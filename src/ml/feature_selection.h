#ifndef PSTORM_ML_FEATURE_SELECTION_H_
#define PSTORM_ML_FEATURE_SELECTION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "ml/regression_tree.h"

namespace pstorm::ml {

/// Information gain of a numerical feature for predicting class labels,
/// after equi-width binning into `num_bins` buckets: H(labels) -
/// H(labels | binned feature). The standard applied-ML feature-ranking
/// score the thesis compares against (§6.1.1).
double InformationGain(const std::vector<double>& feature_values,
                       const std::vector<int>& labels, int num_bins = 10);

/// Ranks feature columns of `x` by descending information gain against
/// `labels`. Returns column indices, best first.
Result<std::vector<size_t>> RankFeaturesByInformationGain(
    const FeatureMatrix& x, const std::vector<int>& labels,
    int num_bins = 10);

/// Information gain of a categorical feature (already mapped to category
/// ids): H(labels) - H(labels | category).
double InformationGainCategorical(const std::vector<int>& categories,
                                  const std::vector<int>& labels);

/// Nearest-neighbour index over min-max-normalized numerical vectors:
/// the matching rule of the P-features / SP-features baselines.
class NearestNeighborIndex {
 public:
  /// Adds a labelled vector. All vectors must share a dimension.
  Status Add(int id, std::vector<double> features);

  /// Id of the stored vector nearest to `query` under Euclidean distance
  /// in the min-max-normalized space; NotFound when empty.
  Result<int> Nearest(const std::vector<double>& query) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    int id;
    std::vector<double> features;
  };
  std::vector<Entry> entries_;
};

}  // namespace pstorm::ml

#endif  // PSTORM_ML_FEATURE_SELECTION_H_
