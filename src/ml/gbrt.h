#ifndef PSTORM_ML_GBRT_H_
#define PSTORM_ML_GBRT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/regression_tree.h"

namespace pstorm::ml {

/// Loss functions supported by the booster, mirroring the `distribution`
/// argument of R's gbm package used in thesis Appendix A.
enum class GbrtLoss { kGaussian, kLaplace };

/// Gradient Boosted Regression Trees, following the gbm semantics the
/// thesis configures (§6.1.2): shrinkage, bag fraction, train fraction,
/// interaction depth, n.minobsinnode, and cross-validated selection of the
/// best iteration count (gbm.perf with method="cv").
class GradientBoostedTrees {
 public:
  struct Options {
    GbrtLoss loss = GbrtLoss::kGaussian;
    int num_trees = 2000;
    double shrinkage = 0.005;
    /// Fraction of training rows bagged per tree.
    double bag_fraction = 0.5;
    /// Fraction of the data used for learning (the rest is held out and
    /// unused, as in gbm's train.fraction).
    double train_fraction = 0.5;
    int cv_folds = 10;
    int interaction_depth = 3;
    int min_obs_in_node = 10;
    uint64_t seed = 123;
  };

  /// Trains on (x, y); uses `options.cv_folds`-fold cross-validation over
  /// the training slice to choose the iteration count actually used for
  /// prediction.
  static Result<GradientBoostedTrees> Fit(const FeatureMatrix& x,
                                          const std::vector<double>& y,
                                          Options options);

  /// Predicts with the CV-selected number of trees.
  double Predict(const std::vector<double>& features) const;

  /// Continues boosting: drops the CV-rejected tree tail (every tree past
  /// best_iteration()), then fits `extra_trees` more trees against the
  /// residuals of the current model on (x, y) — typically the original
  /// training data plus the rows that arrived since. The incremental pass
  /// trains on every given row and skips cross-validation (all trees
  /// count toward prediction afterwards); callers that want a fresh CV
  /// selection run a full Fit instead — that is the bounded-staleness
  /// trade IncrementalGbrt manages.
  Status FitMore(const FeatureMatrix& x, const std::vector<double>& y,
                 int extra_trees, uint64_t seed);

  int best_iteration() const { return best_iteration_; }
  size_t num_trees_trained() const { return trees_.size(); }

 private:
  GradientBoostedTrees() = default;

  double initial_prediction_ = 0.0;
  double shrinkage_ = 0.0;
  int best_iteration_ = 0;
  std::vector<RegressionTree> trees_;
  Options options_;  // Kept for FitMore.
};

}  // namespace pstorm::ml

#endif  // PSTORM_ML_GBRT_H_
