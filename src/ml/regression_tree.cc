#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace pstorm::ml {

namespace {

double MeanOf(const std::vector<double>& y, const std::vector<size_t>& rows) {
  double sum = 0;
  for (size_t r : rows) sum += y[r];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

double MedianOf(const std::vector<double>& y, std::vector<size_t> rows) {
  PSTORM_CHECK(!rows.empty());
  std::sort(rows.begin(), rows.end(),
            [&y](size_t a, size_t b) { return y[a] < y[b]; });
  const size_t mid = rows.size() / 2;
  if (rows.size() % 2 == 1) return y[rows[mid]];
  return 0.5 * (y[rows[mid - 1]] + y[rows[mid]]);
}

/// Sum of squared deviations from the mean over the rows.
double Sse(const std::vector<double>& y, const std::vector<size_t>& rows) {
  const double mean = MeanOf(y, rows);
  double sse = 0;
  for (size_t r : rows) {
    const double d = y[r] - mean;
    sse += d * d;
  }
  return sse;
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  std::vector<size_t> left;
  std::vector<size_t> right;
};

}  // namespace

Result<RegressionTree> RegressionTree::Fit(
    const FeatureMatrix& x, const std::vector<double>& y,
    const std::vector<size_t>& row_indices, Options options,
    bool leaf_median) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("x and y must be non-empty, same length");
  }
  const size_t num_features = x[0].size();
  for (const auto& row : x) {
    if (row.size() != num_features) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  std::vector<size_t> rows = row_indices;
  if (rows.empty()) {
    rows.resize(x.size());
    std::iota(rows.begin(), rows.end(), 0);
  }
  for (size_t r : rows) {
    if (r >= x.size()) return Status::OutOfRange("row index out of range");
  }

  RegressionTree tree;

  // Recursive split with an explicit worklist (node id, rows, depth).
  struct Work {
    int node;
    std::vector<size_t> rows;
    int depth;
  };
  tree.nodes_.push_back(Node{});
  std::vector<Work> stack{{0, std::move(rows), 0}};

  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();
    Node& node = tree.nodes_[work.node];
    node.value = leaf_median ? MedianOf(y, work.rows) : MeanOf(y, work.rows);

    if (work.depth >= options.max_depth ||
        work.rows.size() <
            static_cast<size_t>(2 * options.min_samples_leaf)) {
      continue;  // Leaf.
    }

    const double parent_sse = Sse(y, work.rows);
    BestSplit best;
    for (size_t f = 0; f < num_features; ++f) {
      // Sort row ids by the feature and scan split positions.
      std::vector<size_t> sorted = work.rows;
      std::sort(sorted.begin(), sorted.end(), [&x, f](size_t a, size_t b) {
        return x[a][f] < x[b][f];
      });
      // Prefix sums for O(n) SSE evaluation.
      double left_sum = 0, left_sq = 0;
      double total_sum = 0, total_sq = 0;
      for (size_t r : sorted) {
        total_sum += y[r];
        total_sq += y[r] * y[r];
      }
      const double n = static_cast<double>(sorted.size());
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        const size_t r = sorted[i];
        left_sum += y[r];
        left_sq += y[r] * y[r];
        // Can't split between equal feature values.
        if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;
        const double nl = static_cast<double>(i + 1);
        const double nr = n - nl;
        if (nl < options.min_samples_leaf || nr < options.min_samples_leaf) {
          continue;
        }
        const double right_sum = total_sum - left_sum;
        const double right_sq = total_sq - left_sq;
        const double sse_left = left_sq - left_sum * left_sum / nl;
        const double sse_right = right_sq - right_sum * right_sum / nr;
        const double gain = parent_sse - (sse_left + sse_right);
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.threshold =
              0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
        }
      }
    }

    if (best.feature < 0) continue;  // No useful split: stay a leaf.

    for (size_t r : work.rows) {
      (x[r][best.feature] <= best.threshold ? best.left : best.right)
          .push_back(r);
    }

    const int left_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    const int right_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(Node{});
    // `node` may have been invalidated by push_back: reindex.
    Node& parent = tree.nodes_[work.node];
    parent.feature = best.feature;
    parent.threshold = best.threshold;
    parent.left = left_id;
    parent.right = right_id;
    stack.push_back({left_id, std::move(best.left), work.depth + 1});
    stack.push_back({right_id, std::move(best.right), work.depth + 1});
  }

  return tree;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  PSTORM_CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    PSTORM_CHECK(static_cast<size_t>(n.feature) < features.size());
    node = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].value;
}

int RegressionTree::depth() const {
  // Depth by traversal.
  struct Item {
    int node;
    int depth;
  };
  int max_depth = 0;
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, item.depth);
    const Node& n = nodes_[item.node];
    if (n.feature >= 0) {
      stack.push_back({n.left, item.depth + 1});
      stack.push_back({n.right, item.depth + 1});
    }
  }
  return max_depth;
}

}  // namespace pstorm::ml
