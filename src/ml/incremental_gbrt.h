#ifndef PSTORM_ML_INCREMENTAL_GBRT_H_
#define PSTORM_ML_INCREMENTAL_GBRT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "ml/gbrt.h"

namespace pstorm::ml {

/// Online wrapper around GradientBoostedTrees for the §4.4 learned-distance
/// matcher: training pairs trickle in (one per scored submission), and a
/// full CV retrain per observation is three orders of magnitude more work
/// than the prediction it improves. IncrementalGbrt instead buffers
/// observations and refreshes the model under a *bounded-staleness
/// contract*: the model may lag the buffer by at most max_stale_samples
/// observations AND at most max_stale_fraction of the buffer, whichever
/// bound trips first. A refresh is usually incremental (FitMore: residual
/// boosting on the whole buffer, no CV) with every full_retrain_every-th
/// refresh falling back to a full CV Fit so tree-count selection cannot
/// drift arbitrarily far from the data.
///
/// Knobs of IncrementalGbrt (namespace scope so `= {}` default arguments
/// work across compilers).
struct IncrementalGbrtOptions {
  GradientBoostedTrees::Options base;
  /// No model is fitted before this many observations (Predict is
  /// FailedPrecondition until then).
  int min_initial_samples = 30;
  /// Staleness bound, absolute: a refresh triggers once this many
  /// observations postdate the model.
  int max_stale_samples = 64;
  /// Staleness bound, relative: a refresh also triggers once the stale
  /// observations exceed this fraction of the buffer (so small stores
  /// refresh proportionally sooner).
  double max_stale_fraction = 0.25;
  /// Trees appended per incremental refresh.
  int incremental_trees = 200;
  /// Every Nth refresh is a full CV retrain instead of an incremental
  /// FitMore. 1 = always retrain fully (the fallback knob: ablation /
  /// maximum accuracy); 0 = never (pure incremental).
  int full_retrain_every = 8;
};

/// Not thread-safe; callers synchronize externally.
class IncrementalGbrt {
 public:
  using Options = IncrementalGbrtOptions;

  explicit IncrementalGbrt(Options options = {});

  /// Buffers one observation and refreshes the model if the staleness
  /// contract requires it. Errors come only from the underlying
  /// Fit/FitMore and leave the buffer intact (the observation stays
  /// counted as stale, so the next Observe retries).
  Status Observe(std::vector<double> features, double label);

  /// Forces a refresh now (full retrain when `full` is set, or when the
  /// schedule says so). No-op without enough samples.
  Status Refresh(bool full = false);

  bool has_model() const { return model_.has_value(); }
  /// FailedPrecondition until min_initial_samples observations arrived.
  Result<double> Predict(const std::vector<double>& features) const;

  size_t num_samples() const { return y_.size(); }
  /// Observations the current model has not been trained on.
  size_t stale_samples() const { return y_.size() - trained_samples_; }
  int refreshes() const { return refreshes_; }
  int full_retrains() const { return full_retrains_; }
  /// The wrapped model (tests/diagnostics); requires has_model().
  const GradientBoostedTrees& model() const { return *model_; }

 private:
  bool StalenessExceeded() const;

  Options options_;
  FeatureMatrix x_;
  std::vector<double> y_;
  std::optional<GradientBoostedTrees> model_;
  size_t trained_samples_ = 0;  // Buffer size at the last refresh.
  int refreshes_ = 0;
  int full_retrains_ = 0;
};

}  // namespace pstorm::ml

#endif  // PSTORM_ML_INCREMENTAL_GBRT_H_
