#include "ml/incremental_gbrt.h"

#include <utility>

namespace pstorm::ml {

IncrementalGbrt::IncrementalGbrt(Options options)
    : options_(std::move(options)) {
  if (options_.min_initial_samples < 1) options_.min_initial_samples = 1;
  if (options_.max_stale_samples < 1) options_.max_stale_samples = 1;
  if (options_.incremental_trees < 1) options_.incremental_trees = 1;
}

bool IncrementalGbrt::StalenessExceeded() const {
  const size_t stale = stale_samples();
  if (stale == 0) return false;
  if (stale >= static_cast<size_t>(options_.max_stale_samples)) return true;
  return options_.max_stale_fraction > 0.0 &&
         static_cast<double>(stale) >=
             options_.max_stale_fraction * static_cast<double>(y_.size());
}

Status IncrementalGbrt::Observe(std::vector<double> features, double label) {
  x_.push_back(std::move(features));
  y_.push_back(label);
  if (!model_.has_value()) {
    if (y_.size() < static_cast<size_t>(options_.min_initial_samples)) {
      return Status::OK();
    }
    return Refresh(/*full=*/true);
  }
  if (!StalenessExceeded()) return Status::OK();
  return Refresh();
}

Status IncrementalGbrt::Refresh(bool full) {
  if (y_.size() < static_cast<size_t>(options_.min_initial_samples)) {
    return Status::OK();
  }
  // Deterministic per-refresh seed: refresh results depend only on the
  // observation sequence, never on wall clock.
  const uint64_t seed =
      options_.base.seed + 0x9E3779B9u * static_cast<uint64_t>(refreshes_ + 1);
  const bool scheduled_full =
      !model_.has_value() ||
      (options_.full_retrain_every > 0 &&
       refreshes_ % options_.full_retrain_every == 0);
  if (full || scheduled_full) {
    auto opts = options_.base;
    opts.seed = seed;
    PSTORM_ASSIGN_OR_RETURN(GradientBoostedTrees model,
                            GradientBoostedTrees::Fit(x_, y_, opts));
    model_ = std::move(model);
    ++full_retrains_;
  } else {
    PSTORM_RETURN_IF_ERROR(
        model_->FitMore(x_, y_, options_.incremental_trees, seed));
  }
  trained_samples_ = y_.size();
  ++refreshes_;
  return Status::OK();
}

Result<double> IncrementalGbrt::Predict(
    const std::vector<double>& features) const {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "IncrementalGbrt: no model yet (need min_initial_samples)");
  }
  return model_->Predict(features);
}

}  // namespace pstorm::ml
