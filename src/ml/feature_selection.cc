#include "ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace pstorm::ml {

namespace {

double Entropy(const std::map<int, int>& counts, int total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double InformationGain(const std::vector<double>& feature_values,
                       const std::vector<int>& labels, int num_bins) {
  PSTORM_CHECK(feature_values.size() == labels.size());
  PSTORM_CHECK(num_bins >= 2);
  if (feature_values.empty()) return 0.0;

  std::map<int, int> class_counts;
  for (int label : labels) ++class_counts[label];
  const int n = static_cast<int>(labels.size());
  const double base_entropy = Entropy(class_counts, n);

  const auto [min_it, max_it] =
      std::minmax_element(feature_values.begin(), feature_values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (hi <= lo) return 0.0;  // Constant feature: no information.

  std::vector<std::map<int, int>> bin_counts(num_bins);
  std::vector<int> bin_totals(num_bins, 0);
  for (size_t i = 0; i < feature_values.size(); ++i) {
    int bin = static_cast<int>((feature_values[i] - lo) / (hi - lo) *
                               num_bins);
    bin = std::clamp(bin, 0, num_bins - 1);
    ++bin_counts[bin][labels[i]];
    ++bin_totals[bin];
  }

  double conditional = 0.0;
  for (int b = 0; b < num_bins; ++b) {
    conditional += static_cast<double>(bin_totals[b]) / n *
                   Entropy(bin_counts[b], bin_totals[b]);
  }
  return base_entropy - conditional;
}

Result<std::vector<size_t>> RankFeaturesByInformationGain(
    const FeatureMatrix& x, const std::vector<int>& labels, int num_bins) {
  if (x.empty() || x.size() != labels.size()) {
    return Status::InvalidArgument("x and labels must match and be nonempty");
  }
  const size_t num_features = x[0].size();
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(num_features);
  for (size_t f = 0; f < num_features; ++f) {
    std::vector<double> column;
    column.reserve(x.size());
    for (const auto& row : x) {
      if (row.size() != num_features) {
        return Status::InvalidArgument("ragged feature matrix");
      }
      column.push_back(row[f]);
    }
    scored.emplace_back(InformationGain(column, labels, num_bins), f);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<size_t> ranked;
  ranked.reserve(num_features);
  for (const auto& [gain, f] : scored) ranked.push_back(f);
  return ranked;
}

double InformationGainCategorical(const std::vector<int>& categories,
                                  const std::vector<int>& labels) {
  PSTORM_CHECK(categories.size() == labels.size());
  if (categories.empty()) return 0.0;
  std::map<int, int> class_counts;
  for (int label : labels) ++class_counts[label];
  const int n = static_cast<int>(labels.size());
  const double base_entropy = Entropy(class_counts, n);

  std::map<int, std::map<int, int>> per_category;
  std::map<int, int> category_totals;
  for (size_t i = 0; i < categories.size(); ++i) {
    ++per_category[categories[i]][labels[i]];
    ++category_totals[categories[i]];
  }
  double conditional = 0.0;
  for (const auto& [category, counts] : per_category) {
    conditional += static_cast<double>(category_totals[category]) / n *
                   Entropy(counts, category_totals[category]);
  }
  return base_entropy - conditional;
}

Status NearestNeighborIndex::Add(int id, std::vector<double> features) {
  if (!entries_.empty() &&
      features.size() != entries_.front().features.size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  entries_.push_back({id, std::move(features)});
  return Status::OK();
}

Result<int> NearestNeighborIndex::Nearest(
    const std::vector<double>& query) const {
  if (entries_.empty()) return Status::NotFound("index is empty");
  const size_t dim = entries_.front().features.size();
  if (query.size() != dim) {
    return Status::InvalidArgument("dimension mismatch");
  }

  // Min-max bounds per dimension over stored entries and the query, so
  // distances compare on a common [0,1] scale.
  std::vector<double> lo = query;
  std::vector<double> hi = query;
  for (const Entry& e : entries_) {
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], e.features[d]);
      hi[d] = std::max(hi[d], e.features[d]);
    }
  }

  auto normalized = [&](double v, size_t d) {
    return hi[d] > lo[d] ? (v - lo[d]) / (hi[d] - lo[d]) : 0.0;
  };

  int best_id = entries_.front().id;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    double dist = 0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff =
          normalized(e.features[d], d) - normalized(query[d], d);
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best_id = e.id;
    }
  }
  return best_id;
}

}  // namespace pstorm::ml
