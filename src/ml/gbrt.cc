#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace pstorm::ml {

namespace {

double MeanAt(const std::vector<double>& y, const std::vector<size_t>& rows) {
  double sum = 0;
  for (size_t r : rows) sum += y[r];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

double MedianAt(const std::vector<double>& y, std::vector<size_t> rows) {
  if (rows.empty()) return 0.0;
  std::sort(rows.begin(), rows.end(),
            [&y](size_t a, size_t b) { return y[a] < y[b]; });
  const size_t mid = rows.size() / 2;
  if (rows.size() % 2 == 1) return y[rows[mid]];
  return 0.5 * (y[rows[mid - 1]] + y[rows[mid]]);
}

/// One full boosting run over `train_rows`, tracking per-iteration loss on
/// `val_rows` (may be empty). Returns the trees and fills `val_loss`.
struct BoostRun {
  double initial = 0;
  std::vector<RegressionTree> trees;
};

Result<BoostRun> Boost(const FeatureMatrix& x, const std::vector<double>& y,
                       const std::vector<size_t>& train_rows,
                       const std::vector<size_t>& val_rows,
                       const GradientBoostedTrees::Options& options,
                       Rng* rng, std::vector<double>* val_loss) {
  const bool laplace = options.loss == GbrtLoss::kLaplace;

  BoostRun run;
  run.initial = laplace ? MedianAt(y, train_rows) : MeanAt(y, train_rows);

  // Current model output per sample (only train/val rows are consulted).
  std::vector<double> f(x.size(), run.initial);
  // Residuals the next tree regresses on.
  std::vector<double> residual(x.size(), 0.0);

  RegressionTree::Options tree_options;
  tree_options.max_depth = options.interaction_depth;
  tree_options.min_samples_leaf = options.min_obs_in_node;

  const size_t bag_size = std::max<size_t>(
      std::max<size_t>(1, 2 * options.min_obs_in_node),
      static_cast<size_t>(options.bag_fraction *
                          static_cast<double>(train_rows.size())));

  run.trees.reserve(options.num_trees);
  if (val_loss != nullptr) val_loss->reserve(options.num_trees);

  for (int iter = 0; iter < options.num_trees; ++iter) {
    for (size_t r : train_rows) residual[r] = y[r] - f[r];

    // Bag a subset of the training rows.
    std::vector<size_t> bag;
    if (bag_size >= train_rows.size()) {
      bag = train_rows;
    } else {
      const std::vector<uint64_t> picks =
          rng->SampleWithoutReplacement(train_rows.size(), bag_size);
      bag.reserve(picks.size());
      for (uint64_t p : picks) bag.push_back(train_rows[p]);
    }

    PSTORM_ASSIGN_OR_RETURN(
        RegressionTree tree,
        RegressionTree::Fit(x, residual, bag, tree_options, laplace));

    for (size_t r : train_rows) {
      f[r] += options.shrinkage * tree.Predict(x[r]);
    }
    if (val_loss != nullptr) {
      double loss = 0;
      for (size_t r : val_rows) {
        f[r] += options.shrinkage * tree.Predict(x[r]);
        const double err = y[r] - f[r];
        loss += laplace ? std::fabs(err) : err * err;
      }
      val_loss->push_back(
          val_rows.empty() ? 0.0
                           : loss / static_cast<double>(val_rows.size()));
    }
    run.trees.push_back(std::move(tree));
  }
  return run;
}

}  // namespace

Result<GradientBoostedTrees> GradientBoostedTrees::Fit(
    const FeatureMatrix& x, const std::vector<double>& y, Options options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("x and y must be non-empty, same length");
  }
  if (options.num_trees < 1 || options.shrinkage <= 0.0 ||
      options.bag_fraction <= 0.0 || options.bag_fraction > 1.0 ||
      options.train_fraction <= 0.0 || options.train_fraction > 1.0 ||
      options.cv_folds < 2) {
    return Status::InvalidArgument("bad GBRT options");
  }

  // gbm semantics: the first train.fraction of the data is the learning
  // set; the caller is responsible for row order.
  const size_t train_n = std::max<size_t>(
      static_cast<size_t>(2 * options.cv_folds),
      static_cast<size_t>(options.train_fraction *
                          static_cast<double>(x.size())));
  std::vector<size_t> train_rows(std::min(train_n, x.size()));
  std::iota(train_rows.begin(), train_rows.end(), 0);

  Rng rng(options.seed);

  // Cross-validation over the training slice to pick the iteration count.
  std::vector<double> cv_loss(options.num_trees, 0.0);
  for (int fold = 0; fold < options.cv_folds; ++fold) {
    std::vector<size_t> fold_train, fold_val;
    for (size_t i = 0; i < train_rows.size(); ++i) {
      (static_cast<int>(i % options.cv_folds) == fold ? fold_val
                                                      : fold_train)
          .push_back(train_rows[i]);
    }
    if (fold_train.empty() || fold_val.empty()) continue;
    std::vector<double> val_loss;
    Rng fold_rng = rng.Fork(fold + 1);
    PSTORM_ASSIGN_OR_RETURN(
        BoostRun run,
        Boost(x, y, fold_train, fold_val, options, &fold_rng, &val_loss));
    for (int i = 0; i < options.num_trees; ++i) cv_loss[i] += val_loss[i];
  }
  int best_iteration = 1;
  double best_loss = std::numeric_limits<double>::infinity();
  for (int i = 0; i < options.num_trees; ++i) {
    if (cv_loss[i] < best_loss) {
      best_loss = cv_loss[i];
      best_iteration = i + 1;
    }
  }

  // Final model on the full training slice.
  Rng final_rng = rng.Fork(0);
  PSTORM_ASSIGN_OR_RETURN(
      BoostRun run, Boost(x, y, train_rows, {}, options, &final_rng, nullptr));

  GradientBoostedTrees model;
  model.initial_prediction_ = run.initial;
  model.shrinkage_ = options.shrinkage;
  model.best_iteration_ = best_iteration;
  model.trees_ = std::move(run.trees);
  model.options_ = options;
  return model;
}

Status GradientBoostedTrees::FitMore(const FeatureMatrix& x,
                                     const std::vector<double>& y,
                                     int extra_trees, uint64_t seed) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("x and y must be non-empty, same length");
  }
  if (extra_trees < 1) {
    return Status::InvalidArgument("extra_trees must be >= 1");
  }
  if (trees_.empty()) {
    return Status::FailedPrecondition("FitMore requires a fitted model");
  }
  const bool laplace = options_.loss == GbrtLoss::kLaplace;

  // Drop the CV-rejected tail so the residuals below are the residuals of
  // the model Predict() actually uses.
  trees_.resize(std::min<size_t>(trees_.size(),
                                 static_cast<size_t>(best_iteration_)));

  std::vector<double> f(x.size());
  for (size_t i = 0; i < x.size(); ++i) f[i] = Predict(x[i]);
  std::vector<double> residual(x.size(), 0.0);

  RegressionTree::Options tree_options;
  tree_options.max_depth = options_.interaction_depth;
  tree_options.min_samples_leaf = options_.min_obs_in_node;

  std::vector<size_t> rows(x.size());
  std::iota(rows.begin(), rows.end(), 0);
  const size_t bag_size = std::max<size_t>(
      std::max<size_t>(1, 2 * options_.min_obs_in_node),
      static_cast<size_t>(options_.bag_fraction *
                          static_cast<double>(rows.size())));

  Rng rng(seed);
  trees_.reserve(trees_.size() + extra_trees);
  for (int iter = 0; iter < extra_trees; ++iter) {
    for (size_t r : rows) residual[r] = y[r] - f[r];
    std::vector<size_t> bag;
    if (bag_size >= rows.size()) {
      bag = rows;
    } else {
      const std::vector<uint64_t> picks =
          rng.SampleWithoutReplacement(rows.size(), bag_size);
      bag.reserve(picks.size());
      for (uint64_t p : picks) bag.push_back(rows[p]);
    }
    PSTORM_ASSIGN_OR_RETURN(
        RegressionTree tree,
        RegressionTree::Fit(x, residual, bag, tree_options, laplace));
    for (size_t r : rows) f[r] += shrinkage_ * tree.Predict(x[r]);
    trees_.push_back(std::move(tree));
  }
  best_iteration_ = static_cast<int>(trees_.size());
  return Status::OK();
}

double GradientBoostedTrees::Predict(
    const std::vector<double>& features) const {
  double f = initial_prediction_;
  const int n = std::min<int>(best_iteration_,
                              static_cast<int>(trees_.size()));
  for (int i = 0; i < n; ++i) {
    f += shrinkage_ * trees_[i].Predict(features);
  }
  return f;
}

}  // namespace pstorm::ml
