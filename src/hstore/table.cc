#include "hstore/table.h"

#include <algorithm>
#include <mutex>

#include "common/coding.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace pstorm::hstore {

namespace internal {

/// One range partition of a table: [start_key, next region's start_key),
/// backed by its own storage::Db. Mirrors an HBase region served by a
/// region server; filters are evaluated here, on the "server side" of the
/// scan.
class Region {
 public:
  static Result<std::unique_ptr<Region>> Open(storage::Env* env,
                                              std::string path,
                                              std::string start_key,
                                              uint64_t id,
                                              storage::DbOptions db_options) {
    auto region = std::unique_ptr<Region>(new Region());
    region->start_key_ = std::move(start_key);
    region->id_ = id;
    PSTORM_ASSIGN_OR_RETURN(region->db_,
                            storage::Db::Open(env, std::move(path),
                                              db_options));
    return region;
  }

  const std::string& start_key() const { return start_key_; }
  uint64_t id() const { return id_; }
  storage::Db* db() { return db_.get(); }
  const storage::Db* db() const { return db_.get(); }

  /// The region's write stripe. Multi-cell row mutations hold it for the
  /// whole batch; readers hold it only while creating their snapshot
  /// iterator, so a row put is atomic as seen by any Get/Scan.
  std::mutex& write_mu() const { return write_mu_; }

 private:
  Region() = default;

  std::string start_key_;
  uint64_t id_ = 0;
  std::unique_ptr<storage::Db> db_;
  mutable std::mutex write_mu_;
};

}  // namespace internal

namespace {

constexpr char kSep = '\0';
constexpr char kTableMetaName[] = "TABLEMETA";
constexpr char kTableMetaHeader[] = "pstorm-htable-v1";

std::string EncodeCellKey(std::string_view row, std::string_view family,
                          std::string_view qualifier) {
  std::string key;
  key.reserve(row.size() + family.size() + qualifier.size() + 2);
  key.append(row);
  key.push_back(kSep);
  key.append(family);
  key.push_back(kSep);
  key.append(qualifier);
  return key;
}

/// Splits an encoded cell key back into (row, family, qualifier).
bool DecodeCellKey(std::string_view key, std::string_view* row,
                   std::string_view* family, std::string_view* qualifier) {
  const size_t sep1 = key.find(kSep);
  if (sep1 == std::string_view::npos) return false;
  const size_t sep2 = key.find(kSep, sep1 + 1);
  if (sep2 == std::string_view::npos) return false;
  *row = key.substr(0, sep1);
  *family = key.substr(sep1 + 1, sep2 - sep1 - 1);
  *qualifier = key.substr(sep2 + 1);
  return true;
}

std::string EncodeCellValue(uint64_t timestamp, std::string_view value) {
  std::string out;
  PutFixed64(&out, timestamp);
  out.append(value);
  return out;
}

bool DecodeCellValue(std::string_view encoded, uint64_t* timestamp,
                     std::string_view* value) {
  if (encoded.size() < 8) return false;
  *timestamp = DecodeFixed64(encoded.data());
  *value = encoded.substr(8);
  return true;
}

std::string HexEncode(std::string_view in) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(in.size() * 2);
  for (unsigned char c : in) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view in) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (in.size() % 2 != 0) return Status::Corruption("odd hex length");
  std::string out;
  out.reserve(in.size() / 2);
  for (size_t i = 0; i < in.size(); i += 2) {
    const int hi = nibble(in[i]);
    const int lo = nibble(in[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

bool ContainsNul(std::string_view s) {
  return s.find(kSep) != std::string_view::npos;
}

}  // namespace

HTable::HTable(storage::Env* env, std::string root_path, TableSchema schema,
               HTableOptions options)
    : env_(env),
      root_path_(std::move(root_path)),
      schema_(std::move(schema)),
      options_(options) {}

HTable::~HTable() = default;

size_t HTable::num_regions() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  return regions_.size();
}

Result<std::unique_ptr<HTable>> HTable::Open(storage::Env* env,
                                             std::string root_path,
                                             TableSchema schema,
                                             HTableOptions options) {
  PSTORM_CHECK(env != nullptr);
  if (schema.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (schema.families.empty()) {
    return Status::InvalidArgument("table needs at least one column family");
  }
  // One block cache for every region of the table (created now and for any
  // later split): regions would otherwise each carve out a private budget,
  // and a hot row set spanning a split would be cached twice.
  if (options.db_options.block_cache == nullptr &&
      options.db_options.block_cache_bytes > 0) {
    options.db_options.block_cache = std::make_shared<storage::BlockCache>(
        options.db_options.block_cache_bytes);
  }
  // A read-only open must not create regions or rewrite the meta; forcing
  // read_only_replica fences every region Db at the storage layer too.
  if (options.read_only) options.db_options.read_only_replica = true;
  auto table = std::unique_ptr<HTable>(
      new HTable(env, std::move(root_path), std::move(schema), options));
  PSTORM_RETURN_IF_ERROR(env->CreateDir(table->root_path_));

  const std::string meta_path =
      storage::JoinPath(table->root_path_, kTableMetaName);
  if (env->FileExists(meta_path)) {
    PSTORM_RETURN_IF_ERROR(table->LoadTableMeta());
  } else if (options.read_only) {
    return Status::FailedPrecondition(
        "read-only open of a table that does not exist: " +
        table->root_path_);
  } else {
    // Fresh table: one region covering the whole key space.
    PSTORM_ASSIGN_OR_RETURN(
        auto region,
        internal::Region::Open(
            env, storage::JoinPath(table->root_path_, "region_0"), "",
            table->next_region_id_++, options.db_options));
    table->regions_.push_back(std::move(region));
    PSTORM_RETURN_IF_ERROR(table->WriteTableMetaLocked());
  }
  return table;
}

std::string HTable::SerializeTableMetaLocked() const {
  std::string out(kTableMetaHeader);
  out += "\n";
  out += "name " + schema_.name + "\n";
  for (const std::string& family : schema_.families) {
    out += "family " + family + "\n";
  }
  out += "clock " + std::to_string(logical_clock_.load()) + "\n";
  out += "next_region " + std::to_string(next_region_id_) + "\n";
  for (const auto& region : regions_) {
    out += "region " + std::to_string(region->id()) + " " +
           HexEncode(region->start_key()) + "\n";
  }
  return out;
}

Status HTable::WriteTableMetaLocked() {
  const std::string out = SerializeTableMetaLocked();
  const std::string tmp =
      storage::JoinPath(root_path_, std::string(kTableMetaName) + ".tmp");
  PSTORM_RETURN_IF_ERROR(env_->WriteFile(tmp, out));
  return env_->RenameFile(tmp,
                          storage::JoinPath(root_path_, kTableMetaName));
}

Status HTable::LoadTableMeta() {
  PSTORM_ASSIGN_OR_RETURN(
      std::string meta,
      env_->ReadFile(storage::JoinPath(root_path_, kTableMetaName)));
  std::vector<std::string> lines = StrSplit(meta, '\n');
  if (lines.empty() || lines[0] != kTableMetaHeader) {
    return Status::Corruption("bad table meta header");
  }
  std::vector<std::string> stored_families;
  std::string stored_name;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const size_t space = lines[i].find(' ');
    if (space == std::string::npos) {
      return Status::Corruption("bad table meta line");
    }
    const std::string tag = lines[i].substr(0, space);
    const std::string rest = lines[i].substr(space + 1);
    if (tag == "name") {
      stored_name = rest;
    } else if (tag == "family") {
      stored_families.push_back(rest);
    } else if (tag == "clock") {
      logical_clock_ = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (tag == "next_region") {
      next_region_id_ = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (tag == "region") {
      const std::vector<std::string> parts = StrSplit(rest, ' ');
      if (parts.empty() || parts.size() > 2) {
        return Status::Corruption("bad region line");
      }
      const uint64_t id = std::strtoull(parts[0].c_str(), nullptr, 10);
      PSTORM_ASSIGN_OR_RETURN(
          std::string start_key,
          HexDecode(parts.size() == 2 ? parts[1] : ""));
      const std::string region_path =
          storage::JoinPath(root_path_, "region_" + std::to_string(id));
      auto region = internal::Region::Open(env_, region_path, start_key, id,
                                           options_.db_options);
      if (!region.ok() && region.status().IsCorruption()) {
        // The region's own manifest is rotten (single bad sstables are
        // quarantined inside Db::Open and do not land here). Losing one
        // region's rows degrades the matcher to No Match Found; losing the
        // whole table would take PStorM down. Quarantine the region's
        // files and recover it empty, keeping the key-space cover intact.
        const std::string diagnosis =
            "region_" + std::to_string(id) + ": " +
            region.status().ToString();
        PSTORM_LOG(Warning) << "htable " << root_path_
                            << ": recovering unreadable region empty ("
                            << diagnosis << ")";
        if (auto files = env_->ListDir(region_path); files.ok()) {
          for (const std::string& name : files.value()) {
            (void)env_->RenameFile(
                storage::JoinPath(region_path, name),
                storage::JoinPath(region_path, name + ".quarantine"));
          }
        }
        region_open_errors_.push_back(diagnosis);
        obs::MetricsRegistry::Global()
            .GetCounter("pstorm_hstore_regions_recovered_total")
            .Increment();
        region = internal::Region::Open(env_, region_path,
                                        std::move(start_key), id,
                                        options_.db_options);
      }
      if (!region.ok()) return region.status();
      regions_.push_back(std::move(region).value());
    } else {
      return Status::Corruption("unknown table meta tag: " + tag);
    }
  }
  if (stored_name != schema_.name || stored_families != schema_.families) {
    return Status::FailedPrecondition(
        "schema mismatch: HBase column families are fixed at table creation");
  }
  if (regions_.empty()) return Status::Corruption("table meta has no regions");
  std::sort(regions_.begin(), regions_.end(),
            [](const auto& a, const auto& b) {
              return a->start_key() < b->start_key();
            });
  // The meta's clock may be stale (it is only rewritten on region changes);
  // re-derive it from the newest stored timestamp so versions keep moving
  // forward after a reopen.
  uint64_t clock = logical_clock_.load();
  for (const auto& region : regions_) {
    auto it = region->db()->NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      uint64_t timestamp;
      std::string_view value;
      if (DecodeCellValue(it->value(), &timestamp, &value)) {
        clock = std::max(clock, timestamp);
      }
    }
    PSTORM_RETURN_IF_ERROR(it->status());
  }
  logical_clock_ = clock;
  return Status::OK();
}

internal::Region* HTable::RegionForLocked(std::string_view row) const {
  PSTORM_CHECK(!regions_.empty());
  // Last region whose start_key <= row.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), row,
      [](std::string_view r, const std::unique_ptr<internal::Region>& region) {
        return r < std::string_view(region->start_key());
      });
  PSTORM_CHECK(it != regions_.begin());
  return std::prev(it)->get();
}

Status HTable::ValidateKeyParts(const PutOp& put) const {
  if (put.row().empty()) return Status::InvalidArgument("empty row key");
  if (ContainsNul(put.row())) {
    return Status::InvalidArgument("row key must not contain NUL");
  }
  for (const Cell& cell : put.cells()) {
    if (ContainsNul(cell.family) || ContainsNul(cell.qualifier)) {
      return Status::InvalidArgument("family/qualifier must not contain NUL");
    }
    if (std::find(schema_.families.begin(), schema_.families.end(),
                  cell.family) == schema_.families.end()) {
      return Status::InvalidArgument("unknown column family: " + cell.family);
    }
  }
  return Status::OK();
}

Status HTable::Put(const PutOp& put) {
  if (options_.read_only) {
    return Status::FailedPrecondition(
        "htable is a read-only replica; writes go to the primary");
  }
  PSTORM_RETURN_IF_ERROR(ValidateKeyParts(put));
  bool over_split_threshold = false;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    internal::Region* region = RegionForLocked(put.row());
    const uint64_t timestamp = logical_clock_.fetch_add(1) + 1;
    {
      // Hold the region's write stripe across the whole batch so readers
      // (who take the stripe only to create their snapshot iterator) see
      // the row's cells all-or-nothing.
      std::lock_guard<std::mutex> stripe(region->write_mu());
      for (const Cell& cell : put.cells()) {
        PSTORM_RETURN_IF_ERROR(region->db()->Put(
            EncodeCellKey(put.row(), cell.family, cell.qualifier),
            EncodeCellValue(timestamp, cell.value)));
      }
    }
    over_split_threshold = region->db()->ApproximateSizeBytes() >=
                           options_.region_split_bytes;
  }
  if (over_split_threshold) return MaybeSplit(put.row());
  return Status::OK();
}

Result<RowResult> HTable::Get(std::string_view row) const {
  const std::string prefix = std::string(row) + kSep;
  std::unique_ptr<storage::Iterator> it;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    const internal::Region* region = RegionForLocked(row);
    std::lock_guard<std::mutex> stripe(region->write_mu());
    // The prefix is row + separator — exactly the shape the sstables'
    // prefix bloom filters index — so tables without this row are skipped
    // outright. The StartsWith bound below keeps the scan inside the
    // range where the pruned merge is coherent.
    it = region->db()->NewPrefixIterator(prefix);
  }
  RowResult result{std::string(row)};
  for (it->Seek(prefix); it->Valid() && StartsWith(it->key(), prefix);
       it->Next()) {
    std::string_view r, family, qualifier;
    if (!DecodeCellKey(it->key(), &r, &family, &qualifier)) {
      return Status::Corruption("bad cell key");
    }
    uint64_t timestamp;
    std::string_view value;
    if (!DecodeCellValue(it->value(), &timestamp, &value)) {
      return Status::Corruption("bad cell value");
    }
    result.AddCell(Cell{std::string(family), std::string(qualifier),
                        std::string(value), timestamp});
  }
  PSTORM_RETURN_IF_ERROR(it->status());
  if (result.empty()) return Status::NotFound("no such row");
  return result;
}

Status HTable::DeleteRow(std::string_view row) {
  if (options_.read_only) {
    return Status::FailedPrecondition(
        "htable is a read-only replica; writes go to the primary");
  }
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  internal::Region* region = RegionForLocked(row);
  const std::string prefix = std::string(row) + kSep;
  // The stripe covers collect + delete, so the row disappears atomically
  // as seen by concurrent snapshot readers.
  std::lock_guard<std::mutex> stripe(region->write_mu());
  std::vector<std::string> keys;
  {
    auto it = region->db()->NewPrefixIterator(prefix);
    for (it->Seek(prefix); it->Valid() && StartsWith(it->key(), prefix);
         it->Next()) {
      keys.emplace_back(it->key());
    }
    PSTORM_RETURN_IF_ERROR(it->status());
  }
  for (const std::string& key : keys) {
    PSTORM_RETURN_IF_ERROR(region->db()->Delete(key));
  }
  return Status::OK();
}

storage::DbStats HTable::AggregatedDbStats() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  storage::DbStats total;
  for (const auto& region : regions_) {
    const storage::DbStats s = region->db()->stats();
    total.flushes += s.flushes;
    total.compactions += s.compactions;
    total.bytes_flushed += s.bytes_flushed;
    total.bytes_compacted += s.bytes_compacted;
    total.wal_appends += s.wal_appends;
    total.wal_syncs += s.wal_syncs;
    total.wal_records_replayed += s.wal_records_replayed;
    total.wal_tail_truncated += s.wal_tail_truncated;
    total.quarantined_files += s.quarantined_files;
    total.orphans_removed += s.orphans_removed;
    total.write_slowdowns += s.write_slowdowns;
    total.write_stalls += s.write_stalls;
    total.stall_micros += s.stall_micros;
    total.bg_retries += s.bg_retries;
    total.replicated_batches += s.replicated_batches;
    total.replicated_records += s.replicated_records;
    total.fence_rejections += s.fence_rejections;
    total.checkpoints_created += s.checkpoints_created;
    total.last_sequence += s.last_sequence;
    total.flushed_sequence += s.flushed_sequence;
    // Epoch is a per-region fence, not additive; surface the highest one.
    total.epoch = std::max(total.epoch, s.epoch);
    total.is_replica = total.is_replica != 0 || s.is_replica != 0 ? 1 : 0;
  }
  return total;
}

HTable::ReplicationSnapshot HTable::GetReplicationSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  ReplicationSnapshot snap;
  snap.table_meta = SerializeTableMetaLocked();
  snap.regions.reserve(regions_.size());
  for (const auto& region : regions_) {
    snap.regions.push_back(ReplicationSnapshot::RegionRef{
        "region_" + std::to_string(region->id()), region->db()});
  }
  return snap;
}

Status HTable::WaitForIdle() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  Status first_error = Status::OK();
  for (const auto& region : regions_) {
    const Status s = region->db()->WaitForIdle();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Result<std::vector<RowResult>> HTable::Scan(const ScanSpec& spec,
                                            ScanStats* stats) const {
  // Work on a local accumulator and publish once on exit, so a caller
  // handing the same ScanStats object to a reader thread never observes a
  // half-updated struct from a completed scan. Publishing is RAII because
  // the corruption early-returns below must still report the work done (and
  // regions_recovered_empty) up to the failure point — a scan that dies on a
  // bad cell used to leave the caller's stats untouched.
  ScanStats local;
  struct PublishOnExit {
    ScanStats* out;
    const ScanStats* local;
    ~PublishOnExit() {
      if (out != nullptr) *out = *local;
      static obs::Counter& scans = obs::MetricsRegistry::Global().GetCounter(
          "pstorm_hstore_scans_total");
      static obs::Counter& rows_scanned =
          obs::MetricsRegistry::Global().GetCounter(
              "pstorm_hstore_rows_scanned_total");
      static obs::Counter& rows_returned =
          obs::MetricsRegistry::Global().GetCounter(
              "pstorm_hstore_rows_returned_total");
      scans.Increment();
      rows_scanned.Add(local->rows_scanned);
      rows_returned.Add(local->rows_returned);
    }
  } publish{stats, &local};

  // Pin a snapshot iterator per visited region while holding the table
  // lock shared: a concurrent split (exclusive) can only run entirely
  // before or entirely after this block, so the scan sees an atomic
  // region layout; the iteration below then runs with no locks at all.
  struct RegionScan {
    std::unique_ptr<storage::Iterator> it;
  };
  std::vector<RegionScan> pinned;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    local.regions_recovered_empty = region_open_errors_.size();
    for (const auto& region : regions_) {
      // Skip regions entirely past the stop row.
      if (!spec.stop_row.empty() && region->start_key() >= spec.stop_row) {
        break;
      }
      std::lock_guard<std::mutex> stripe(region->write_mu());
      pinned.push_back(RegionScan{region->db()->NewIterator()});
    }
  }

  std::vector<RowResult> out;
  for (RegionScan& scan : pinned) {
    ++local.regions_visited;

    storage::Iterator* it = scan.it.get();
    if (spec.start_row.empty()) {
      it->SeekToFirst();
    } else {
      it->Seek(spec.start_row);
    }

    RowResult current;
    auto finish_row = [&]() {
      if (current.empty()) return;
      ++local.rows_scanned;
      const bool matches =
          spec.filter == nullptr || spec.filter->Matches(current);
      if (spec.server_side_filtering) {
        // Only matching rows cross the region boundary.
        if (matches) {
          ++local.rows_transferred;
          local.bytes_transferred += current.PayloadBytes();
          ++local.rows_returned;
          out.push_back(std::move(current));
        }
      } else {
        // Everything is shipped to the client, which filters locally.
        ++local.rows_transferred;
        local.bytes_transferred += current.PayloadBytes();
        if (matches) {
          ++local.rows_returned;
          out.push_back(std::move(current));
        }
      }
      current = RowResult();
    };

    for (; it->Valid(); it->Next()) {
      std::string_view row, family, qualifier;
      if (!DecodeCellKey(it->key(), &row, &family, &qualifier)) {
        return Status::Corruption("bad cell key");
      }
      if (!spec.stop_row.empty() && row >= std::string_view(spec.stop_row)) {
        break;
      }
      if (current.row() != row) {
        finish_row();
        current = RowResult(std::string(row));
      }
      if (!spec.families.empty() &&
          std::find(spec.families.begin(), spec.families.end(), family) ==
              spec.families.end()) {
        continue;
      }
      uint64_t timestamp;
      std::string_view value;
      if (!DecodeCellValue(it->value(), &timestamp, &value)) {
        return Status::Corruption("bad cell value");
      }
      current.AddCell(Cell{std::string(family), std::string(qualifier),
                           std::string(value), timestamp});
    }
    PSTORM_RETURN_IF_ERROR(it->status());
    finish_row();
  }
  return out;
}

Status HTable::Flush() {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  for (const auto& region : regions_) {
    PSTORM_RETURN_IF_ERROR(region->db()->Flush());
  }
  return Status::OK();
}

std::vector<std::string> HTable::MetaEntries() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  std::vector<std::string> out;
  out.reserve(regions_.size());
  for (const auto& region : regions_) {
    out.push_back(schema_.name + "," + region->start_key() + "," +
                  "region_" + std::to_string(region->id()));
  }
  return out;
}

Status HTable::MaybeSplit(std::string_view row) {
  if (options_.read_only) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  // Re-find and re-check under the exclusive lock: another thread may
  // have split this key range while we were acquiring it.
  internal::Region* region = RegionForLocked(row);
  if (region->db()->ApproximateSizeBytes() < options_.region_split_bytes) {
    return Status::OK();
  }
  // The exclusive table lock excludes every writer and every *new* scan;
  // in-flight scans hold pinned snapshots and are unaffected by the data
  // movement below.

  // Find the median distinct row to split at.
  std::vector<std::string> rows;
  {
    auto it = region->db()->NewIterator();
    std::string last_row;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string_view r, family, qualifier;
      if (!DecodeCellKey(it->key(), &r, &family, &qualifier)) {
        return Status::Corruption("bad cell key");
      }
      if (r != std::string_view(last_row)) {
        last_row.assign(r);
        rows.push_back(last_row);
      }
    }
    PSTORM_RETURN_IF_ERROR(it->status());
  }
  if (rows.size() < 2) return Status::OK();  // Nothing to split.
  const std::string& split_row = rows[rows.size() / 2];

  // Create the right-hand region and move everything >= split_row into it.
  const uint64_t new_id = next_region_id_++;
  PSTORM_ASSIGN_OR_RETURN(
      auto new_region,
      internal::Region::Open(
          env_,
          storage::JoinPath(root_path_, "region_" + std::to_string(new_id)),
          split_row, new_id, options_.db_options));

  std::vector<std::string> moved_keys;
  {
    auto it = region->db()->NewIterator();
    for (it->Seek(split_row); it->Valid(); it->Next()) {
      PSTORM_RETURN_IF_ERROR(
          new_region->db()->Put(it->key(), it->value()));
      moved_keys.emplace_back(it->key());
    }
    PSTORM_RETURN_IF_ERROR(it->status());
  }
  for (const std::string& key : moved_keys) {
    PSTORM_RETURN_IF_ERROR(region->db()->Delete(key));
  }
  PSTORM_RETURN_IF_ERROR(region->db()->CompactAll());
  PSTORM_RETURN_IF_ERROR(new_region->db()->Flush());

  // Insert in start-key order.
  auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), new_region->start_key(),
      [](const std::string& key,
         const std::unique_ptr<internal::Region>& r) {
        return key < r->start_key();
      });
  regions_.insert(pos, std::move(new_region));
  obs::MetricsRegistry::Global()
      .GetCounter("pstorm_hstore_region_splits_total")
      .Increment();
  return WriteTableMetaLocked();
}

}  // namespace pstorm::hstore
