#ifndef PSTORM_HSTORE_CELL_H_
#define PSTORM_HSTORE_CELL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pstorm::hstore {

/// One versioned cell: the value at (row, family, qualifier). The store
/// keeps only the newest version of each cell; `timestamp` is the logical
/// write time of that version.
struct Cell {
  std::string family;
  std::string qualifier;
  std::string value;
  uint64_t timestamp = 0;
};

/// All cells of one row, as returned by Get and Scan.
class RowResult {
 public:
  RowResult() = default;
  explicit RowResult(std::string row) : row_(std::move(row)) {}

  const std::string& row() const { return row_; }
  bool empty() const { return cells_.empty(); }
  size_t num_cells() const { return cells_.size(); }
  const std::vector<Cell>& cells() const { return cells_; }

  void AddCell(Cell cell) { cells_.push_back(std::move(cell)); }

  /// The value at (family, qualifier), or nullptr if the row lacks it.
  const std::string* GetValue(const std::string& family,
                              const std::string& qualifier) const {
    for (const Cell& cell : cells_) {
      if (cell.family == family && cell.qualifier == qualifier) {
        return &cell.value;
      }
    }
    return nullptr;
  }

  /// qualifier -> value for one family, in qualifier order.
  std::map<std::string, std::string> FamilyMap(
      const std::string& family) const {
    std::map<std::string, std::string> out;
    for (const Cell& cell : cells_) {
      if (cell.family == family) out[cell.qualifier] = cell.value;
    }
    return out;
  }

  /// Payload bytes across all cells; the scan statistics use this to model
  /// region-server-to-client transfer volume.
  size_t PayloadBytes() const {
    size_t bytes = row_.size();
    for (const Cell& cell : cells_) {
      bytes += cell.family.size() + cell.qualifier.size() + cell.value.size();
    }
    return bytes;
  }

 private:
  std::string row_;
  std::vector<Cell> cells_;
};

}  // namespace pstorm::hstore

#endif  // PSTORM_HSTORE_CELL_H_
