#ifndef PSTORM_HSTORE_TABLE_REPLICA_H_
#define PSTORM_HSTORE_TABLE_REPLICA_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "hstore/table.h"
#include "storage/replication.h"

namespace pstorm::hstore {

/// A warm standby of a whole HTable: one storage::ReplicaSession per
/// region, plus shipping of the TABLEMETA catalog so the follower root is
/// a complete, openable table. Region splits on the primary are picked up
/// on the next Sync() — the new region's Db bootstraps from a checkpoint
/// like any fresh follower.
///
/// Consistency model: regions ship independently, so across regions the
/// follower is only eventually consistent (exactly the guarantee a
/// row-atomic HBase table gives — nothing spans regions). Within a region
/// the follower is always a committed prefix of the primary.
///
/// TABLEMETA is shipped only after every region it lists has been synced,
/// and is re-checked against a fresh snapshot so a split landing mid-sync
/// is retried rather than published half-applied. A primary that dies
/// mid-split can still leave the moved rows in both source and target
/// region on the follower until the next successful Sync (see DESIGN.md
/// §11 failure matrix); the row-level merge resolves duplicates by
/// timestamp, so reads stay correct.
struct HTableReplicaOptions {
  /// Knobs for each follower region Db (read_only_replica is forced on
  /// by the per-region ReplicaSession).
  storage::DbOptions follower_db;
  storage::ReplicationOptions replication;
  /// Rounds Sync() retries when the primary's region set keeps changing
  /// under it before giving up for this round.
  int max_meta_refresh_rounds = 4;
};

class HTableReplica {
 public:
  using Options = HTableReplicaOptions;

  /// Wires a standby rooted at `follower_root` in `follower_env` to
  /// `primary`. All pointees must outlive the replica. Performs an
  /// initial Sync so the follower is openable immediately after.
  static Result<std::unique_ptr<HTableReplica>> Open(
      HTable* primary, storage::Env* follower_env, std::string follower_root,
      Options options = {});

  ~HTableReplica();

  HTableReplica(const HTableReplica&) = delete;
  HTableReplica& operator=(const HTableReplica&) = delete;

  /// One full replication round: discover regions (including splits since
  /// the last round), catch every region's follower up to the primary,
  /// then ship the TABLEMETA those regions correspond to.
  Status Sync();

  /// Fences and promotes every region follower (epoch bump persisted in
  /// each region's manifest) and releases the directory: afterwards the
  /// follower root opens as a writable HTable and the deposed primary's
  /// shippers are rejected with FailedPrecondition. Never touches the
  /// primary — it may already be dead. The replica object is inert after.
  Status Promote();

  /// Sum of per-region lags (primary last_sequence - follower applied).
  uint64_t lag() const;
  /// Per-region replication counters summed over the table.
  storage::ReplicationStats stats() const;
  size_t num_regions() const;

 private:
  HTableReplica(HTable* primary, storage::Env* follower_env,
                std::string follower_root, Options options);

  Status SyncLocked();

  HTable* primary_;
  storage::Env* follower_env_;
  const std::string follower_root_;
  Options options_;

  mutable std::mutex mu_;
  /// Keyed by region directory name ("region_<id>"). Sessions are only
  /// ever added: the primary never removes regions.
  std::map<std::string, std::unique_ptr<storage::ReplicaSession>> sessions_;
  bool promoted_ = false;
};

}  // namespace pstorm::hstore

#endif  // PSTORM_HSTORE_TABLE_REPLICA_H_
