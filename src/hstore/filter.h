#ifndef PSTORM_HSTORE_FILTER_H_
#define PSTORM_HSTORE_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "hstore/cell.h"

namespace pstorm::hstore {

/// Server-side row predicate. Scans ship a filter to each region
/// (HBase's filter-reaching mechanism, thesis §5.3) so that rows failing
/// the predicate never cross the region/client boundary. Clients may
/// subclass this to push down arbitrary predicates — the PStorM matcher
/// pushes its Euclidean-distance stage down this way.
class RowFilter {
 public:
  virtual ~RowFilter() = default;

  /// True if the row should be returned to the client.
  virtual bool Matches(const RowResult& row) const = 0;

  /// Human-readable description for diagnostics.
  virtual std::string Describe() const = 0;
};

/// Matches rows whose row key starts with a prefix. With the PStorM data
/// model the feature type is the row-key prefix, so "scan only dynamic
/// features" is a prefix filter.
class PrefixFilter final : public RowFilter {
 public:
  explicit PrefixFilter(std::string prefix) : prefix_(std::move(prefix)) {}
  bool Matches(const RowResult& row) const override;
  std::string Describe() const override { return "prefix(" + prefix_ + ")"; }

 private:
  std::string prefix_;
};

enum class CompareOp { kEqual, kNotEqual, kLess, kLessOrEqual, kGreater,
                       kGreaterOrEqual };

/// Compares one column's value against a constant, as bytes. Rows missing
/// the column do not match.
class ColumnValueFilter final : public RowFilter {
 public:
  ColumnValueFilter(std::string family, std::string qualifier, CompareOp op,
                    std::string operand)
      : family_(std::move(family)),
        qualifier_(std::move(qualifier)),
        op_(op),
        operand_(std::move(operand)) {}

  bool Matches(const RowResult& row) const override;
  std::string Describe() const override;

 private:
  std::string family_;
  std::string qualifier_;
  CompareOp op_;
  std::string operand_;
};

/// Conjunction of filters; matches when every child matches.
class AndFilter final : public RowFilter {
 public:
  explicit AndFilter(std::vector<std::shared_ptr<const RowFilter>> children)
      : children_(std::move(children)) {}

  bool Matches(const RowResult& row) const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const RowFilter>> children_;
};

}  // namespace pstorm::hstore

#endif  // PSTORM_HSTORE_FILTER_H_
