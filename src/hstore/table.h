#ifndef PSTORM_HSTORE_TABLE_H_
#define PSTORM_HSTORE_TABLE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "hstore/cell.h"
#include "hstore/filter.h"
#include "storage/db.h"
#include "storage/env.h"

namespace pstorm::hstore {

/// Name and column families of a table. As in HBase, the set of column
/// families is fixed at table creation — the constraint that drives the
/// PStorM row-key design (feature type as a row-key prefix instead of a
/// column family, thesis §5.1).
struct TableSchema {
  std::string name;
  std::vector<std::string> families;
};

/// A batch of cells written to one row.
class PutOp {
 public:
  explicit PutOp(std::string row) : row_(std::move(row)) {}

  PutOp& Add(std::string family, std::string qualifier, std::string value) {
    cells_.push_back({std::move(family), std::move(qualifier),
                      std::move(value), 0});
    return *this;
  }

  const std::string& row() const { return row_; }
  const std::vector<Cell>& cells() const { return cells_; }

 private:
  std::string row_;
  std::vector<Cell> cells_;
};

/// A range scan with optional server-side filter.
struct ScanSpec {
  /// Scans [start_row, stop_row); empty stop_row means "to the end".
  std::string start_row;
  std::string stop_row;
  /// Restrict the result to these families (empty = all).
  std::vector<std::string> families;
  /// Predicate evaluated at each region before rows are shipped back.
  std::shared_ptr<const RowFilter> filter;
  /// When false the filter is evaluated at the client instead, so every
  /// scanned row is "transferred" first. Exists to measure the benefit of
  /// HBase's filter pushdown (thesis §5.3).
  bool server_side_filtering = true;
};

/// Observed work for one scan; the pushdown ablation benchmark reads these.
/// Scan accumulates into a local instance and assigns the caller's struct
/// once at the end, so a completed Scan's stats are never torn.
struct ScanStats {
  uint64_t regions_visited = 0;
  uint64_t rows_scanned = 0;
  /// Rows crossing the region->client boundary (equals rows_scanned when
  /// filtering client-side).
  uint64_t rows_transferred = 0;
  uint64_t rows_returned = 0;
  uint64_t bytes_transferred = 0;
  /// Regions whose store was unreadable at table open and was recovered
  /// empty (their rows are gone from every scan; see
  /// HTable::region_open_errors for the diagnoses).
  uint64_t regions_recovered_empty = 0;
};

struct HTableOptions {
  /// Approximate per-region payload size that triggers a region split.
  size_t region_split_bytes = 8u << 20;
  /// Open every region as a read-only replica: Put/DeleteRow return
  /// FailedPrecondition, region splits never run, and the underlying Dbs
  /// are fenced (db_options.read_only_replica is forced on). This is how a
  /// warm standby serves reads while an HTableReplica tails the primary —
  /// and how a promoted follower is inspected before taking writes.
  /// Opening a table that does not exist yet in read-only mode fails.
  bool read_only = false;
  storage::DbOptions db_options;
};

namespace internal {
class Region;
}  // namespace internal

/// A range-partitioned, column-family table in the HBase data model,
/// backed by one storage::Db per region. Region splits happen
/// automatically as data grows.
///
/// Thread-safety contract: every method may be called from any number of
/// threads concurrently. Reads (Get/Scan) pin per-region snapshot
/// iterators and run without blocking writers; writes serialize per
/// region (striped locking), so rows in different regions write in
/// parallel. A region split takes the table lock exclusively only for the
/// duration of the split itself; scans already in flight keep reading
/// their pinned snapshots and are not blocked. Lock order: table lock →
/// region stripe → the region Db's internal locks.
class HTable {
 public:
  /// Creates or reopens the table rooted at `root_path` inside `env` (which
  /// must outlive the table). Reopening validates that `schema` matches.
  /// A region whose store is unreadable is quarantined and recovered empty
  /// rather than failing the open; see region_open_errors().
  static Result<std::unique_ptr<HTable>> Open(storage::Env* env,
                                              std::string root_path,
                                              TableSchema schema,
                                              HTableOptions options = {});
  ~HTable();

  HTable(const HTable&) = delete;
  HTable& operator=(const HTable&) = delete;

  /// Writes all cells of `put` atomically-per-row: a concurrent Get or
  /// Scan sees either none or all of them. Fails if a cell names an
  /// unknown column family, or if any key part contains a NUL byte.
  Status Put(const PutOp& put);

  /// All cells of `row`; NotFound when the row does not exist.
  Result<RowResult> Get(std::string_view row) const;

  /// Deletes every cell of `row` (idempotent, atomic-per-row).
  Status DeleteRow(std::string_view row);

  /// Rows of [spec.start_row, spec.stop_row) passing the filter, in row
  /// order. `stats` (optional) receives the work accounting. The scan
  /// observes a point-in-time snapshot of every visited region, taken
  /// atomically with respect to region splits.
  Result<std::vector<RowResult>> Scan(const ScanSpec& spec,
                                      ScanStats* stats = nullptr) const;

  /// Persists buffered writes in every region.
  Status Flush();

  /// Blocks until no region has background maintenance queued or running
  /// (no-op without DbOptions::maintenance_pool) and returns the first
  /// latched background error, if any. Quiesce before measuring or
  /// tearing down.
  Status WaitForIdle() const;

  /// .META.-style catalog rows: "<table>,<start_key>,<region_id>" in region
  /// order, mirroring the thesis §5.2.2 discussion.
  std::vector<std::string> MetaEntries() const;

  const TableSchema& schema() const { return schema_; }
  size_t num_regions() const;

  /// One human-readable diagnosis per region whose store failed to open
  /// and was quarantined + recovered empty (see Open). Scans also report
  /// the count as ScanStats::regions_recovered_empty. Immutable after
  /// Open.
  const std::vector<std::string>& region_open_errors() const {
    return region_open_errors_;
  }

  /// Per-region storage counters summed over the whole table — the
  /// quarantined-file, WAL-recovery, and replication counts roll up here
  /// (epoch is the max across regions; is_replica is set when any region
  /// is a replica).
  storage::DbStats AggregatedDbStats() const;

  /// Point-in-time view of the table for a replication session: the
  /// serialized TABLEMETA bytes plus one (region directory name, Db*) pair
  /// per region, in start-key order. Taken under the table lock, so the
  /// meta bytes and the region list are mutually consistent. The Db
  /// pointers stay valid for the table's lifetime (splits only ever add
  /// regions), but the list itself goes stale as soon as a split lands —
  /// replication re-snapshots every sync round.
  struct ReplicationSnapshot {
    std::string table_meta;
    struct RegionRef {
      std::string dir_name;  // "region_<id>", relative to the table root.
      storage::Db* db;
    };
    std::vector<RegionRef> regions;
  };
  ReplicationSnapshot GetReplicationSnapshot() const;

 private:
  HTable(storage::Env* env, std::string root_path, TableSchema schema,
         HTableOptions options);

  Status ValidateKeyParts(const PutOp& put) const;
  /// Requires table_mu_ held (shared suffices: the region list is stable).
  internal::Region* RegionForLocked(std::string_view row) const;
  /// Takes table_mu_ exclusively, re-finds the region covering `row`, and
  /// splits it if it is (still) over the threshold.
  Status MaybeSplit(std::string_view row);
  /// Requires table_mu_ held (shared suffices — only reads the region
  /// list and the clock).
  std::string SerializeTableMetaLocked() const;
  /// Requires table_mu_ held exclusively (or Open-time single-threading).
  Status WriteTableMetaLocked();
  Status LoadTableMeta();

  storage::Env* env_;
  std::string root_path_;
  TableSchema schema_;
  HTableOptions options_;
  /// Cell-version clock; fetch_add gives each row-put a unique timestamp.
  std::atomic<uint64_t> logical_clock_{0};

  /// Guards the region list's *shape*. Shared: everything that looks up
  /// or enumerates regions (Put/Get/Scan/Flush/stats). Exclusive: region
  /// splits only.
  mutable std::shared_mutex table_mu_;
  uint64_t next_region_id_ = 0;  // Guarded by exclusive table_mu_ (+ Open).
  /// Sorted by start key; region i covers [start_i, start_{i+1}).
  std::vector<std::unique_ptr<internal::Region>> regions_;
  std::vector<std::string> region_open_errors_;
};

}  // namespace pstorm::hstore

#endif  // PSTORM_HSTORE_TABLE_H_
