#include "hstore/filter.h"

#include "common/strings.h"

namespace pstorm::hstore {

bool PrefixFilter::Matches(const RowResult& row) const {
  return StartsWith(row.row(), prefix_);
}

namespace {
const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEqual:
      return "==";
    case CompareOp::kNotEqual:
      return "!=";
    case CompareOp::kLess:
      return "<";
    case CompareOp::kLessOrEqual:
      return "<=";
    case CompareOp::kGreater:
      return ">";
    case CompareOp::kGreaterOrEqual:
      return ">=";
  }
  return "?";
}
}  // namespace

bool ColumnValueFilter::Matches(const RowResult& row) const {
  const std::string* value = row.GetValue(family_, qualifier_);
  if (value == nullptr) return false;
  const int cmp = value->compare(operand_);
  switch (op_) {
    case CompareOp::kEqual:
      return cmp == 0;
    case CompareOp::kNotEqual:
      return cmp != 0;
    case CompareOp::kLess:
      return cmp < 0;
    case CompareOp::kLessOrEqual:
      return cmp <= 0;
    case CompareOp::kGreater:
      return cmp > 0;
    case CompareOp::kGreaterOrEqual:
      return cmp >= 0;
  }
  return false;
}

std::string ColumnValueFilter::Describe() const {
  return family_ + ":" + qualifier_ + " " + OpName(op_) + " " + operand_;
}

bool AndFilter::Matches(const RowResult& row) const {
  for (const auto& child : children_) {
    if (!child->Matches(row)) return false;
  }
  return true;
}

std::string AndFilter::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& child : children_) parts.push_back(child->Describe());
  return "and(" + StrJoin(parts, ", ") + ")";
}

}  // namespace pstorm::hstore
