#include "hstore/table_replica.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace pstorm::hstore {

namespace {

obs::Counter& TableMetaShips() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_hstore_replica_meta_ships_total");
  return c;
}

}  // namespace

HTableReplica::HTableReplica(HTable* primary, storage::Env* follower_env,
                             std::string follower_root, Options options)
    : primary_(primary),
      follower_env_(follower_env),
      follower_root_(std::move(follower_root)),
      options_(std::move(options)) {}

HTableReplica::~HTableReplica() = default;

Result<std::unique_ptr<HTableReplica>> HTableReplica::Open(
    HTable* primary, storage::Env* follower_env, std::string follower_root,
    Options options) {
  PSTORM_CHECK(primary != nullptr);
  PSTORM_CHECK(follower_env != nullptr);
  auto replica = std::unique_ptr<HTableReplica>(new HTableReplica(
      primary, follower_env, std::move(follower_root), options));
  PSTORM_RETURN_IF_ERROR(
      follower_env->CreateDir(replica->follower_root_));
  PSTORM_RETURN_IF_ERROR(replica->Sync());
  return replica;
}

Status HTableReplica::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (promoted_) {
    return Status::FailedPrecondition("htable replica already promoted");
  }
  return SyncLocked();
}

Status HTableReplica::SyncLocked() {
  // A split can land between snapshotting the region list and finishing
  // the per-region catch-up; publishing the old snapshot's meta then would
  // be fine (it lists only synced regions), but we would miss the new
  // region until the next Sync. Re-snapshot and go again while the layout
  // keeps moving, bounded so a split storm cannot wedge the caller.
  HTable::ReplicationSnapshot snap = primary_->GetReplicationSnapshot();
  for (int round = 0; round < options_.max_meta_refresh_rounds; ++round) {
    for (const auto& region : snap.regions) {
      auto it = sessions_.find(region.dir_name);
      if (it == sessions_.end()) {
        storage::ReplicaSession::Options session_options;
        session_options.follower_db = options_.follower_db;
        session_options.replication = options_.replication;
        PSTORM_ASSIGN_OR_RETURN(
            auto session,
            storage::ReplicaSession::Open(
                region.db, follower_env_,
                storage::JoinPath(follower_root_, region.dir_name),
                session_options));
        it = sessions_.emplace(region.dir_name, std::move(session)).first;
      }
      PSTORM_RETURN_IF_ERROR(it->second->CatchUp());
    }
    HTable::ReplicationSnapshot after = primary_->GetReplicationSnapshot();
    if (after.table_meta == snap.table_meta) break;
    snap = std::move(after);
  }
  // Ship the meta matching the regions just synced. Every region it lists
  // has a session (snap only grows across rounds), so the follower root is
  // openable the moment this lands. WriteFile is atomic, so a crash here
  // leaves the previous meta intact.
  PSTORM_RETURN_IF_ERROR(follower_env_->WriteFile(
      storage::JoinPath(follower_root_, "TABLEMETA"), snap.table_meta));
  TableMetaShips().Increment();
  return Status::OK();
}

Status HTableReplica::Promote() {
  std::lock_guard<std::mutex> lock(mu_);
  if (promoted_) {
    return Status::FailedPrecondition("htable replica already promoted");
  }
  if (sessions_.empty()) {
    return Status::FailedPrecondition(
        "htable replica has no regions to promote");
  }
  // Promote every region: each bumps its epoch durably and hands back the
  // now-writable Db, which we close immediately — the caller reopens the
  // follower root as a normal HTable. Deliberately no primary contact.
  for (auto& [dir_name, session] : sessions_) {
    auto promoted = session->Promote();
    if (!promoted.ok()) {
      return Status(promoted.status().code(),
                    "promote " + dir_name + ": " +
                        std::string(promoted.status().message()));
    }
    // The unique_ptr<Db> goes out of scope here: clean close, WAL intact.
  }
  sessions_.clear();
  promoted_ = true;
  PSTORM_LOG(Info) << "htable replica " << follower_root_
                   << ": promoted to primary";
  return Status::OK();
}

uint64_t HTableReplica::lag() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, session] : sessions_) total += session->lag();
  return total;
}

storage::ReplicationStats HTableReplica::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  storage::ReplicationStats total;
  for (const auto& [_, session] : sessions_) {
    const storage::ReplicationStats s = session->stats();
    total.ship_rounds += s.ship_rounds;
    total.shipped_batches += s.shipped_batches;
    total.shipped_records += s.shipped_records;
    total.shipped_bytes += s.shipped_bytes;
    total.checkpoint_ships += s.checkpoint_ships;
    total.applied_batches += s.applied_batches;
    total.applied_records += s.applied_records;
    total.overlap_records_skipped += s.overlap_records_skipped;
    total.retries += s.retries;
    total.fence_rejections += s.fence_rejections;
    total.divergences += s.divergences;
  }
  return total;
}

size_t HTableReplica::num_regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace pstorm::hstore
