#include "rpc/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pstorm::rpc {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                size_t max_frame_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, max_frame_bytes));
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status Client::SendRaw(const std::string& frame) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const char* p = frame.data();
  size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send: " + std::string(std::strerror(errno)));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<ResponseFrame> Client::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  while (true) {
    ParsedMessage msg;
    const FrameParseResult result =
        ParseFrame(read_buf_, max_frame_bytes_, &msg);
    if (result == FrameParseResult::kOk) {
      read_buf_.erase(0, msg.frame_size);
      if (msg.kind != MessageKind::kResponse) {
        return Status::Corruption("server sent a request frame");
      }
      return std::move(msg.response);
    }
    if (result == FrameParseResult::kBad) {
      return Status::Corruption("bad frame from server: " + msg.error);
    }
    char buf[64 << 10];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      read_buf_.append(buf, n);
      continue;
    }
    if (n == 0) {
      return Status::IoError("server closed the connection");
    }
    if (errno == EINTR) continue;
    return Status::IoError("read: " + std::string(std::strerror(errno)));
  }
}

Result<ResponseFrame> Client::Call(Method method, std::string body) {
  RequestFrame request;
  request.request_id = next_request_id_++;
  request.method = method;
  request.body = std::move(body);
  PSTORM_RETURN_IF_ERROR(SendRaw(EncodeRequestFrame(request)));
  // One call in flight at a time, so the next response is ours; a mismatch
  // means the stream lost sync.
  PSTORM_ASSIGN_OR_RETURN(ResponseFrame response, ReadResponse());
  if (response.request_id != request.request_id) {
    return Status::Corruption("response id " +
                              std::to_string(response.request_id) +
                              " does not match request id " +
                              std::to_string(request.request_id));
  }
  return response;
}

Result<std::string> Client::Echo(const std::string& payload) {
  PSTORM_ASSIGN_OR_RETURN(ResponseFrame response,
                          Call(Method::kEcho, payload));
  PSTORM_RETURN_IF_ERROR(ResponseStatus(response));
  return std::move(response.body);
}

Result<SubmitJobResponse> Client::SubmitJob(const SubmitJobRequest& request) {
  PSTORM_ASSIGN_OR_RETURN(
      ResponseFrame response,
      Call(Method::kSubmitJob, EncodeSubmitJobRequest(request)));
  PSTORM_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeSubmitJobResponse(response.body);
}

Status Client::PutProfile(const PutProfileRequest& request) {
  PSTORM_ASSIGN_OR_RETURN(
      ResponseFrame response,
      Call(Method::kPutProfile, EncodePutProfileRequest(request)));
  return ResponseStatus(response);
}

Result<GetStatsResponse> Client::GetStats() {
  PSTORM_ASSIGN_OR_RETURN(ResponseFrame response,
                          Call(Method::kGetStats, std::string()));
  PSTORM_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeGetStatsResponse(response.body);
}

Result<std::string> Client::Dump() {
  PSTORM_ASSIGN_OR_RETURN(ResponseFrame response,
                          Call(Method::kDump, std::string()));
  PSTORM_RETURN_IF_ERROR(ResponseStatus(response));
  return std::move(response.body);
}

}  // namespace pstorm::rpc
