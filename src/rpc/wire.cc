#include "rpc/wire.h"

#include <bit>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "staticanalysis/cfg.h"

namespace pstorm::rpc {
namespace {

// Same truncated-FNV checksum the WAL uses for its frames (storage/wal.cc):
// one hash function per process, and the WAL's torn-tail tests already
// characterize its error detection.
uint32_t PayloadChecksum(std::string_view payload) {
  return static_cast<uint32_t>(Fnv1a64(payload));
}

// Doubles travel as their IEEE-754 bit pattern so a tuning decision
// round-trips bit-identically (the integration test compares serialized
// outcomes byte for byte).
void PutDouble(std::string* dst, double value) {
  PutFixed64(dst, std::bit_cast<uint64_t>(value));
}

bool GetDouble(std::string_view* input, double* value) {
  if (input->size() < 8) return false;
  *value = std::bit_cast<double>(DecodeFixed64(input->data()));
  input->remove_prefix(8);
  return true;
}

bool GetByte(std::string_view* input, uint8_t* value) {
  if (input->empty()) return false;
  *value = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  return true;
}

void PutBool(std::string* dst, bool value) {
  dst->push_back(value ? '\x01' : '\x00');
}

bool GetBool(std::string_view* input, bool* value) {
  uint8_t b;
  if (!GetByte(input, &b) || b > 1) return false;
  *value = (b == 1);
  return true;
}

// Signed ints in the config are all small and non-negative in practice, but
// the cast round-trip is total either way.
void PutInt(std::string* dst, int value) {
  PutVarint64(dst, static_cast<uint64_t>(static_cast<int64_t>(value)));
}

bool GetInt(std::string_view* input, int* value) {
  uint64_t v;
  if (!GetVarint64(input, &v)) return false;
  *value = static_cast<int>(static_cast<int64_t>(v));
  return true;
}

bool GetString(std::string_view* input, std::string* value) {
  std::string_view v;
  if (!GetLengthPrefixed(input, &v)) return false;
  value->assign(v);
  return true;
}

void PutConfiguration(std::string* dst, const mrsim::Configuration& c) {
  PutDouble(dst, c.io_sort_mb);
  PutDouble(dst, c.io_sort_record_percent);
  PutDouble(dst, c.io_sort_spill_percent);
  PutInt(dst, c.io_sort_factor);
  PutBool(dst, c.use_combiner);
  PutInt(dst, c.min_num_spills_for_combine);
  PutBool(dst, c.compress_map_output);
  PutDouble(dst, c.reduce_slowstart_completed_maps);
  PutInt(dst, c.num_reduce_tasks);
  PutDouble(dst, c.shuffle_input_buffer_percent);
  PutDouble(dst, c.shuffle_merge_percent);
  PutInt(dst, c.inmem_merge_threshold);
  PutDouble(dst, c.reduce_input_buffer_percent);
  PutBool(dst, c.compress_output);
}

bool GetConfiguration(std::string_view* input, mrsim::Configuration* c) {
  return GetDouble(input, &c->io_sort_mb) &&
         GetDouble(input, &c->io_sort_record_percent) &&
         GetDouble(input, &c->io_sort_spill_percent) &&
         GetInt(input, &c->io_sort_factor) &&
         GetBool(input, &c->use_combiner) &&
         GetInt(input, &c->min_num_spills_for_combine) &&
         GetBool(input, &c->compress_map_output) &&
         GetDouble(input, &c->reduce_slowstart_completed_maps) &&
         GetInt(input, &c->num_reduce_tasks) &&
         GetDouble(input, &c->shuffle_input_buffer_percent) &&
         GetDouble(input, &c->shuffle_merge_percent) &&
         GetInt(input, &c->inmem_merge_threshold) &&
         GetDouble(input, &c->reduce_input_buffer_percent) &&
         GetBool(input, &c->compress_output);
}

void PutDataSetSpec(std::string* dst, const mrsim::DataSetSpec& d) {
  PutLengthPrefixed(dst, d.name);
  PutVarint64(dst, d.size_bytes);
  PutDouble(dst, d.avg_record_bytes);
  PutVarint64(dst, d.split_bytes);
  PutDouble(dst, d.compress_ratio);
  PutDouble(dst, d.vocabulary_mb);
}

bool GetDataSetSpec(std::string_view* input, mrsim::DataSetSpec* d) {
  return GetString(input, &d->name) && GetVarint64(input, &d->size_bytes) &&
         GetDouble(input, &d->avg_record_bytes) &&
         GetVarint64(input, &d->split_bytes) &&
         GetDouble(input, &d->compress_ratio) &&
         GetDouble(input, &d->vocabulary_mb);
}

void PutStringList(std::string* dst, const std::vector<std::string>& list) {
  PutVarint32(dst, static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) PutLengthPrefixed(dst, s);
}

bool GetStringList(std::string_view* input, std::vector<std::string>* list) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  // A hostile count cannot exceed what the bytes could actually hold: each
  // element costs at least its one-byte length prefix.
  if (n > input->size()) return false;
  list->clear();
  list->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(input, &s)) return false;
    list->push_back(std::move(s));
  }
  return true;
}

// StaticFeatures travels as its eleven categorical strings, the two CFGs in
// their existing SerializeCfg text form, and the §7.2 extension fields.
void PutStaticFeatures(std::string* dst,
                       const staticanalysis::StaticFeatures& f) {
  PutLengthPrefixed(dst, f.in_formatter);
  PutLengthPrefixed(dst, f.mapper);
  PutLengthPrefixed(dst, f.map_in_key);
  PutLengthPrefixed(dst, f.map_in_val);
  PutLengthPrefixed(dst, f.map_out_key);
  PutLengthPrefixed(dst, f.map_out_val);
  PutLengthPrefixed(dst, f.combiner);
  PutLengthPrefixed(dst, staticanalysis::SerializeCfg(f.map_cfg));
  PutLengthPrefixed(dst, f.reducer);
  PutLengthPrefixed(dst, f.red_out_key);
  PutLengthPrefixed(dst, f.red_out_val);
  PutLengthPrefixed(dst, f.out_formatter);
  PutLengthPrefixed(dst, staticanalysis::SerializeCfg(f.reduce_cfg));
  PutLengthPrefixed(dst, f.user_params);
  PutStringList(dst, f.map_calls);
  PutStringList(dst, f.reduce_calls);
}

bool GetStaticFeatures(std::string_view* input,
                       staticanalysis::StaticFeatures* f) {
  std::string map_cfg_text;
  std::string reduce_cfg_text;
  if (!(GetString(input, &f->in_formatter) && GetString(input, &f->mapper) &&
        GetString(input, &f->map_in_key) && GetString(input, &f->map_in_val) &&
        GetString(input, &f->map_out_key) &&
        GetString(input, &f->map_out_val) && GetString(input, &f->combiner) &&
        GetString(input, &map_cfg_text) && GetString(input, &f->reducer) &&
        GetString(input, &f->red_out_key) &&
        GetString(input, &f->red_out_val) &&
        GetString(input, &f->out_formatter) &&
        GetString(input, &reduce_cfg_text) &&
        GetString(input, &f->user_params) &&
        GetStringList(input, &f->map_calls) &&
        GetStringList(input, &f->reduce_calls))) {
    return false;
  }
  Result<staticanalysis::Cfg> map_cfg = staticanalysis::ParseCfg(map_cfg_text);
  Result<staticanalysis::Cfg> reduce_cfg =
      staticanalysis::ParseCfg(reduce_cfg_text);
  if (!map_cfg.ok() || !reduce_cfg.ok()) return false;
  f->map_cfg = std::move(map_cfg).value();
  f->reduce_cfg = std::move(reduce_cfg).value();
  return true;
}

std::string SealFrame(std::string payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, PayloadChecksum(payload));
  frame.append(payload);
  return frame;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated or malformed ") +
                                 what + " body");
}

}  // namespace

std::string EncodeRequestFrame(const RequestFrame& frame) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(MessageKind::kRequest));
  PutVarint64(&payload, frame.request_id);
  payload.push_back(static_cast<char>(frame.method));
  PutLengthPrefixed(&payload, frame.body);
  return SealFrame(std::move(payload));
}

std::string EncodeResponseFrame(const ResponseFrame& frame) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireVersion));
  payload.push_back(static_cast<char>(MessageKind::kResponse));
  PutVarint64(&payload, frame.request_id);
  payload.push_back(static_cast<char>(frame.code));
  PutLengthPrefixed(&payload, frame.message);
  PutLengthPrefixed(&payload, frame.body);
  return SealFrame(std::move(payload));
}

ResponseFrame ErrorResponse(uint64_t request_id, const Status& status) {
  ResponseFrame frame;
  frame.request_id = request_id;
  frame.code = status.code();
  frame.message = status.message();
  return frame;
}

Status ResponseStatus(const ResponseFrame& frame) {
  if (frame.code == StatusCode::kOk) return Status::OK();
  return Status(frame.code, frame.message);
}

FrameParseResult ParseFrame(std::string_view buf, size_t max_frame_bytes,
                            ParsedMessage* out) {
  *out = ParsedMessage{};
  if (buf.size() < kFrameHeaderSize) return FrameParseResult::kNeedMore;
  const uint32_t payload_len = DecodeFixed32(buf.data());
  if (payload_len > max_frame_bytes) {
    // Reject from the length prefix alone: a hostile prefix must not make
    // the connection buffer the declared bytes first.
    out->error = "oversized frame: " + std::to_string(payload_len) + " > " +
                 std::to_string(max_frame_bytes);
    return FrameParseResult::kBad;
  }
  const uint32_t checksum = DecodeFixed32(buf.data() + 4);
  if (buf.size() < kFrameHeaderSize + payload_len) {
    return FrameParseResult::kNeedMore;
  }
  const std::string_view payload = buf.substr(kFrameHeaderSize, payload_len);
  if (PayloadChecksum(payload) != checksum) {
    out->error = "bad frame checksum";
    return FrameParseResult::kBad;
  }
  out->frame_size = kFrameHeaderSize + payload_len;
  // The checksum passed: any failure beyond this point is an intact frame
  // with unusable content, which merits one error response before close.
  out->respond_before_close = true;

  std::string_view rest = payload;
  uint8_t version;
  uint8_t kind;
  if (!GetByte(&rest, &version) || !GetByte(&rest, &kind)) {
    out->error = "short payload";
    return FrameParseResult::kBad;
  }
  if (version != kWireVersion) {
    // An intact frame from a future peer: the payload layout beyond the
    // version byte is unknown, so no request id to echo.
    out->error = "unsupported wire version " + std::to_string(version);
    return FrameParseResult::kBad;
  }
  uint64_t request_id;
  if (!GetVarint64(&rest, &request_id)) {
    out->error = "bad request id";
    return FrameParseResult::kBad;
  }
  out->bad_request_id = request_id;

  if (kind == static_cast<uint8_t>(MessageKind::kRequest)) {
    out->kind = MessageKind::kRequest;
    RequestFrame& req = out->request;
    req.request_id = request_id;
    uint8_t method;
    std::string_view body;
    if (!GetByte(&rest, &method) ||
        method < static_cast<uint8_t>(Method::kEcho) ||
        method > static_cast<uint8_t>(Method::kDump)) {
      out->error = "bad method";
      return FrameParseResult::kBad;
    }
    if (!GetLengthPrefixed(&rest, &body) || !rest.empty()) {
      out->error = "malformed request body";
      return FrameParseResult::kBad;
    }
    req.method = static_cast<Method>(method);
    req.body.assign(body);
    out->bad_request_id = 0;
    return FrameParseResult::kOk;
  }
  if (kind == static_cast<uint8_t>(MessageKind::kResponse)) {
    out->kind = MessageKind::kResponse;
    ResponseFrame& resp = out->response;
    resp.request_id = request_id;
    uint8_t code;
    std::string_view message;
    std::string_view body;
    if (!GetByte(&rest, &code) ||
        code > static_cast<uint8_t>(StatusCode::kIoError)) {
      out->error = "bad status code";
      return FrameParseResult::kBad;
    }
    if (!GetLengthPrefixed(&rest, &message) ||
        !GetLengthPrefixed(&rest, &body) || !rest.empty()) {
      out->error = "malformed response body";
      return FrameParseResult::kBad;
    }
    resp.code = static_cast<StatusCode>(code);
    resp.message.assign(message);
    resp.body.assign(body);
    out->bad_request_id = 0;
    return FrameParseResult::kOk;
  }
  out->error = "bad message kind " + std::to_string(kind);
  return FrameParseResult::kBad;
}

// ---- Method bodies -------------------------------------------------------

std::string EncodeSubmitJobRequest(const SubmitJobRequest& request) {
  std::string body;
  PutLengthPrefixed(&body, request.tenant);
  PutLengthPrefixed(&body, request.job_name);
  PutDouble(&body, request.job_param);
  PutDataSetSpec(&body, request.data);
  PutConfiguration(&body, request.submitted);
  PutVarint64(&body, request.seed);
  return body;
}

Result<SubmitJobRequest> DecodeSubmitJobRequest(std::string_view body) {
  SubmitJobRequest request;
  if (!(GetString(&body, &request.tenant) &&
        GetString(&body, &request.job_name) &&
        GetDouble(&body, &request.job_param) &&
        GetDataSetSpec(&body, &request.data) &&
        GetConfiguration(&body, &request.submitted) &&
        GetVarint64(&body, &request.seed) && body.empty())) {
    return Truncated("SubmitJobRequest");
  }
  return request;
}

std::string EncodeSubmitJobResponse(const SubmitJobResponse& response) {
  std::string body;
  PutBool(&body, response.matched);
  PutBool(&body, response.composite);
  PutBool(&body, response.stored_new_profile);
  PutLengthPrefixed(&body, response.profile_source);
  PutConfiguration(&body, response.config_used);
  PutDouble(&body, response.runtime_s);
  PutDouble(&body, response.sample_runtime_s);
  PutDouble(&body, response.predicted_runtime_s);
  PutVarint32(&body, response.shard);
  return body;
}

Result<SubmitJobResponse> DecodeSubmitJobResponse(std::string_view body) {
  SubmitJobResponse response;
  if (!(GetBool(&body, &response.matched) &&
        GetBool(&body, &response.composite) &&
        GetBool(&body, &response.stored_new_profile) &&
        GetString(&body, &response.profile_source) &&
        GetConfiguration(&body, &response.config_used) &&
        GetDouble(&body, &response.runtime_s) &&
        GetDouble(&body, &response.sample_runtime_s) &&
        GetDouble(&body, &response.predicted_runtime_s) &&
        GetVarint32(&body, &response.shard) && body.empty())) {
    return Truncated("SubmitJobResponse");
  }
  return response;
}

std::string EncodePutProfileRequest(const PutProfileRequest& request) {
  std::string body;
  PutLengthPrefixed(&body, request.tenant);
  PutLengthPrefixed(&body, request.job_key);
  PutLengthPrefixed(&body, request.profile_text);
  PutStaticFeatures(&body, request.statics);
  return body;
}

Result<PutProfileRequest> DecodePutProfileRequest(std::string_view body) {
  PutProfileRequest request;
  if (!(GetString(&body, &request.tenant) &&
        GetString(&body, &request.job_key) &&
        GetString(&body, &request.profile_text) &&
        GetStaticFeatures(&body, &request.statics) && body.empty())) {
    return Truncated("PutProfileRequest");
  }
  return request;
}

std::string EncodeGetStatsResponse(const GetStatsResponse& response) {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(response.shards.size()));
  for (const ShardStatsEntry& shard : response.shards) {
    PutVarint32(&body, shard.shard);
    PutLengthPrefixed(&body, shard.start_key);
    PutVarint64(&body, shard.num_profiles);
    PutVarint64(&body, shard.submissions);
  }
  PutVarint64(&body, response.requests_served);
  PutVarint64(&body, response.backpressure_rejections);
  PutVarint64(&body, response.quota_rejections);
  return body;
}

Result<GetStatsResponse> DecodeGetStatsResponse(std::string_view body) {
  GetStatsResponse response;
  uint32_t n;
  if (!GetVarint32(&body, &n) || n > body.size()) {
    return Truncated("GetStatsResponse");
  }
  response.shards.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardStatsEntry shard;
    if (!(GetVarint32(&body, &shard.shard) &&
          GetString(&body, &shard.start_key) &&
          GetVarint64(&body, &shard.num_profiles) &&
          GetVarint64(&body, &shard.submissions))) {
      return Truncated("GetStatsResponse");
    }
    response.shards.push_back(shard);
  }
  if (!(GetVarint64(&body, &response.requests_served) &&
        GetVarint64(&body, &response.backpressure_rejections) &&
        GetVarint64(&body, &response.quota_rejections) && body.empty())) {
    return Truncated("GetStatsResponse");
  }
  return response;
}

}  // namespace pstorm::rpc
