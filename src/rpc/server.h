#ifndef PSTORM_RPC_SERVER_H_
#define PSTORM_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "rpc/shard_router.h"
#include "rpc/wire.h"

namespace pstorm::rpc {

struct ServerOptions {
  /// Loopback by default: pstorm_server has no authentication layer, so
  /// binding a public interface is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned; read the bound port back with port().
  uint16_t port = 0;
  /// Worker threads decoding bodies and running submissions. The reactor
  /// thread is separate and never blocks on PStorM.
  size_t num_workers = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Global admission bound: requests accepted (parsed and queued or
  /// running) across all connections. Beyond it the server answers
  /// kResourceExhausted immediately instead of buffering without bound —
  /// the network edge of the PR-5 slowdown/stall admission ladder.
  size_t max_inflight_requests = 64;
  /// Per-connection bound on parsed requests waiting for a worker. One
  /// pipelining client saturates at this depth and gets backpressure
  /// instead of starving every other connection.
  size_t max_pending_per_connection = 16;
  /// Ceiling on one connection's unflushed response bytes; a peer that
  /// stops reading gets disconnected rather than buffered indefinitely.
  size_t max_write_buffer_bytes = 8u << 20;
};

/// Binary-framed RPC server over TCP: one epoll reactor thread owns every
/// socket; a small worker pool runs the PStorM work. Requests parsed off a
/// connection are batched — the reactor hands a worker everything pending
/// on that connection at once, and at most one worker task per connection
/// runs at a time, so responses go back in request order and submissions
/// from one stream never race each other (submissions from different
/// connections do, exactly like concurrent in-process SubmitJob calls).
///
/// Workers never touch sockets: they get request values in, and hand
/// encoded response bytes back through a completion queue the reactor
/// drains on an eventfd wakeup. All socket state stays single-threaded on
/// the reactor, which is what makes the shutdown path and the
/// malformed-frame handling easy to reason about.
class Server {
 public:
  /// Binds, listens, and starts the reactor + workers. `router` must
  /// outlive the server.
  static Result<std::unique_ptr<Server>> Start(ShardRouter* router,
                                               ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, closes every connection, and joins the reactor and
  /// workers. In-flight worker batches finish (their responses are
  /// dropped). Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t backpressure_rejections() const {
    return backpressure_rejections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::string read_buf;
    std::string write_buf;
    /// Parsed requests waiting for a worker (bounded by
    /// max_pending_per_connection).
    std::deque<RequestFrame> pending;
    /// A worker batch for this connection is in flight; the reactor will
    /// dispatch the next batch when its completion arrives.
    bool worker_active = false;
    /// Close once write_buf drains (set after a fatal protocol error's
    /// farewell response is queued).
    bool close_after_flush = false;
    bool wants_write = false;  // EPOLLOUT currently armed.
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;     // Encoded response frames, in order.
    size_t num_requests = 0;  // For the global in-flight accounting.
  };

  Server(ShardRouter* router, ServerOptions options);

  Status Bind();
  void ReactorLoop();
  void HandleAccept();
  void HandleReadable(uint64_t conn_id);
  void DrainCompletions();
  /// Parses every complete frame in the connection's read buffer,
  /// admitting, rejecting, or fatally erroring. Returns false when the
  /// connection was closed.
  bool ParseAndAdmit(uint64_t conn_id);
  void DispatchBatch(uint64_t conn_id);
  /// Runs on a worker: executes the batch, enqueues the completion, and
  /// kicks the eventfd.
  void ProcessBatch(uint64_t conn_id, std::vector<RequestFrame> batch);
  ResponseFrame HandleRequest(const RequestFrame& request);
  void QueueResponse(Connection& conn, const ResponseFrame& response);
  void FlushWrites(uint64_t conn_id);
  void UpdateEpoll(uint64_t conn_id, Connection& conn);
  void CloseConnection(uint64_t conn_id);
  void Wakeup();

  ShardRouter* const router_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers → reactor, Stop() → reactor.

  std::thread reactor_;
  std::unique_ptr<common::ThreadPool> workers_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // Guarded by stop_mu_.
  std::mutex stop_mu_;

  /// Reactor-only state: connections keyed by an id that, unlike an fd,
  /// is never reused (a worker completion must not land on a newer
  /// connection that recycled the fd).
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;
  size_t inflight_ = 0;  // Reactor-only: accepted, not yet completed.

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
};

}  // namespace pstorm::rpc

#endif  // PSTORM_RPC_SERVER_H_
