#ifndef PSTORM_RPC_SHARD_ROUTER_H_
#define PSTORM_RPC_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/pstorm.h"
#include "rpc/wire.h"

namespace pstorm::rpc {

struct ShardRouterOptions {
  /// Number of Db-backed PStorM instances the keyspace is partitioned
  /// across. Each shard roots its profile store at `<base>/shard-<i>`.
  uint32_t num_shards = 1;
  /// Routing-table split points (sorted, one fewer than shards; shard 0
  /// implicitly starts at ""). Empty = evenly spaced over the hashed
  /// keyspace. Exposed so tests can pin tenants to shards.
  std::vector<std::string> split_points;
  /// Max SubmitJob calls one tenant may have in flight before the router
  /// answers kResourceExhausted (0 = unlimited). This is the per-tenant
  /// fairness quota; the server's global in-flight bound is separate.
  uint32_t tenant_inflight_limit = 0;
  core::PStormOptions pstorm;
};

/// Range-partitions the tenant keyspace across N PStorM instances, HBase
/// style: a sorted routing table of split points, each shard owning the
/// half-open key range up to the next split. Tenants are mapped into the
/// keyspace by a fixed-width hex rendering of their hashed name, so load
/// spreads evenly without coordinated assignment; the table accepts
/// explicit split points for tests and for future manual rebalancing.
///
/// Tenancy model: a tenant is a namespace for quotas and accounting, not
/// for isolation — tenants routed to the same shard share its profile
/// store, so one tenant's stored profile can serve another's matching
/// submission. That sharing is the point of PStorM on a shared cluster
/// (thesis §1.2); billing-grade isolation would instead key the store path
/// by tenant.
///
/// Thread-safety: Create builds everything single-threaded; afterwards all
/// methods may be called concurrently (PStorM::SubmitJob is reentrant, the
/// quota table has its own mutex).
class ShardRouter {
 public:
  /// `simulator` and `env` must outlive the router.
  static Result<std::unique_ptr<ShardRouter>> Create(
      const mrsim::Simulator* simulator, storage::Env* env,
      const std::string& base_path, ShardRouterOptions options = {});

  /// Shard owning `tenant` under the routing table.
  uint32_t ShardFor(const std::string& tenant) const;

  /// The full submission workflow on the owning shard. Resolves the job by
  /// catalogue name (`job_param` feeds the parameterized jobs: the
  /// co-occurrence window, the grep selectivity). Over-quota tenants get
  /// kResourceExhausted without touching the shard.
  Result<SubmitJobResponse> SubmitJob(const SubmitJobRequest& request);

  /// Stores an externally collected profile on the owning shard.
  Status PutProfile(const PutProfileRequest& request);

  /// Per-shard profile counts and submission tallies, plus the router's
  /// quota rejections. (requests_served / backpressure_rejections belong
  /// to the server and are filled in there.)
  GetStatsResponse Stats() const;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  core::PStorM& shard(uint32_t i) { return *shards_[i]; }

  /// Fixed-width hex routing key a tenant sorts under (exposed for tests
  /// and for choosing explicit split points).
  static std::string RoutingKey(const std::string& tenant);

  /// Tenants currently holding an in-flight quota slot (exposed for tests:
  /// the table is bounded by concurrent submissions, never by the number
  /// of distinct tenant names seen).
  size_t tracked_tenants() const {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    return tenant_inflight_.size();
  }

 private:
  ShardRouter() = default;

  std::vector<std::string> split_points_;  // sorted; size() == shards-1
  std::vector<std::unique_ptr<core::PStorM>> shards_;
  uint32_t tenant_inflight_limit_ = 0;

  /// In-flight SubmitJob count per tenant; an entry exists only while its
  /// count is nonzero (tenant names are attacker-chosen, so the map must
  /// not grow with distinct names for the life of the process).
  mutable std::mutex tenants_mu_;
  std::map<std::string, uint32_t> tenant_inflight_;
  mutable uint64_t quota_rejections_ = 0;  // under tenants_mu_
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> shard_submissions_;
};

}  // namespace pstorm::rpc

#endif  // PSTORM_RPC_SHARD_ROUTER_H_
