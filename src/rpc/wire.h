#ifndef PSTORM_RPC_WIRE_H_
#define PSTORM_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mrsim/configuration.h"
#include "mrsim/dataset.h"
#include "staticanalysis/features.h"

namespace pstorm::rpc {

/// PStorM's binary wire format, one frame per message, reusing the WAL
/// framing idiom (storage/wal.cc): a fixed header carrying the payload
/// length and a checksum over the payload, so a torn or bit-rotted frame
/// is detected before anything in it is trusted.
///
///   Frame:    [fixed32 payload_len][fixed32 checksum][payload]
///   Payload:  [u8 version][u8 kind][varint64 request_id] ...
///     kind=kRequest:  [u8 method][lp body]
///     kind=kResponse: [u8 status_code][lp message][lp body]
///
/// (`lp` = varint32 length-prefixed bytes, common/coding.h.) Integers are
/// little-endian; doubles travel as their IEEE-754 bit pattern in a
/// fixed64, so a tuning decision round-trips bit-identically.
///
/// Versioning: `version` is bumped on any incompatible payload change. A
/// server receiving an unsupported version answers with one
/// InvalidArgument response (request id echoed when parseable) and closes;
/// it never guesses. Frames whose checksum fails or whose declared length
/// exceeds the negotiated maximum are protocol errors: the stream can no
/// longer be trusted, so the connection is closed without a response.
///
/// Error mapping: a response carries the serving Status verbatim — the
/// StatusCode byte plus the message — so rpc::Client surfaces exactly the
/// Status an in-process caller would have seen. kResourceExhausted is the
/// admission-control backpressure signal (retry later, ideally with
/// jittered backoff); it is produced by the server's bounded in-flight
/// queue and by per-tenant quotas, never by PStorM itself.

inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 8;
/// Default ceiling on one frame's payload. Profiles serialize to a few KB;
/// 4 MiB leaves two orders of magnitude of headroom while keeping a
/// malicious length prefix from ballooning a connection buffer.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

enum class Method : uint8_t {
  kEcho = 1,
  kSubmitJob = 2,
  kPutProfile = 3,
  kGetStats = 4,
  kDump = 5,
};

enum class MessageKind : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct RequestFrame {
  uint64_t request_id = 0;
  Method method = Method::kEcho;
  std::string body;
};

struct ResponseFrame {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  /// Human-readable error message ("" on success).
  std::string message;
  std::string body;
};

std::string EncodeRequestFrame(const RequestFrame& frame);
std::string EncodeResponseFrame(const ResponseFrame& frame);

/// Builds a ResponseFrame from a Status (body empty unless supplied).
ResponseFrame ErrorResponse(uint64_t request_id, const Status& status);

/// Reconstructs the Status a response carries.
Status ResponseStatus(const ResponseFrame& frame);

enum class FrameParseResult {
  /// A whole frame was consumed into `out`.
  kOk,
  /// The buffer holds a prefix of a frame; read more bytes and retry.
  kNeedMore,
  /// The stream is unrecoverable (bad checksum, oversized or malformed
  /// frame, unsupported version): close the connection.
  kBad,
};

struct ParsedMessage {
  MessageKind kind = MessageKind::kRequest;
  RequestFrame request;    // Valid when kind == kRequest.
  ResponseFrame response;  // Valid when kind == kResponse.
  /// Bytes the frame occupied (consume this many from the buffer).
  size_t frame_size = 0;
  /// On kBad: why, and — when the prefix parsed far enough — the request
  /// id to echo in a final error response (0 otherwise).
  std::string error;
  uint64_t bad_request_id = 0;
  /// On kBad: the frame itself was intact (checksum passed) but its
  /// content is unusable, so the peer deserves one InvalidArgument
  /// response before the close. False when the stream itself can't be
  /// trusted (bad checksum, oversized length prefix) — then close
  /// silently.
  bool respond_before_close = false;
};

/// Parses the first frame of `buf` without consuming it. Frames larger
/// than `max_frame_bytes` are kBad even before their payload arrives.
FrameParseResult ParseFrame(std::string_view buf, size_t max_frame_bytes,
                            ParsedMessage* out);

// ---- Method bodies -------------------------------------------------------

/// SubmitJob: the job travels as its catalogue name plus the one numeric
/// user parameter the parameterized jobs take (co-occurrence window, grep
/// selectivity); the data set travels as its full statistical spec, so
/// clients may submit against data the server has never seen.
struct SubmitJobRequest {
  std::string tenant;
  std::string job_name;
  double job_param = 0;  // 0 = the job's default.
  mrsim::DataSetSpec data;
  mrsim::Configuration submitted;
  uint64_t seed = 0;
};

/// Mirrors core::PStorM::SubmissionOutcome, plus which shard served it.
struct SubmitJobResponse {
  bool matched = false;
  bool composite = false;
  bool stored_new_profile = false;
  std::string profile_source;
  mrsim::Configuration config_used;
  double runtime_s = 0;
  double sample_runtime_s = 0;
  double predicted_runtime_s = 0;
  uint32_t shard = 0;
};

struct PutProfileRequest {
  std::string tenant;
  std::string job_key;
  /// profiler::ExecutionProfile::Serialize() text.
  std::string profile_text;
  staticanalysis::StaticFeatures statics;
};

struct ShardStatsEntry {
  uint32_t shard = 0;
  /// First routing key owned by the shard ("" for the first shard).
  std::string start_key;
  uint64_t num_profiles = 0;
  uint64_t submissions = 0;
};

struct GetStatsResponse {
  std::vector<ShardStatsEntry> shards;
  uint64_t requests_served = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t quota_rejections = 0;
};

std::string EncodeSubmitJobRequest(const SubmitJobRequest& request);
Result<SubmitJobRequest> DecodeSubmitJobRequest(std::string_view body);

std::string EncodeSubmitJobResponse(const SubmitJobResponse& response);
Result<SubmitJobResponse> DecodeSubmitJobResponse(std::string_view body);

std::string EncodePutProfileRequest(const PutProfileRequest& request);
Result<PutProfileRequest> DecodePutProfileRequest(std::string_view body);

std::string EncodeGetStatsResponse(const GetStatsResponse& response);
Result<GetStatsResponse> DecodeGetStatsResponse(std::string_view body);

}  // namespace pstorm::rpc

#endif  // PSTORM_RPC_WIRE_H_
