#include "rpc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace pstorm::rpc {
namespace {

obs::Counter& RequestsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_requests_total");
  return c;
}
obs::Counter& BackpressureRejections() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_backpressure_rejections_total");
  return c;
}
obs::Counter& BadFrames() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_bad_frames_total");
  return c;
}
obs::Counter& ConnectionsTotal() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_connections_total");
  return c;
}
obs::Histogram& BatchSizeHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pstorm_rpc_batch_size");
  return h;
}

// Sentinel epoll ids for the two non-connection fds; connection ids start
// at 1 and only grow, so neither can collide.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = ~0ull;

}  // namespace

Server::Server(ShardRouter* router, ServerOptions options)
    : router_(router), options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(ShardRouter* router,
                                              ServerOptions options) {
  auto server =
      std::unique_ptr<Server>(new Server(router, std::move(options)));
  PSTORM_RETURN_IF_ERROR(server->Bind());
  server->workers_ = std::make_unique<common::ThreadPool>(
      server->options_.num_workers > 0 ? server->options_.num_workers : 1);
  server->reactor_ = std::thread([raw = server.get()] { raw->ReactorLoop(); });
  return server;
}

Server::~Server() { Stop(); }

Status Server::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IoError("socket: " + std::string(
                                                 std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IoError("getsockname: " +
                           std::string(std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError("epoll_create1: " +
                           std::string(std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::IoError("eventfd: " + std::string(std::strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  return Status::OK();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  Wakeup();
  if (reactor_.joinable()) reactor_.join();
  // The reactor is gone; draining the pool may still produce completions
  // and eventfd kicks, so those stay valid until the workers are joined.
  workers_.reset();
  // The reactor normally closes listen_fd_ on its way out; if Bind()
  // failed partway (so the reactor thread never started) the fd is still
  // open here.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

void Server::Wakeup() {
  const uint64_t one = 1;
  // A full eventfd counter (impossible here) or EINTR just means the
  // reactor is already awake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::ReactorLoop() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      PSTORM_LOG(Error) << "rpc reactor epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else if (id == kListenId) {
        HandleAccept();
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(id);
          continue;
        }
        if (events[i].events & EPOLLIN) HandleReadable(id);
        if ((events[i].events & EPOLLOUT) && conns_.count(id) != 0) {
          FlushWrites(id);
        }
      }
    }
  }
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::HandleAccept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or a transient accept error: epoll will re-arm.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    Connection& conn = conns_[id];
    conn.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    ConnectionsTotal().Increment();
  }
}

void Server::HandleReadable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  char buf[64 << 10];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      // A connection that has earned its farewell-and-close keeps its
      // socket drained but nothing it says is parsed anymore.
      if (!conn.close_after_flush) conn.read_buf.append(buf, n);
      continue;
    }
    if (n == 0) {
      CloseConnection(conn_id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id);
    return;
  }
  if (!ParseAndAdmit(conn_id)) return;
  auto again = conns_.find(conn_id);
  if (again == conns_.end()) return;
  if (!again->second.worker_active && !again->second.pending.empty()) {
    DispatchBatch(conn_id);
  }
  FlushWrites(conn_id);
}

bool Server::ParseAndAdmit(uint64_t conn_id) {
  Connection& conn = conns_.at(conn_id);
  while (!conn.close_after_flush) {
    ParsedMessage msg;
    const FrameParseResult result =
        ParseFrame(conn.read_buf, options_.max_frame_bytes, &msg);
    if (result == FrameParseResult::kNeedMore) break;
    if (result == FrameParseResult::kBad) {
      BadFrames().Increment();
      if (!msg.respond_before_close) {
        // The stream itself is untrustworthy; no response could be framed
        // against it meaningfully.
        CloseConnection(conn_id);
        return false;
      }
      QueueResponse(conn, ErrorResponse(msg.bad_request_id,
                                        Status::InvalidArgument(msg.error)));
      conn.close_after_flush = true;
      break;
    }
    conn.read_buf.erase(0, msg.frame_size);
    if (msg.kind != MessageKind::kRequest) {
      QueueResponse(conn,
                    ErrorResponse(msg.response.request_id,
                                  Status::InvalidArgument(
                                      "server expects request frames")));
      conn.close_after_flush = true;
      break;
    }
    // Admission control at the network edge: beyond either bound the
    // request is answered kResourceExhausted *now* — bounded memory, and
    // the client learns to back off — rather than queued indefinitely.
    // Rejections are matched to their request by id, so they may overtake
    // responses of earlier accepted requests.
    if (inflight_ >= options_.max_inflight_requests ||
        conn.pending.size() >= options_.max_pending_per_connection) {
      backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
      BackpressureRejections().Increment();
      QueueResponse(
          conn,
          ErrorResponse(msg.request.request_id,
                        Status::ResourceExhausted(
                            inflight_ >= options_.max_inflight_requests
                                ? "server at max in-flight requests"
                                : "connection at max pending requests")));
      // Rejections bypass the worker path, so the write-buffer ceiling
      // must be enforced here too: a client that pipelines over-cap
      // requests and never reads would otherwise grow write_buf without
      // bound, one rejection frame per request frame.
      if (conn.write_buf.size() > options_.max_write_buffer_bytes) {
        CloseConnection(conn_id);
        return false;
      }
      continue;
    }
    ++inflight_;
    conn.pending.push_back(std::move(msg.request));
  }
  if (conn.write_buf.size() > options_.max_write_buffer_bytes) {
    CloseConnection(conn_id);
    return false;
  }
  return true;
}

void Server::DispatchBatch(uint64_t conn_id) {
  Connection& conn = conns_.at(conn_id);
  std::vector<RequestFrame> batch;
  batch.reserve(conn.pending.size());
  while (!conn.pending.empty()) {
    batch.push_back(std::move(conn.pending.front()));
    conn.pending.pop_front();
  }
  conn.worker_active = true;
  BatchSizeHist().Record(batch.size());
  workers_->Schedule([this, conn_id, batch = std::move(batch)]() mutable {
    ProcessBatch(conn_id, std::move(batch));
  });
}

void Server::ProcessBatch(uint64_t conn_id,
                          std::vector<RequestFrame> batch) {
  Completion completion;
  completion.conn_id = conn_id;
  completion.num_requests = batch.size();
  for (const RequestFrame& request : batch) {
    // Even while stopping, every request must flow into the completion so
    // the reactor's in-flight accounting stays exact; the bytes are simply
    // never flushed once the sockets are gone.
    completion.bytes.append(EncodeResponseFrame(HandleRequest(request)));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    RequestsTotal().Increment();
  }
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  Wakeup();
}

ResponseFrame Server::HandleRequest(const RequestFrame& request) {
  ResponseFrame response;
  response.request_id = request.request_id;
  switch (request.method) {
    case Method::kEcho:
      response.body = request.body;
      return response;
    case Method::kSubmitJob: {
      Result<SubmitJobRequest> decoded = DecodeSubmitJobRequest(request.body);
      if (!decoded.ok()) {
        return ErrorResponse(request.request_id, decoded.status());
      }
      Result<SubmitJobResponse> outcome = router_->SubmitJob(*decoded);
      if (!outcome.ok()) {
        return ErrorResponse(request.request_id, outcome.status());
      }
      response.body = EncodeSubmitJobResponse(*outcome);
      return response;
    }
    case Method::kPutProfile: {
      Result<PutProfileRequest> decoded =
          DecodePutProfileRequest(request.body);
      if (!decoded.ok()) {
        return ErrorResponse(request.request_id, decoded.status());
      }
      if (Status status = router_->PutProfile(*decoded); !status.ok()) {
        return ErrorResponse(request.request_id, status);
      }
      return response;
    }
    case Method::kGetStats: {
      GetStatsResponse stats = router_->Stats();
      stats.requests_served =
          requests_served_.load(std::memory_order_relaxed);
      stats.backpressure_rejections =
          backpressure_rejections_.load(std::memory_order_relaxed);
      response.body = EncodeGetStatsResponse(stats);
      return response;
    }
    case Method::kDump:
      response.body = obs::MetricsRegistry::Global().Dump();
      return response;
  }
  return ErrorResponse(request.request_id,
                       Status::Unimplemented("unknown method"));
}

void Server::QueueResponse(Connection& conn, const ResponseFrame& response) {
  conn.write_buf.append(EncodeResponseFrame(response));
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    inflight_ -= completion.num_requests;
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // Closed while the batch ran.
    Connection& conn = it->second;
    conn.worker_active = false;
    conn.write_buf.append(completion.bytes);
    if (conn.write_buf.size() > options_.max_write_buffer_bytes) {
      // The peer stopped reading; disconnecting beats buffering forever.
      CloseConnection(completion.conn_id);
      continue;
    }
    if (!conn.pending.empty()) DispatchBatch(completion.conn_id);
    FlushWrites(completion.conn_id);
  }
}

void Server::FlushWrites(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (!conn.write_buf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.write_buf.data(),
                             conn.write_buf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_buf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.wants_write) {
        conn.wants_write = true;
        UpdateEpoll(conn_id, conn);
      }
      return;
    }
    CloseConnection(conn_id);
    return;
  }
  if (conn.wants_write) {
    conn.wants_write = false;
    UpdateEpoll(conn_id, conn);
  }
  if (conn.close_after_flush) CloseConnection(conn_id);
}

void Server::UpdateEpoll(uint64_t conn_id, Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.wants_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Pending (dispatched-to-nobody) requests die with the connection; their
  // in-flight slots must be released. Requests already in a worker batch
  // release theirs when the completion arrives and finds the id gone.
  inflight_ -= it->second.pending.size();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
}

}  // namespace pstorm::rpc
