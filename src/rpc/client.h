#ifndef PSTORM_RPC_CLIENT_H_
#define PSTORM_RPC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "rpc/wire.h"

namespace pstorm::rpc {

/// Blocking client for one pstorm_server connection. One request is in
/// flight at a time; a call writes the request frame and reads frames
/// until its response arrives. NOT thread-safe — the intended shape is one
/// Client per thread, each on its own connection (connections are cheap;
/// the server multiplexes them on one reactor).
///
/// Every method surfaces the Status the server put on the wire, so
/// kResourceExhausted from admission control arrives here as a retryable
/// Status, exactly as the in-process API would report it.
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<std::string> Echo(const std::string& payload);
  Result<SubmitJobResponse> SubmitJob(const SubmitJobRequest& request);
  Status PutProfile(const PutProfileRequest& request);
  Result<GetStatsResponse> GetStats();
  /// The server's Prometheus-style metrics dump.
  Result<std::string> Dump();

  /// Fire-and-forget raw frame write (no response read). Test hook for
  /// pipelining many requests before draining any responses.
  Status SendRaw(const std::string& frame);
  /// Reads the next response frame (pairs with SendRaw).
  Result<ResponseFrame> ReadResponse();

  void Close();

 private:
  explicit Client(int fd, size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// One full round trip: frame the request, write it, read frames until
  /// the matching response.
  Result<ResponseFrame> Call(Method method, std::string body);

  int fd_ = -1;
  size_t max_frame_bytes_;
  uint64_t next_request_id_ = 1;
  std::string read_buf_;
};

}  // namespace pstorm::rpc

#endif  // PSTORM_RPC_CLIENT_H_
