#include "rpc/shard_router.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "jobs/benchmark_jobs.h"
#include "obs/metrics.h"
#include "profiler/profile.h"
#include "storage/env.h"

namespace pstorm::rpc {
namespace {

obs::Counter& QuotaRejections() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_quota_rejections_total");
  return c;
}
obs::Counter& SubmissionsRouted() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "pstorm_rpc_submissions_routed_total");
  return c;
}

/// Widest co-occurrence window a client may request. The job model scales
/// map output linearly with the window, so an absurd window is an absurd
/// amount of simulated work; real co-occurrence windows are single digits.
constexpr int kMaxCooccurrenceWindow = 1024;

/// Resolves a catalogue job name to its BenchmarkJob. The parameterized
/// jobs take their user parameter from `param` (0 = the job's default);
/// everything else must match a Table 6.1 name exactly. `param` arrives
/// off the wire, so every range precondition of the job constructors is
/// re-checked here and answered with InvalidArgument — a hostile frame
/// must never reach a PSTORM_CHECK.
Result<jobs::BenchmarkJob> ResolveJob(const std::string& name, double param) {
  if (name == "grep") {
    if (param == 0.0) return jobs::Grep();
    // NaN fails this comparison too and lands in the error branch.
    if (!(param > 0.0 && param <= 1.0)) {
      return Status::InvalidArgument(
          "grep selectivity must be in (0, 1], got " + std::to_string(param));
    }
    return jobs::Grep(param);
  }
  constexpr std::string_view kPairsPrefix = "word-cooccurrence-pairs-w";
  if (name.rfind(kPairsPrefix, 0) == 0) {
    const char* first = name.c_str() + kPairsPrefix.size();
    const char* last = name.c_str() + name.size();
    int window = 0;
    const auto [ptr, ec] = std::from_chars(first, last, window);
    if (ec != std::errc() || ptr != last || window < 1 ||
        window > kMaxCooccurrenceWindow) {
      return Status::InvalidArgument("bad co-occurrence window in: " + name);
    }
    return jobs::WordCooccurrencePairs(window);
  }
  if (name == "word-cooccurrence-pairs") {
    if (param == 0.0) return jobs::WordCooccurrencePairs();
    if (!(param >= 1.0 && param <= kMaxCooccurrenceWindow) ||
        param != std::floor(param)) {
      return Status::InvalidArgument(
          "co-occurrence window must be an integer in [1, " +
          std::to_string(kMaxCooccurrenceWindow) + "], got " +
          std::to_string(param));
    }
    return jobs::WordCooccurrencePairs(static_cast<int>(param));
  }
  for (jobs::BenchmarkJob& job : jobs::AllBenchmarkJobs()) {
    if (job.spec.name == name) return std::move(job);
  }
  return Status::NotFound("unknown benchmark job: " + name);
}

}  // namespace

std::string ShardRouter::RoutingKey(const std::string& tenant) {
  // Mix64 on top of FNV so near-identical tenant names still land far
  // apart; 16 zero-padded hex digits sort like the uint64 they encode.
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Mix64(Fnv1a64(tenant))));
  return std::string(buf, 16);
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const mrsim::Simulator* simulator, storage::Env* env,
    const std::string& base_path, ShardRouterOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (!options.split_points.empty() &&
      options.split_points.size() != options.num_shards - 1) {
    return Status::InvalidArgument(
        "split_points must have num_shards - 1 entries");
  }
  if (!std::is_sorted(options.split_points.begin(),
                      options.split_points.end())) {
    return Status::InvalidArgument("split_points must be sorted");
  }

  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->tenant_inflight_limit_ = options.tenant_inflight_limit;
  if (!options.split_points.empty()) {
    router->split_points_ = std::move(options.split_points);
  } else {
    // Evenly spaced over the hashed keyspace: shard i starts at the hex
    // rendering of i * 2^64 / N, mirroring how RoutingKey renders tenants.
    for (uint32_t i = 1; i < options.num_shards; ++i) {
      const uint64_t start =
          static_cast<uint64_t>((static_cast<unsigned __int128>(i) << 64) /
                                options.num_shards);
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(start));
      router->split_points_.emplace_back(buf, 16);
    }
  }

  for (uint32_t i = 0; i < options.num_shards; ++i) {
    const std::string path =
        storage::JoinPath(base_path, "shard-" + std::to_string(i));
    PSTORM_ASSIGN_OR_RETURN(
        std::unique_ptr<core::PStorM> shard,
        core::PStorM::Create(simulator, env, path, options.pstorm));
    router->shards_.push_back(std::move(shard));
    router->shard_submissions_.push_back(
        std::make_unique<std::atomic<uint64_t>>(0));
  }
  return router;
}

uint32_t ShardRouter::ShardFor(const std::string& tenant) const {
  const std::string key = RoutingKey(tenant);
  // First split point > key; the shard before it owns the key. (Shard 0
  // implicitly starts at "".)
  const auto it =
      std::upper_bound(split_points_.begin(), split_points_.end(), key);
  return static_cast<uint32_t>(it - split_points_.begin());
}

Result<SubmitJobResponse> ShardRouter::SubmitJob(
    const SubmitJobRequest& request) {
  PSTORM_ASSIGN_OR_RETURN(const jobs::BenchmarkJob job,
                          ResolveJob(request.job_name, request.job_param));
  // Tenant names are client-chosen, so the in-flight table must not grow
  // with distinct names seen: entries exist only while a tenant actually
  // has submissions in flight (and not at all when quotas are off).
  if (tenant_inflight_limit_ != 0) {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    uint32_t& inflight = tenant_inflight_[request.tenant];
    if (inflight >= tenant_inflight_limit_) {
      ++quota_rejections_;
      QuotaRejections().Increment();
      return Status::ResourceExhausted(
          "tenant '" + request.tenant + "' at its in-flight quota (" +
          std::to_string(tenant_inflight_limit_) + "); retry later");
    }
    ++inflight;
  }

  const uint32_t shard_idx = ShardFor(request.tenant);
  shard_submissions_[shard_idx]->fetch_add(1, std::memory_order_relaxed);
  SubmissionsRouted().Increment();

  Result<core::PStorM::SubmissionOutcome> outcome =
      shards_[shard_idx]->SubmitJob(job, request.data, request.submitted,
                                    request.seed);
  if (tenant_inflight_limit_ != 0) {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    const auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() && --it->second == 0) {
      tenant_inflight_.erase(it);
    }
  }
  if (!outcome.ok()) return outcome.status();

  SubmitJobResponse response;
  response.matched = outcome->matched;
  response.composite = outcome->composite;
  response.stored_new_profile = outcome->stored_new_profile;
  response.profile_source = outcome->profile_source;
  response.config_used = outcome->config_used;
  response.runtime_s = outcome->runtime_s;
  response.sample_runtime_s = outcome->sample_runtime_s;
  response.predicted_runtime_s = outcome->predicted_runtime_s;
  response.shard = shard_idx;
  return response;
}

Status ShardRouter::PutProfile(const PutProfileRequest& request) {
  PSTORM_ASSIGN_OR_RETURN(const profiler::ExecutionProfile profile,
                          profiler::ExecutionProfile::Parse(
                              request.profile_text));
  return shards_[ShardFor(request.tenant)]->AddProfile(request.job_key,
                                                       profile,
                                                       request.statics);
}

GetStatsResponse ShardRouter::Stats() const {
  GetStatsResponse stats;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    ShardStatsEntry entry;
    entry.shard = i;
    entry.start_key = i == 0 ? "" : split_points_[i - 1];
    entry.num_profiles = shards_[i]->store().num_profiles();
    entry.submissions =
        shard_submissions_[i]->load(std::memory_order_relaxed);
    stats.shards.push_back(std::move(entry));
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  stats.quota_rejections = quota_rejections_;
  return stats;
}

}  // namespace pstorm::rpc
