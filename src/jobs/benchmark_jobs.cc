#include "jobs/benchmark_jobs.h"

#include <cstdio>

#include "common/hash.h"
#include "common/logging.h"
#include "jobs/datasets.h"

namespace pstorm::jobs {

using staticanalysis::Call;
using staticanalysis::Emit;
using staticanalysis::If;
using staticanalysis::IfElse;
using staticanalysis::Loop;
using staticanalysis::Op;
using staticanalysis::Seq;

namespace {

/// The ubiquitous sum reducer body (reused verbatim by several jobs, as
/// real MR code bases reuse IntSumReducer).
staticanalysis::FunctionIr IntSumReduce(const std::string& owner) {
  return {owner + ".reduce",
          Seq({Op("sum = 0"), Loop("values.hasNext", Op("sum += value")),
               Emit()})};
}

staticanalysis::FunctionIr IdentityReduce(const std::string& owner) {
  return {owner + ".reduce", Loop("values.hasNext", Emit())};
}

}  // namespace

BenchmarkJob WordCount() {
  BenchmarkJob job;
  job.application_domain = "Text Mining";
  job.data_sets = {kRandomText1Gb, kWikipedia35Gb};

  job.spec.name = "word-count";
  job.spec.map = {/*pairs*/ 15.0, /*size*/ 2.1, /*cpu ns*/ 4000.0};
  job.spec.combine.defined = true;
  job.spec.combine.pairs_selectivity = 0.12;  // Few distinct words per spill.
  job.spec.combine.size_selectivity = 0.15;
  job.spec.combine.merge_pairs_selectivity = 0.55;
  job.spec.combine.merge_size_selectivity = 0.55;
  job.spec.combine.cpu_ns_per_record = 300.0;
  job.spec.reduce = {/*pairs*/ 0.25, /*size*/ 0.5, /*cpu ns*/ 800.0};

  auto& p = job.program;
  p.job_class_name = "WordCount";
  p.mapper_class = "TokenCounterMapper";
  p.combiner_class = "IntSumReducer";
  p.reducer_class = "IntSumReducer";
  p.map_function = {"TokenCounterMapper.map",
                    Seq({Op("iterator = line.tokenize()"),
                         Loop("iterator.hasMoreTokens",
                              Seq({Op("word = iterator.currentToken()"),
                                   Emit()}))})};
  p.reduce_function = IntSumReduce("IntSumReducer");
  return job;
}

BenchmarkJob InvertedIndex() {
  BenchmarkJob job;
  job.application_domain = "Text Mining";
  job.data_sets = {kRandomText1Gb, kWikipedia35Gb};

  job.spec.name = "inverted-index";
  // The document reader hands whole multi-KB documents to the mapper, which
  // parses each one and emits one compact posting per distinct term: few,
  // expensive input records and a modest intermediate volume. The job is
  // map-CPU-bound, which is why the thesis finds the default configuration
  // already suits it (Figure 6.3).
  job.spec.input_record_granularity = 40.0;  // ~4.8 KB documents.
  job.spec.map = {220.0, 0.30, 1.0e7};
  job.spec.combine.defined = false;  // Posting lists don't combine.
  job.spec.reduce = {0.05, 0.90, 300.0};

  auto& p = job.program;
  p.job_class_name = "InvertedIndex";
  p.mapper_class = "TermDocMapper";
  p.reducer_class = "PostingListReducer";
  p.map_out_value = "PairOfInts";  // (docid, position).
  p.reduce_out_value = "ArrayListWritable";
  p.map_function = {"TermDocMapper.map",
                    Seq({Op("terms = parseDocument(line)"),
                         Loop("terms.hasNext",
                              Seq({Op("posting = (docid, pos)"), Emit()}))})};
  p.reduce_function = {"PostingListReducer.reduce",
                       Seq({Op("postings = new ArrayList()"),
                            Loop("values.hasNext", Op("postings.add(value)")),
                            Call("sortPostings"), Emit()})};
  return job;
}

BenchmarkJob Sort() {
  BenchmarkJob job;
  job.application_domain = "Many Domains";
  job.data_sets = {kTeraGen1Gb, kTeraGen35Gb};

  job.spec.name = "sort";
  job.spec.map = {1.0, 1.0, 800.0};  // Identity: size selectivity exactly 1.
  job.spec.combine.defined = false;
  job.spec.reduce = {1.0, 1.0, 600.0};

  auto& p = job.program;
  p.job_class_name = "Sort";
  p.mapper_class = "IdentityMapper";
  p.reducer_class = "IdentityReducer";
  p.map_in_key = "BytesWritable";
  p.map_in_value = "BytesWritable";
  p.map_out_key = "BytesWritable";
  p.map_out_value = "BytesWritable";
  p.reduce_out_key = "BytesWritable";
  p.reduce_out_value = "BytesWritable";
  p.output_formatter = "SequenceFileOutputFormat";
  p.input_formatter = "SequenceFileInputFormat";
  p.map_function = {"IdentityMapper.map", Emit()};
  p.reduce_function = IdentityReduce("IdentityReducer");
  return job;
}

BenchmarkJob TpchJoin() {
  BenchmarkJob job;
  job.application_domain = "Business Intelligence";
  job.data_sets = {kTpch1Gb, kTpch35Gb};

  job.spec.name = "tpch-join";
  job.spec.map = {1.0, 1.12, 2500.0};  // Tags each row with its source.
  job.spec.combine.defined = false;
  job.spec.reduce = {0.8, 1.3, 3000.0};  // Joined rows are wider.
  job.spec.input_format_cost_factor = 1.5;  // CompositeInputFormat readers.

  auto& p = job.program;
  p.job_class_name = "TpchJoin";
  p.input_formatter = "CompositeInputFormat";
  p.mapper_class = "JoinTaggingMapper";
  p.reducer_class = "JoinReducer";
  p.map_out_key = "LongWritable";
  p.map_out_value = "TaggedRow";
  p.reduce_out_key = "LongWritable";
  p.reduce_out_value = "JoinedRow";
  p.map_function = {"JoinTaggingMapper.map",
                    Seq({Op("row = parse(line)"),
                         IfElse("row.fromLineitem", Op("tag = L"),
                                Op("tag = O")),
                         Emit()})};
  p.reduce_function = {"JoinReducer.reduce",
                       Seq({Op("partition rows by tag"),
                            Loop("left.hasNext",
                                 Loop("right.hasNext",
                                      Seq({Op("joined = concat(l, r)"),
                                           Emit()})))})};
  return job;
}

BenchmarkJob BigramRelativeFrequency() {
  BenchmarkJob job;
  job.application_domain = "Natural Language Processing";
  job.data_sets = {kRandomText1Gb, kWikipedia35Gb};

  job.spec.name = "bigram-relative-frequency";
  // Each word contributes a (w1,w2) pair and a (w1,*) marginal: dataflow
  // very close to co-occurrence pairs at window 2, but bigrams repeat more
  // within a split, so the combiner bites harder.
  job.spec.map = {28.0, 5.0, 8500.0};
  job.spec.combine.defined = true;
  job.spec.combine.pairs_selectivity = 0.50;
  job.spec.combine.size_selectivity = 0.50;
  job.spec.combine.merge_pairs_selectivity = 0.80;
  job.spec.combine.merge_size_selectivity = 0.80;
  job.spec.combine.cpu_ns_per_record = 350.0;
  job.spec.reduce = {0.30, 0.38, 1300.0};

  auto& p = job.program;
  p.job_class_name = "BigramRelativeFrequency";
  p.mapper_class = "BigramMapper";
  p.combiner_class = "BigramCombiner";
  p.reducer_class = "RelativeFrequencyReducer";
  p.map_out_key = "PairOfStrings";
  p.map_out_value = "FloatWritable";
  p.reduce_out_key = "PairOfStrings";
  p.reduce_out_value = "FloatWritable";
  p.map_function = {"BigramMapper.map",
                    Seq({Op("words = line.extractWords()"),
                         Loop("i < words.length - 1",
                              Seq({Op("bigram = (words[i], words[i+1])"),
                                   Emit(),  // The pair count.
                                   Op("marginal = (words[i], *)"),
                                   Emit()}))})};
  p.reduce_function = {"RelativeFrequencyReducer.reduce",
                       Seq({Op("sum = 0"),
                            Loop("values.hasNext", Op("sum += value")),
                            IfElse("key.right == *", Op("marginal = sum"),
                                   Seq({Op("freq = sum / marginal"),
                                        Emit()}))})};
  return job;
}

BenchmarkJob WordCooccurrencePairs(int window) {
  PSTORM_CHECK(window >= 1);
  BenchmarkJob job;
  job.application_domain = "Natural Language Processing";
  job.data_sets = {kRandomText1Gb, kWikipedia35Gb};

  const double w = static_cast<double>(window);
  job.spec.name = "word-cooccurrence-pairs-w" + std::to_string(window);
  // ~14 word slots per line, each emitting `window` pairs.
  job.spec.map = {14.0 * w, 3.0 * w, 4500.0 * w};
  job.spec.combine.defined = true;
  job.spec.combine.pairs_selectivity = 0.65;  // Pairs rarely repeat in-split.
  job.spec.combine.size_selectivity = 0.65;
  job.spec.combine.merge_pairs_selectivity = 0.80;
  job.spec.combine.merge_size_selectivity = 0.80;
  job.spec.combine.cpu_ns_per_record = 350.0;
  job.spec.reduce = {0.30, 0.35, 1200.0};

  auto& p = job.program;
  p.job_class_name = "WordCooccurrencePairs";
  p.mapper_class = "CooccurrencePairsMapper";
  p.combiner_class = "IntSumReducer";
  p.reducer_class = "IntSumReducer";
  p.map_out_key = "PairOfStrings";
  // The thesis Algorithm 2 shape: outer loop, inner condition, inner loop.
  p.user_parameters = {{"window", std::to_string(window)}};
  p.map_function = {"CooccurrencePairsMapper.map",
                    Seq({Op("window = getUserParameter()"),
                         Op("words = line.extractWords()"),
                         Loop("i < words.length",
                              If("isNotEmpty(words[i])",
                                 Loop("j < i + window",
                                      Seq({Op("pair = (words[i], words[j])"),
                                           Emit()}))))})};
  p.reduce_function = IntSumReduce("IntSumReducer");
  return job;
}

BenchmarkJob WordCooccurrenceStripes() {
  BenchmarkJob job;
  job.application_domain = "Natural Language Processing";
  job.data_sets = {kRandomText1Gb};  // OOMs on the 35 GB set (thesis).

  job.spec.name = "word-cooccurrence-stripes";
  job.spec.map = {14.0, 5.5, 16000.0};  // One stripe map per word slot.
  job.spec.combine.defined = true;      // Stripes merge element-wise.
  job.spec.combine.pairs_selectivity = 0.35;
  job.spec.combine.size_selectivity = 0.45;
  job.spec.combine.merge_pairs_selectivity = 0.70;
  job.spec.combine.merge_size_selectivity = 0.70;
  job.spec.combine.cpu_ns_per_record = 2500.0;  // Map merging is pricey.
  job.spec.reduce = {0.05, 0.30, 6000.0};
  // The mapper's in-memory association maps grow with the vocabulary:
  // 220 MB (Wikipedia) * 1.5 blows the 300 MB heap; 25 MB (random text)
  // does not.
  job.spec.map_heap_demand_base_mb = 30.0;
  job.spec.map_heap_demand_mb_per_vocab_mb = 1.5;

  auto& p = job.program;
  p.job_class_name = "WordCooccurrenceStripes";
  p.mapper_class = "CooccurrenceStripesMapper";
  p.combiner_class = "StripesCombiner";
  p.reducer_class = "StripesReducer";
  p.map_out_value = "HashMapWritable";
  p.reduce_out_value = "HashMapWritable";
  p.map_function = {"CooccurrenceStripesMapper.map",
                    Seq({Op("words = line.extractWords()"),
                         Loop("i < words.length",
                              Seq({Op("stripe = stripes.get(words[i])"),
                                   Loop("j in window",
                                        Op("stripe.increment(words[j])")),
                                   Emit()}))})};
  p.reduce_function = {"StripesReducer.reduce",
                       Seq({Op("merged = new HashMap()"),
                            Loop("values.hasNext",
                                 Call("elementwiseAdd")),
                            Emit()})};
  return job;
}

BenchmarkJob CloudBurst() {
  BenchmarkJob job;
  job.application_domain = "Bioinformatics";
  job.data_sets = {kGenomeSample, kLakeWashington};

  job.spec.name = "cloudburst";
  job.spec.map = {8.0, 3.2, 35000.0};  // Seed extraction per read.
  job.spec.combine.defined = false;
  job.spec.reduce = {0.04, 0.35, 45000.0};  // Seed-and-extend alignment.

  auto& p = job.program;
  p.job_class_name = "CloudBurst";
  p.input_formatter = "SequenceFileInputFormat";
  p.mapper_class = "MerReduceMapper";
  p.reducer_class = "MerReduceReducer";
  p.map_in_key = "IntWritable";
  p.map_in_value = "BytesWritable";
  p.map_out_key = "BytesWritable";
  p.map_out_value = "BytesWritable";
  p.reduce_out_key = "IntWritable";
  p.reduce_out_value = "BytesWritable";
  p.output_formatter = "SequenceFileOutputFormat";
  p.map_function = {"MerReduceMapper.map",
                    Seq({Op("read = decode(value)"),
                         Loop("offset < read.length - seedLen",
                              Seq({Op("seed = read.sub(offset, seedLen)"),
                                   If("isLowComplexity(seed)",
                                      Op("continue")),
                                   Emit()}))})};
  p.reduce_function = {"MerReduceReducer.reduce",
                       Seq({Op("partition seeds by source"),
                            Loop("refSeeds.hasNext",
                                 Loop("readSeeds.hasNext",
                                      Seq({Call("extendAlignment"),
                                           If("alignment.score >= threshold",
                                              Emit())})))})};
  return job;
}

BenchmarkJob ItemBasedCollaborativeFiltering() {
  BenchmarkJob job;
  job.application_domain = "Recommendation Systems";
  job.data_sets = {kMovieLens1M, kMovieLens10M};

  job.spec.name = "itembased-cf";
  job.spec.map = {1.4, 1.6, 6000.0};
  job.spec.combine.defined = true;
  job.spec.combine.pairs_selectivity = 0.6;
  job.spec.combine.size_selectivity = 0.6;
  job.spec.combine.cpu_ns_per_record = 800.0;
  job.spec.reduce = {0.5, 1.1, 9000.0};  // Pairwise similarities.

  auto& p = job.program;
  p.job_class_name = "ItemBasedCF";
  p.mapper_class = "UserVectorMapper";
  p.combiner_class = "VectorSumCombiner";
  p.reducer_class = "ItemSimilarityReducer";
  p.map_in_key = "LongWritable";
  p.map_in_value = "Text";
  p.map_out_key = "VarLongWritable";
  p.map_out_value = "VectorWritable";
  p.reduce_out_key = "VarLongWritable";
  p.reduce_out_value = "VectorWritable";
  p.map_function = {"UserVectorMapper.map",
                    Seq({Op("rating = parse(line)"),
                         If("rating.value >= minPreference",
                            Seq({Op("vector = sparse(item, value)"),
                                 Emit()}))})};
  p.reduce_function = {"ItemSimilarityReducer.reduce",
                       Seq({Op("accumulate user vector"),
                            Loop("cooccurring items",
                                 Seq({Call("cosineSimilarity"), Emit()}))})};
  return job;
}

std::vector<BenchmarkJob> FrequentItemsetMiningChain() {
  std::vector<BenchmarkJob> chain;

  {
    BenchmarkJob job;
    job.application_domain = "Data Mining";
    job.data_sets = {kWebdocs};
    job.spec.name = "fim-1-parallel-counting";
    job.spec.map = {40.0, 2.8, 22000.0};  // Candidate itemsets per basket.
    job.spec.combine.defined = true;
    job.spec.combine.pairs_selectivity = 0.15;
    job.spec.combine.size_selectivity = 0.18;
    job.spec.combine.cpu_ns_per_record = 400.0;
    job.spec.reduce = {0.10, 0.15, 1800.0};
    auto& p = job.program;
    p.job_class_name = "PFPGrowthStep1";
    p.mapper_class = "ParallelCountingMapper";
    p.combiner_class = "IntSumReducer";
    p.reducer_class = "IntSumReducer";
    p.map_function = {"ParallelCountingMapper.map",
                      Seq({Op("items = splitBasket(line)"),
                           Loop("items.hasNext", Emit())})};
    p.reduce_function = IntSumReduce("IntSumReducer");
    chain.push_back(job);
  }
  {
    BenchmarkJob job;
    job.application_domain = "Data Mining";
    job.data_sets = {kWebdocs};
    job.spec.name = "fim-2-parallel-fpgrowth";
    job.spec.map = {10.0, 1.4, 15000.0};
    job.spec.combine.defined = true;
    job.spec.combine.pairs_selectivity = 0.35;
    job.spec.combine.size_selectivity = 0.35;
    job.spec.combine.cpu_ns_per_record = 1200.0;
    job.spec.reduce = {0.30, 0.50, 25000.0};  // Local FP-tree mining.
    job.spec.map_heap_demand_base_mb = 60.0;  // Group-dependent F-lists.
    auto& p = job.program;
    p.job_class_name = "PFPGrowthStep2";
    p.mapper_class = "ParallelFPGrowthMapper";
    p.combiner_class = "TopKPatternsCombiner";
    p.reducer_class = "ParallelFPGrowthReducer";
    p.map_out_key = "IntWritable";
    p.map_out_value = "TransactionTree";
    p.reduce_out_value = "TopKStringPatterns";
    p.map_function = {"ParallelFPGrowthMapper.map",
                      Seq({Op("filtered = filterByFList(line)"),
                           Loop("groups.hasNext",
                                If("group.ownsItem",
                                   Seq({Op("subTransaction"), Emit()})))})};
    p.reduce_function = {"ParallelFPGrowthReducer.reduce",
                         Seq({Op("tree = buildFPTree(values)"),
                              Call("fpGrowth"),
                              Loop("patterns.hasNext", Emit())})};
    chain.push_back(job);
  }
  {
    BenchmarkJob job;
    job.application_domain = "Data Mining";
    job.data_sets = {kWebdocs};
    job.spec.name = "fim-3-aggregation";
    job.spec.map = {2.0, 0.9, 5000.0};
    job.spec.combine.defined = false;
    job.spec.reduce = {0.5, 0.6, 3500.0};
    auto& p = job.program;
    p.job_class_name = "PFPGrowthStep3";
    p.mapper_class = "AggregatorMapper";
    p.reducer_class = "AggregatorReducer";
    p.map_out_value = "TopKStringPatterns";
    p.reduce_out_value = "TopKStringPatterns";
    p.map_function = {"AggregatorMapper.map",
                      Seq({Op("patterns = parse(line)"),
                           Loop("patterns.hasNext", Emit())})};
    p.reduce_function = {"AggregatorReducer.reduce",
                         Seq({Op("heap = new TopKHeap()"),
                              Loop("values.hasNext", Op("heap.offer(value)")),
                              Emit()})};
    chain.push_back(job);
  }
  return chain;
}

std::vector<BenchmarkJob> PigMixQueries() {
  std::vector<BenchmarkJob> queries;
  queries.reserve(17);
  for (int i = 1; i <= 17; ++i) {
    BenchmarkJob job;
    job.application_domain = "Pig Benchmark";
    job.data_sets = {kPigMix1Gb, kPigMix35Gb};

    // Deterministic per-query variation across the dataflow space: scans,
    // projections, group-bys, joins, distinct — different selectivities,
    // costs, and code shapes.
    const double pairs = 0.4 + static_cast<double>(i % 5) * 0.7;
    const double size = 0.3 + static_cast<double>(i % 4) * 0.45;
    const bool has_combiner = (i % 3) == 0;

    job.spec.name = "pigmix-l" + std::to_string(i);
    job.spec.map = {pairs, size, 1800.0 + 350.0 * i};
    job.spec.combine.defined = has_combiner;
    if (has_combiner) {
      job.spec.combine.pairs_selectivity = 0.40;
      job.spec.combine.size_selectivity = 0.45;
      job.spec.combine.cpu_ns_per_record = 500.0;
    }
    job.spec.reduce = {0.55 + 0.02 * i, 0.45 + static_cast<double>(i % 3) * 0.3,
                       900.0 + 180.0 * i};

    auto& p = job.program;
    p.job_class_name = "PigMixL" + std::to_string(i);
    // PigMix queries exercise different loaders, store functions, and
    // operator pipelines; their compiled MR jobs differ in most of the
    // customizable parts, which is what keeps them distinguishable to
    // name-based matching.
    p.input_formatter = (i % 4 == 0) ? "PigTextLoader" : "PigStorage";
    p.mapper_class = "PigMapL" + std::to_string(i);
    p.reducer_class = "PigReduceL" + std::to_string(i);
    if (has_combiner) p.combiner_class = "PigCombineL" + std::to_string(i);
    p.map_out_key = (i % 2 == 0) ? "Tuple" : "Text";
    static const char* kValueTypes[] = {"Tuple", "BagOfTuples",
                                        "NullableTuple"};
    p.map_out_value = kValueTypes[i % 3];
    p.reduce_out_key = (i % 2 == 0) ? "Tuple" : "Text";
    p.reduce_out_value = kValueTypes[(i + 1) % 3];
    p.output_formatter =
        (i % 5 == 0) ? "PigSequenceStorer" : "PigStorageStorer";

    // Three body shapes: filter-project, nested foreach, split.
    switch (i % 3) {
      case 0:
        p.map_function = {p.mapper_class + ".map",
                          Seq({Op("tuple = parse(line)"),
                               If("filterExpr(tuple)",
                                  Seq({Op("projected = project(tuple)"),
                                       Emit()}))})};
        break;
      case 1:
        p.map_function = {p.mapper_class + ".map",
                          Seq({Op("tuple = parse(line)"),
                               Loop("bag.hasNext",
                                    Seq({Op("inner = transform(item)"),
                                         Emit()}))})};
        break;
      default:
        p.map_function = {p.mapper_class + ".map",
                          Seq({Op("tuple = parse(line)"),
                               IfElse("splitExpr(tuple)", Emit(),
                                      Seq({Op("rewrite(tuple)"), Emit()}))})};
        break;
    }
    p.reduce_function = {p.reducer_class + ".reduce",
                         (i % 2 == 0)
                             ? Seq({Op("acc = init()"),
                                    Loop("values.hasNext",
                                         Op("acc = fold(acc, value)")),
                                    Emit()})
                             : Seq({Loop("values.hasNext",
                                         Seq({Op("out = finalize(value)"),
                                              Emit()}))})};
    queries.push_back(job);
  }
  return queries;
}

BenchmarkJob Grep(double match_selectivity) {
  PSTORM_CHECK(match_selectivity >= 0.0 && match_selectivity <= 1.0);
  BenchmarkJob job;
  job.application_domain = "Log Analysis";
  job.data_sets = {kRandomText1Gb, kWikipedia35Gb};

  job.spec.name = "grep";
  job.spec.map = {match_selectivity, match_selectivity * 1.1, 2500.0};
  job.spec.combine.defined = false;
  job.spec.reduce = {1.0, 1.0, 500.0};

  auto& p = job.program;
  p.job_class_name = "DistributedGrep";
  char pattern_buf[32];
  std::snprintf(pattern_buf, sizeof(pattern_buf), "sel-%.4f",
                match_selectivity);
  p.user_parameters = {{"pattern", pattern_buf}};
  p.mapper_class = "RegexMapper";
  p.reducer_class = "IdentityReducer";
  p.map_function = {"RegexMapper.map",
                    Seq({Op("matcher = pattern.matcher(line)"),
                         If("matcher.find", Emit())})};
  p.reduce_function = IdentityReduce("IdentityReducer");
  return job;
}

std::vector<BenchmarkJob> AllBenchmarkJobs() {
  std::vector<BenchmarkJob> jobs;
  jobs.push_back(CloudBurst());
  for (BenchmarkJob& job : FrequentItemsetMiningChain()) {
    jobs.push_back(std::move(job));
  }
  jobs.push_back(ItemBasedCollaborativeFiltering());
  jobs.push_back(TpchJoin());
  jobs.push_back(WordCount());
  jobs.push_back(InvertedIndex());
  jobs.push_back(Sort());
  for (BenchmarkJob& job : PigMixQueries()) jobs.push_back(std::move(job));
  jobs.push_back(BigramRelativeFrequency());
  jobs.push_back(WordCooccurrencePairs(2));
  jobs.push_back(WordCooccurrenceStripes());
  return jobs;
}

std::vector<WorkloadEntry> Table61Workload() {
  std::vector<WorkloadEntry> workload;
  for (const BenchmarkJob& job : AllBenchmarkJobs()) {
    for (const std::string& data_set : job.data_sets) {
      WorkloadEntry entry;
      entry.job = job;
      entry.data_set = data_set;
      // Compressibility is a property of the data flowing through the job.
      const auto data = FindDataSet(data_set);
      PSTORM_CHECK(data.ok()) << data.status();
      entry.job.spec.intermediate_compress_ratio =
          std::min(1.0, data->compress_ratio + 0.08);
      entry.job.spec.output_compress_ratio =
          std::min(1.0, data->compress_ratio + 0.12);
      // Selectivities depend (mildly) on the data itself — Wikipedia prose
      // and random text have different word statistics — so the same job's
      // profiles on different data sets are close but not identical
      // (exactly why Figure 4.6 motivates the input-size tie-break).
      auto variation = [&](const char* salt) {
        const uint64_t h =
            Fnv1a64(job.spec.name + "|" + data_set + "|" + salt);
        return 0.92 + 0.16 * (static_cast<double>(h % 1000) / 999.0);
      };
      entry.job.spec.map.size_selectivity *= variation("msz");
      entry.job.spec.map.pairs_selectivity *= variation("mpr");
      entry.job.spec.reduce.size_selectivity *= variation("rsz");
      entry.job.spec.reduce.pairs_selectivity *= variation("rpr");
      workload.push_back(std::move(entry));
    }
  }
  return workload;
}

}  // namespace pstorm::jobs
