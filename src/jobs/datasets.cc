#include "jobs/datasets.h"

namespace pstorm::jobs {

namespace {

constexpr uint64_t kMb = 1ull << 20;
constexpr uint64_t kGb = 1ull << 30;

std::vector<mrsim::DataSetSpec> BuildCatalogue() {
  std::vector<mrsim::DataSetSpec> catalogue;

  {
    mrsim::DataSetSpec d;
    d.name = kRandomText1Gb;
    d.size_bytes = 1 * kGb;
    d.avg_record_bytes = 80.0;  // Short generated lines.
    d.compress_ratio = 0.55;    // Random words compress worse than prose.
    d.vocabulary_mb = 25.0;     // Small generator vocabulary.
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kWikipedia35Gb;
    // Sized to exactly 571 splits of 64 MB — the split count the thesis
    // reports for its 35 GB Wikipedia corpus.
    d.size_bytes = 571ull * 64 * kMb;
    d.avg_record_bytes = 120.0;
    d.compress_ratio = 0.32;
    d.vocabulary_mb = 220.0;  // Wikipedia's vocabulary is enormous.
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kWebdocs;
    d.size_bytes = 1536 * kMb;
    d.avg_record_bytes = 180.0;  // One transaction (item list) per line.
    d.compress_ratio = 0.40;
    d.vocabulary_mb = 60.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kMovieLens1M;
    d.size_bytes = 24 * kMb;
    d.avg_record_bytes = 24.0;  // user::movie::rating::ts
    d.compress_ratio = 0.45;
    d.vocabulary_mb = 2.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kMovieLens10M;
    d.size_bytes = 258 * kMb;
    d.avg_record_bytes = 24.0;
    d.compress_ratio = 0.45;
    d.vocabulary_mb = 6.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kTpch1Gb;
    d.size_bytes = 1 * kGb;
    d.avg_record_bytes = 140.0;  // lineitem/orders rows.
    d.compress_ratio = 0.38;
    d.vocabulary_mb = 15.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kTpch35Gb;
    d.size_bytes = 35ull * kGb;
    d.avg_record_bytes = 140.0;
    d.compress_ratio = 0.38;
    d.vocabulary_mb = 120.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kTeraGen1Gb;
    d.size_bytes = 1 * kGb;
    d.avg_record_bytes = 100.0;  // TeraGen's fixed 100-byte records.
    d.compress_ratio = 0.95;     // Random keys barely compress.
    d.vocabulary_mb = 0.5;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kTeraGen35Gb;
    d.size_bytes = 35ull * kGb;
    d.avg_record_bytes = 100.0;
    d.compress_ratio = 0.95;
    d.vocabulary_mb = 0.5;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kPigMix1Gb;
    d.size_bytes = 1 * kGb;
    d.avg_record_bytes = 160.0;  // Wide page-view rows.
    d.compress_ratio = 0.35;
    d.vocabulary_mb = 20.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kPigMix35Gb;
    d.size_bytes = 35ull * kGb;
    d.avg_record_bytes = 160.0;
    d.compress_ratio = 0.35;
    d.vocabulary_mb = 150.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kGenomeSample;
    d.size_bytes = 256 * kMb;
    d.avg_record_bytes = 200.0;  // Sequence reads.
    d.compress_ratio = 0.28;
    d.vocabulary_mb = 8.0;
    catalogue.push_back(d);
  }
  {
    mrsim::DataSetSpec d;
    d.name = kLakeWashington;
    d.size_bytes = 4 * kGb;
    d.avg_record_bytes = 200.0;
    d.compress_ratio = 0.28;
    d.vocabulary_mb = 40.0;
    catalogue.push_back(d);
  }
  return catalogue;
}

}  // namespace

const std::vector<mrsim::DataSetSpec>& DataSetCatalogue() {
  static const auto* kCatalogue =
      new std::vector<mrsim::DataSetSpec>(BuildCatalogue());
  return *kCatalogue;
}

Result<mrsim::DataSetSpec> FindDataSet(const std::string& name) {
  for (const mrsim::DataSetSpec& d : DataSetCatalogue()) {
    if (d.name == name) return d;
  }
  return Status::NotFound("unknown data set: " + name);
}

}  // namespace pstorm::jobs
