#ifndef PSTORM_JOBS_BENCHMARK_JOBS_H_
#define PSTORM_JOBS_BENCHMARK_JOBS_H_

#include <string>
#include <vector>

#include "mrsim/jobspec.h"
#include "staticanalysis/features.h"

namespace pstorm::jobs {

/// One benchmark MR job: its dataflow truth (for the simulator), its
/// program "bytecode" (for static analysis), and bookkeeping for the
/// Table 6.1 listing.
struct BenchmarkJob {
  mrsim::JobSpec spec;
  staticanalysis::MrProgram program;
  std::string application_domain;
  /// Catalogue names of the data sets this job runs on in the thesis.
  std::vector<std::string> data_sets;
};

// ---- The Table 6.1 suite ------------------------------------------------

/// Word count over text (Text Mining); ships an IntSum combiner.
BenchmarkJob WordCount();

/// Inverted index construction (Text Mining) [Lin & Dyer].
BenchmarkJob InvertedIndex();

/// TeraSort-style total order sort (Many Domains); identity map/reduce.
BenchmarkJob Sort();

/// TPC-H reduce-side join (Business Intelligence); CompositeInputFormat.
BenchmarkJob TpchJoin();

/// Bigram relative frequency (NLP) [Lin & Dyer]: pair + marginal counts.
/// Deliberately similar dataflow to WordCooccurrencePairs(2) — the profile
/// twin the thesis's Figure 1.3 / 4.5 story depends on.
BenchmarkJob BigramRelativeFrequency();

/// Word co-occurrence, pairs formulation (NLP) [Lin & Dyer]. `window` is
/// the user parameter: different windows yield different dataflow, which
/// is why PStorM filters on dynamic features first (§4.3, §7.2.1).
BenchmarkJob WordCooccurrencePairs(int window = 2);

/// Word co-occurrence, stripes formulation (NLP): mapper holds per-word
/// association maps, so heap demand grows with the corpus vocabulary; on
/// the 35 GB Wikipedia set it dies with an OOM, as in the thesis.
BenchmarkJob WordCooccurrenceStripes();

/// CloudBurst read-mapping (Bioinformatics): CPU-heavy seed-and-extend.
BenchmarkJob CloudBurst();

/// Item-based collaborative filtering (Recommendation Systems, Mahout).
BenchmarkJob ItemBasedCollaborativeFiltering();

/// Frequent itemset mining (Data Mining): a chain of three MR jobs over
/// the webdocs transactions, per the thesis.
std::vector<BenchmarkJob> FrequentItemsetMiningChain();

/// The 17 PigMix benchmark queries compiled to MR jobs.
std::vector<BenchmarkJob> PigMixQueries();

/// Distributed grep (extra job from §7.2.1): the search pattern is a user
/// parameter that changes dataflow without changing code.
BenchmarkJob Grep(double match_selectivity = 0.01);

// ---- Workload assembly ---------------------------------------------------

/// One (job, data set) execution of the evaluation workload; the job's
/// intermediate/output compressibility is specialized to the data set.
struct WorkloadEntry {
  BenchmarkJob job;
  std::string data_set;
};

/// Every (job, data set) pair of Table 6.1 — most jobs on two data sets.
std::vector<WorkloadEntry> Table61Workload();

/// All distinct benchmark jobs (convenience for listings).
std::vector<BenchmarkJob> AllBenchmarkJobs();

}  // namespace pstorm::jobs

#endif  // PSTORM_JOBS_BENCHMARK_JOBS_H_
