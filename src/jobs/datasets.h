#ifndef PSTORM_JOBS_DATASETS_H_
#define PSTORM_JOBS_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mrsim/dataset.h"

namespace pstorm::jobs {

/// Statistical stand-ins for the real data sets of thesis Table 6.1
/// (Wikipedia dumps, TPC-H, MovieLens, webdocs, TeraGen, genomes). The
/// simulator only consumes aggregates — sizes, record widths, split
/// counts, compressibility, vocabulary — which these specs reproduce; the
/// 35 GB Wikipedia set is sized to occupy exactly 571 HDFS splits, the
/// number the thesis reports (Figure 4.1).
const std::vector<mrsim::DataSetSpec>& DataSetCatalogue();

/// Looks a data set up by name; NotFound for unknown names.
Result<mrsim::DataSetSpec> FindDataSet(const std::string& name);

// Canonical names used by the benchmark workload.
inline constexpr char kRandomText1Gb[] = "random-text-1gb";
inline constexpr char kWikipedia35Gb[] = "wikipedia-35gb";
inline constexpr char kWebdocs[] = "webdocs-1.5gb";
inline constexpr char kMovieLens1M[] = "movielens-1m";
inline constexpr char kMovieLens10M[] = "movielens-10m";
inline constexpr char kTpch1Gb[] = "tpch-1gb";
inline constexpr char kTpch35Gb[] = "tpch-35gb";
inline constexpr char kTeraGen1Gb[] = "teragen-1gb";
inline constexpr char kTeraGen35Gb[] = "teragen-35gb";
inline constexpr char kPigMix1Gb[] = "pigmix-1gb";
inline constexpr char kPigMix35Gb[] = "pigmix-35gb";
inline constexpr char kGenomeSample[] = "genome-sample";
inline constexpr char kLakeWashington[] = "lakewash-genome";

}  // namespace pstorm::jobs

#endif  // PSTORM_JOBS_DATASETS_H_
