#ifndef PSTORM_STATICANALYSIS_CFG_H_
#define PSTORM_STATICANALYSIS_CFG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "staticanalysis/ir.h"

namespace pstorm::staticanalysis {

enum class CfgNodeKind {
  kEntry,
  /// A maximal run of sequentially executed simple statements — one vertex
  /// per the thesis's CFG definition (§4.1.3).
  kBlock,
  /// A branching statement (loop condition or if condition): exactly two
  /// successors.
  kBranch,
  kExit,
};

struct CfgNode {
  CfgNodeKind kind = CfgNodeKind::kBlock;
  /// Number of simple statements collapsed into this vertex (blocks only).
  int stmt_count = 0;
  /// Condition/operation text for rendering; never used by the matcher.
  std::string label;
  std::vector<int> successors;
};

/// Control flow graph of one map/reduce function, in the shape produced by
/// the thesis's grammar: every node has one successor (normal) or two
/// (branch); loops appear as back edges to the branch node.
class Cfg {
 public:
  Cfg() = default;
  Cfg(std::vector<CfgNode> nodes, int entry, int exit)
      : nodes_(std::move(nodes)), entry_(entry), exit_(exit) {}

  const std::vector<CfgNode>& nodes() const { return nodes_; }
  int entry() const { return entry_; }
  int exit() const { return exit_; }
  bool empty() const { return nodes_.empty(); }

  int num_branches() const;
  int num_blocks() const;
  /// Number of back edges (loops).
  int num_back_edges() const;

  /// Compact adjacency listing, one node per line.
  std::string ToString() const;
  /// Graphviz rendering (used by the Figure 4.2 bench).
  std::string ToDot(const std::string& graph_name) const;

 private:
  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
};

/// Extracts the CFG from a function's IR (the role Soot plays in the
/// thesis). Deterministic: the same IR always yields the same graph with
/// the same node numbering.
Cfg BuildCfg(const FunctionIr& function);

/// Compact text encoding of a CFG (for the profile store); round-trips
/// through ParseCfg. Labels are not preserved — matching ignores them.
std::string SerializeCfg(const Cfg& cfg);
Result<Cfg> ParseCfg(const std::string& text);

}  // namespace pstorm::staticanalysis

#endif  // PSTORM_STATICANALYSIS_CFG_H_
