#include "staticanalysis/features.h"

namespace pstorm::staticanalysis {

std::vector<std::string> StaticFeatures::MapCategorical() const {
  return {in_formatter, mapper,      map_in_key, map_in_val,
          map_out_key,  map_out_val, combiner};
}

std::vector<std::string> StaticFeatures::ReduceCategorical() const {
  return {reducer, red_out_key, red_out_val, out_formatter};
}

StaticFeatures ExtractStaticFeatures(const MrProgram& program) {
  StaticFeatures features;
  features.in_formatter = program.input_formatter;
  features.mapper = program.mapper_class;
  features.map_in_key = program.map_in_key;
  features.map_in_val = program.map_in_value;
  features.map_out_key = program.map_out_key;
  features.map_out_val = program.map_out_value;
  features.combiner =
      program.combiner_class.empty() ? "NULL" : program.combiner_class;
  features.map_cfg = BuildCfg(program.map_function);

  features.reducer = program.reducer_class;
  features.red_out_key = program.reduce_out_key;
  features.red_out_val = program.reduce_out_value;
  features.out_formatter = program.output_formatter;
  features.reduce_cfg = BuildCfg(program.reduce_function);

  std::string params;
  for (const auto& [key, value] : program.user_parameters) {
    if (!params.empty()) params += ";";
    params += key + "=" + value;
  }
  features.user_params = params;
  features.map_calls = CalledFunctions(program.map_function);
  features.reduce_calls = CalledFunctions(program.reduce_function);
  return features;
}

}  // namespace pstorm::staticanalysis
