#include "staticanalysis/cfg_matcher.h"

#include <queue>
#include <vector>

namespace pstorm::staticanalysis {

bool MatchCfgs(const Cfg& a, const Cfg& b, CfgMatchOptions options) {
  if (a.empty() || b.empty()) return a.empty() == b.empty();

  const auto& nodes_a = a.nodes();
  const auto& nodes_b = b.nodes();

  // Bijection under construction between a-nodes and b-nodes.
  std::vector<int> a_to_b(nodes_a.size(), -1);
  std::vector<int> b_to_a(nodes_b.size(), -1);

  std::queue<std::pair<int, int>> frontier;
  frontier.push({a.entry(), b.entry()});
  a_to_b[a.entry()] = b.entry();
  b_to_a[b.entry()] = a.entry();

  while (!frontier.empty()) {
    const auto [na, nb] = frontier.front();
    frontier.pop();
    const CfgNode& node_a = nodes_a[na];
    const CfgNode& node_b = nodes_b[nb];

    if (node_a.kind != node_b.kind) return false;
    if (node_a.successors.size() != node_b.successors.size()) return false;
    if (options.compare_block_sizes &&
        node_a.kind == CfgNodeKind::kBlock &&
        node_a.stmt_count != node_b.stmt_count) {
      return false;
    }

    // Successors are ordered deterministically by construction
    // (fall-through first, branch target second), so lockstep traversal
    // compares like with like.
    for (size_t i = 0; i < node_a.successors.size(); ++i) {
      const int sa = node_a.successors[i];
      const int sb = node_b.successors[i];
      if ((sa < 0) != (sb < 0)) return false;
      if (sa < 0) continue;
      const int mapped_b = a_to_b[sa];
      const int mapped_a = b_to_a[sb];
      if (mapped_b == -1 && mapped_a == -1) {
        a_to_b[sa] = sb;
        b_to_a[sb] = sa;
        frontier.push({sa, sb});
      } else if (mapped_b != sb || mapped_a != sa) {
        return false;  // Inconsistent with the bijection so far.
      }
    }
  }
  return true;
}

}  // namespace pstorm::staticanalysis
