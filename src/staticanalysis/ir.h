#ifndef PSTORM_STATICANALYSIS_IR_H_
#define PSTORM_STATICANALYSIS_IR_H_

#include <memory>
#include <string>
#include <vector>

namespace pstorm::staticanalysis {

/// Statement kinds of the miniature structured IR in which every benchmark
/// job's map/reduce function is written. This plays the role of Java
/// bytecode in the thesis: rich enough to extract the control flow graph
/// and call targets, oblivious to actual data values.
enum class StmtKind {
  /// A simple computation ("tokenize", "extractWords", assignment...).
  kOp,
  /// A context.write(...) of one key/value pair.
  kEmit,
  /// A call to a named helper function (future-work §7.2.2 call-flow
  /// analysis keys off these).
  kCall,
  /// A sequence of statements executed in order.
  kSeq,
  /// A pre-tested loop (while/for): children[0] is the body.
  kLoop,
  /// A conditional: children[0] is the then-branch, optional children[1]
  /// the else-branch.
  kIf,
};

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// One immutable IR statement. Build with the factory helpers below; trees
/// are shared freely (jobs reuse map functions, as real MR code does).
class Stmt {
 public:
  Stmt(StmtKind kind, std::string label, std::vector<StmtPtr> children)
      : kind_(kind), label_(std::move(label)), children_(std::move(children)) {}

  StmtKind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  const std::vector<StmtPtr>& children() const { return children_; }

 private:
  StmtKind kind_;
  std::string label_;
  std::vector<StmtPtr> children_;
};

/// A simple computation statement.
StmtPtr Op(std::string label);
/// A context.write(key, value) statement.
StmtPtr Emit();
/// A call to a helper function.
StmtPtr Call(std::string callee);
/// Sequential composition.
StmtPtr Seq(std::vector<StmtPtr> stmts);
/// while (<cond>) { body }.
StmtPtr Loop(std::string cond, StmtPtr body);
/// if (<cond>) { then_branch }.
StmtPtr If(std::string cond, StmtPtr then_branch);
/// if (<cond>) { then_branch } else { else_branch }.
StmtPtr IfElse(std::string cond, StmtPtr then_branch, StmtPtr else_branch);

/// One map or reduce function: a name plus its body.
struct FunctionIr {
  std::string name;
  StmtPtr body;  // May be null for an identity function.
};

/// Counts statements of each kind; used in tests and diagnostics.
struct IrStats {
  int ops = 0;
  int emits = 0;
  int calls = 0;
  int loops = 0;
  int ifs = 0;
};
IrStats CountStatements(const StmtPtr& stmt);

/// The call flow graph of a single function, flattened: the sorted,
/// deduplicated names of the helper functions it calls (§7.2.2). Two
/// functions with identical control flow but different helpers have
/// different call sets — and very different execution profiles.
std::vector<std::string> CalledFunctions(const FunctionIr& function);

}  // namespace pstorm::staticanalysis

#endif  // PSTORM_STATICANALYSIS_IR_H_
