#ifndef PSTORM_STATICANALYSIS_CFG_MATCHER_H_
#define PSTORM_STATICANALYSIS_CFG_MATCHER_H_

#include "staticanalysis/cfg.h"

namespace pstorm::staticanalysis {

struct CfgMatchOptions {
  /// Also require collapsed basic blocks to contain the same number of
  /// simple statements. Off by default: the thesis matcher compares shape
  /// only, so a while-loop word count matches a for-loop word count.
  bool compare_block_sizes = false;
};

/// Conservative structural CFG equivalence by synchronized breadth-first
/// traversal (thesis §4.2): starting from both entry nodes, walk the two
/// graphs in lockstep, requiring the same node kinds and out-degrees at
/// every step and a consistent bijection between visited nodes. Returns
/// 1/0 match semantics — there is no partial CFG score.
bool MatchCfgs(const Cfg& a, const Cfg& b,
               CfgMatchOptions options = CfgMatchOptions());

}  // namespace pstorm::staticanalysis

#endif  // PSTORM_STATICANALYSIS_CFG_MATCHER_H_
