#ifndef PSTORM_STATICANALYSIS_FEATURES_H_
#define PSTORM_STATICANALYSIS_FEATURES_H_

#include <string>
#include <vector>

#include "staticanalysis/cfg.h"
#include "staticanalysis/ir.h"

namespace pstorm::staticanalysis {

/// The "bytecode" view of one MR job: the customizable parts a programmer
/// supplies against the fixed MapReduce framework (thesis §4.1.2) — class
/// names, key/value types, and the map/reduce function bodies.
struct MrProgram {
  std::string job_class_name;

  std::string input_formatter = "TextInputFormat";
  std::string mapper_class;
  std::string map_in_key = "LongWritable";
  std::string map_in_value = "Text";
  std::string map_out_key = "Text";
  std::string map_out_value = "IntWritable";
  /// Empty when the job ships no combiner.
  std::string combiner_class;
  std::string reducer_class;
  std::string reduce_out_key = "Text";
  std::string reduce_out_value = "IntWritable";
  std::string output_formatter = "TextOutputFormat";

  FunctionIr map_function;
  FunctionIr reduce_function;

  /// Job parameters supplied at submission (e.g. the co-occurrence window
  /// size, a grep pattern), in (key, value) form. The §7.2.1 extension
  /// folds these into the static feature vector.
  std::vector<std::pair<std::string, std::string>> user_parameters;
};

/// The static feature vector of Table 4.3: eleven categorical features plus
/// the two control flow graphs, split by side for the map/reduce matching
/// workflow of Figure 4.4.
struct StaticFeatures {
  // Map side.
  std::string in_formatter;
  std::string mapper;
  std::string map_in_key;
  std::string map_in_val;
  std::string map_out_key;
  std::string map_out_val;
  std::string combiner;  // "NULL" when absent.
  Cfg map_cfg;

  // Reduce side.
  std::string reducer;
  std::string red_out_key;
  std::string red_out_val;
  std::string out_formatter;
  Cfg reduce_cfg;

  // §7.2 extensions.
  /// User parameters canonicalized to one "k=v;k=v" string ("" if none).
  std::string user_params;
  /// Sorted helper functions called by each side (§7.2.2 call flow graph).
  std::vector<std::string> map_calls;
  std::vector<std::string> reduce_calls;

  /// The map-side categorical features, in Table 4.3 order.
  std::vector<std::string> MapCategorical() const;
  /// The reduce-side categorical features, in Table 4.3 order.
  std::vector<std::string> ReduceCategorical() const;
};

/// Static analysis of a program: extracts class/type names directly and
/// runs the CFG builder over the map and reduce bodies (the step the
/// thesis delegates to Soot).
StaticFeatures ExtractStaticFeatures(const MrProgram& program);

}  // namespace pstorm::staticanalysis

#endif  // PSTORM_STATICANALYSIS_FEATURES_H_
