#include "staticanalysis/ir.h"

#include <algorithm>

namespace pstorm::staticanalysis {

StmtPtr Op(std::string label) {
  return std::make_shared<Stmt>(StmtKind::kOp, std::move(label),
                                std::vector<StmtPtr>{});
}

StmtPtr Emit() {
  return std::make_shared<Stmt>(StmtKind::kEmit, "context.write",
                                std::vector<StmtPtr>{});
}

StmtPtr Call(std::string callee) {
  return std::make_shared<Stmt>(StmtKind::kCall, std::move(callee),
                                std::vector<StmtPtr>{});
}

StmtPtr Seq(std::vector<StmtPtr> stmts) {
  return std::make_shared<Stmt>(StmtKind::kSeq, "", std::move(stmts));
}

StmtPtr Loop(std::string cond, StmtPtr body) {
  return std::make_shared<Stmt>(StmtKind::kLoop, std::move(cond),
                                std::vector<StmtPtr>{std::move(body)});
}

StmtPtr If(std::string cond, StmtPtr then_branch) {
  return std::make_shared<Stmt>(StmtKind::kIf, std::move(cond),
                                std::vector<StmtPtr>{std::move(then_branch)});
}

StmtPtr IfElse(std::string cond, StmtPtr then_branch, StmtPtr else_branch) {
  return std::make_shared<Stmt>(
      StmtKind::kIf, std::move(cond),
      std::vector<StmtPtr>{std::move(then_branch), std::move(else_branch)});
}

namespace {
void CountInto(const StmtPtr& stmt, IrStats* stats) {
  if (stmt == nullptr) return;
  switch (stmt->kind()) {
    case StmtKind::kOp:
      ++stats->ops;
      break;
    case StmtKind::kEmit:
      ++stats->emits;
      break;
    case StmtKind::kCall:
      ++stats->calls;
      break;
    case StmtKind::kSeq:
      break;
    case StmtKind::kLoop:
      ++stats->loops;
      break;
    case StmtKind::kIf:
      ++stats->ifs;
      break;
  }
  for (const StmtPtr& child : stmt->children()) CountInto(child, stats);
}
}  // namespace

IrStats CountStatements(const StmtPtr& stmt) {
  IrStats stats;
  CountInto(stmt, &stats);
  return stats;
}

namespace {
void CollectCalls(const StmtPtr& stmt, std::vector<std::string>* out) {
  if (stmt == nullptr) return;
  if (stmt->kind() == StmtKind::kCall) out->push_back(stmt->label());
  for (const StmtPtr& child : stmt->children()) CollectCalls(child, out);
}
}  // namespace

std::vector<std::string> CalledFunctions(const FunctionIr& function) {
  std::vector<std::string> calls;
  CollectCalls(function.body, &calls);
  std::sort(calls.begin(), calls.end());
  calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
  return calls;
}

}  // namespace pstorm::staticanalysis
