#include "staticanalysis/cfg.h"

#include <cstdlib>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace pstorm::staticanalysis {

namespace {

bool IsSimple(const Stmt& stmt) {
  return stmt.kind() == StmtKind::kOp || stmt.kind() == StmtKind::kEmit ||
         stmt.kind() == StmtKind::kCall;
}

/// Flattens nested kSeq nodes into one statement list.
void Flatten(const StmtPtr& stmt, std::vector<StmtPtr>* out) {
  if (stmt == nullptr) return;
  if (stmt->kind() == StmtKind::kSeq) {
    for (const StmtPtr& child : stmt->children()) Flatten(child, out);
  } else {
    out->push_back(stmt);
  }
}

/// Builder with patchable successor slots: an "exit" is a (node, slot)
/// pair whose target is filled in once the following construct is built.
class Builder {
 public:
  using Exit = std::pair<int, int>;  // (node id, successor slot)

  Cfg Build(const FunctionIr& function) {
    const int entry = NewNode(CfgNodeKind::kEntry, "entry", 1);
    std::vector<Exit> exits = {{entry, 0}};
    exits = BuildStmt(function.body, std::move(exits));
    const int exit = NewNode(CfgNodeKind::kExit, "exit", 0);
    Patch(exits, exit);
    return Cfg(std::move(nodes_), entry, exit);
  }

 private:
  int NewNode(CfgNodeKind kind, std::string label, int num_successors) {
    CfgNode node;
    node.kind = kind;
    node.label = std::move(label);
    node.successors.assign(num_successors, -1);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  }

  void Patch(const std::vector<Exit>& exits, int target) {
    for (const auto& [node, slot] : exits) {
      PSTORM_CHECK(nodes_[node].successors[slot] == -1);
      nodes_[node].successors[slot] = target;
    }
  }

  /// Builds `stmt` with control arriving from `incoming`; returns the new
  /// dangling exits.
  std::vector<Exit> BuildStmt(const StmtPtr& stmt,
                              std::vector<Exit> incoming) {
    std::vector<StmtPtr> sequence;
    Flatten(stmt, &sequence);

    size_t i = 0;
    while (i < sequence.size()) {
      if (IsSimple(*sequence[i])) {
        // Collapse the maximal run of simple statements into one block
        // vertex.
        int count = 0;
        std::string label = sequence[i]->label();
        while (i < sequence.size() && IsSimple(*sequence[i])) {
          ++count;
          ++i;
        }
        const int block = NewNode(CfgNodeKind::kBlock, std::move(label), 1);
        nodes_[block].stmt_count = count;
        Patch(incoming, block);
        incoming = {{block, 0}};
      } else if (sequence[i]->kind() == StmtKind::kLoop) {
        const StmtPtr& loop = sequence[i];
        const int branch =
            NewNode(CfgNodeKind::kBranch, "while " + loop->label(), 2);
        Patch(incoming, branch);
        // Slot 0: loop body, which flows back to the branch.
        std::vector<Exit> body_exits =
            BuildStmt(loop->children()[0], {{branch, 0}});
        PatchBack(body_exits, branch);
        // Slot 1: fall through past the loop.
        incoming = {{branch, 1}};
        ++i;
      } else {
        PSTORM_CHECK(sequence[i]->kind() == StmtKind::kIf);
        const StmtPtr& cond = sequence[i];
        const int branch =
            NewNode(CfgNodeKind::kBranch, "if " + cond->label(), 2);
        Patch(incoming, branch);
        std::vector<Exit> exits =
            BuildStmt(cond->children()[0], {{branch, 0}});
        if (cond->children().size() > 1) {
          std::vector<Exit> else_exits =
              BuildStmt(cond->children()[1], {{branch, 1}});
          exits.insert(exits.end(), else_exits.begin(), else_exits.end());
        } else {
          exits.push_back({branch, 1});
        }
        incoming = std::move(exits);
        ++i;
      }
    }
    return incoming;
  }

  /// Wires loop-body exits back to the loop's branch node. A body exit may
  /// equal the branch itself (empty body): that self-loop is fine.
  void PatchBack(const std::vector<Exit>& exits, int branch) {
    for (const auto& [node, slot] : exits) {
      PSTORM_CHECK(nodes_[node].successors[slot] == -1);
      nodes_[node].successors[slot] = branch;
    }
  }

  std::vector<CfgNode> nodes_;
};

const char* KindName(CfgNodeKind kind) {
  switch (kind) {
    case CfgNodeKind::kEntry:
      return "entry";
    case CfgNodeKind::kBlock:
      return "block";
    case CfgNodeKind::kBranch:
      return "branch";
    case CfgNodeKind::kExit:
      return "exit";
  }
  return "?";
}

}  // namespace

Cfg BuildCfg(const FunctionIr& function) {
  return Builder().Build(function);
}

int Cfg::num_branches() const {
  int count = 0;
  for (const CfgNode& node : nodes_) {
    if (node.kind == CfgNodeKind::kBranch) ++count;
  }
  return count;
}

int Cfg::num_blocks() const {
  int count = 0;
  for (const CfgNode& node : nodes_) {
    if (node.kind == CfgNodeKind::kBlock) ++count;
  }
  return count;
}

int Cfg::num_back_edges() const {
  // A back edge targets a node with a smaller id: construction numbers
  // nodes in control-flow order, so only loop edges point backwards (or to
  // the branch itself).
  int count = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int succ : nodes_[i].successors) {
      if (succ >= 0 && static_cast<size_t>(succ) <= i) ++count;
    }
  }
  return count;
}

std::string Cfg::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += std::to_string(i);
    out += " [";
    out += KindName(nodes_[i].kind);
    if (nodes_[i].kind == CfgNodeKind::kBlock) {
      out += " x" + std::to_string(nodes_[i].stmt_count);
    }
    out += "] ->";
    for (int succ : nodes_[i].successors) {
      out += " " + std::to_string(succ);
    }
    out += "\n";
  }
  return out;
}

std::string SerializeCfg(const Cfg& cfg) {
  // "entry exit;kind,stmt_count,succ,succ;..." — kind as an integer.
  std::string out = std::to_string(cfg.entry()) + " " +
                    std::to_string(cfg.exit());
  for (const CfgNode& node : cfg.nodes()) {
    out += ";";
    out += std::to_string(static_cast<int>(node.kind));
    out += "," + std::to_string(node.stmt_count);
    for (int succ : node.successors) out += "," + std::to_string(succ);
  }
  return out;
}

Result<Cfg> ParseCfg(const std::string& text) {
  const std::vector<std::string> parts = StrSplit(text, ';');
  if (parts.empty()) return Status::Corruption("empty cfg encoding");
  const std::vector<std::string> header = StrSplit(parts[0], ' ');
  if (header.size() != 2) return Status::Corruption("bad cfg header");

  auto to_int = [](const std::string& s, int* out) {
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') return false;
    *out = static_cast<int>(v);
    return true;
  };

  int entry = 0, exit = 0;
  if (!to_int(header[0], &entry) || !to_int(header[1], &exit)) {
    return Status::Corruption("bad cfg header numbers");
  }
  std::vector<CfgNode> nodes;
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::vector<std::string> fields = StrSplit(parts[i], ',');
    if (fields.size() < 2) return Status::Corruption("bad cfg node");
    CfgNode node;
    int kind = 0;
    if (!to_int(fields[0], &kind) || kind < 0 || kind > 3) {
      return Status::Corruption("bad cfg node kind");
    }
    node.kind = static_cast<CfgNodeKind>(kind);
    if (!to_int(fields[1], &node.stmt_count)) {
      return Status::Corruption("bad cfg stmt count");
    }
    for (size_t f = 2; f < fields.size(); ++f) {
      int succ = 0;
      if (!to_int(fields[f], &succ)) {
        return Status::Corruption("bad cfg successor");
      }
      node.successors.push_back(succ);
    }
    nodes.push_back(std::move(node));
  }
  const int n = static_cast<int>(nodes.size());
  if (entry < 0 || entry >= n || exit < 0 || exit >= n) {
    return Status::Corruption("cfg entry/exit out of range");
  }
  for (const CfgNode& node : nodes) {
    for (int succ : node.successors) {
      if (succ < 0 || succ >= n) {
        return Status::Corruption("cfg successor out of range");
      }
    }
  }
  return Cfg(std::move(nodes), entry, exit);
}

std::string Cfg::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const CfgNode& node = nodes_[i];
    std::string shape;
    switch (node.kind) {
      case CfgNodeKind::kEntry:
      case CfgNodeKind::kExit:
        shape = "oval";
        break;
      case CfgNodeKind::kBlock:
        shape = "box";
        break;
      case CfgNodeKind::kBranch:
        shape = "diamond";
        break;
    }
    out += "  n" + std::to_string(i) + " [shape=" + shape + ", label=\"" +
           (node.label.empty() ? KindName(node.kind) : node.label) + "\"];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int succ : nodes_[i].successors) {
      if (succ >= 0) {
        out += "  n" + std::to_string(i) + " -> n" + std::to_string(succ) +
               ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace pstorm::staticanalysis
