// Scenario: PStorM as a shared tuning service on a multi-tenant cluster
// (thesis chapter 1: "PStorM can be deployed on the cluster of a cloud
// provider offering Hadoop as a service").
//
// Tenants do not queue politely: submissions arrive from many clients at
// once. This driver models that — a short single-threaded warm-up stream
// seeds the store, then M client threads each fire K submissions
// concurrently at one PStorM instance. It doubles as a stress harness:
// run it under ThreadSanitizer (PSTORM_SANITIZE=thread) or crank the
// thread/submission counts via argv.
//
// Build & run:  cmake --build build && ./build/examples/shared_cluster_service
//               ./build/examples/shared_cluster_service <threads> <per-thread>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/pstorm.h"
#include "hstore/table_replica.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace pstorm;

namespace {

struct Submission {
  const char* tenant;
  jobs::BenchmarkJob job;
  const char* data_set;
};

std::vector<Submission> TenantStream() {
  return {
      {"search-team", jobs::InvertedIndex(), jobs::kRandomText1Gb},
      {"nlp-team", jobs::BigramRelativeFrequency(), jobs::kRandomText1Gb},
      {"bi-team", jobs::TpchJoin(), jobs::kTpch1Gb},
      {"nlp-team", jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {"analytics", jobs::WordCount(), jobs::kRandomText1Gb},
      {"ml-team", jobs::ItemBasedCollaborativeFiltering(),
       jobs::kMovieLens10M},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const int num_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_thread = argc > 2 ? std::atoi(argv[2]) : 3;
  if (num_threads < 1 || per_thread < 1) {
    std::fprintf(stderr, "usage: %s [threads >= 1] [submissions >= 1]\n",
                 argv[0]);
    return 2;
  }

  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;
  core::PStormOptions options;
  options.cbo.global_samples = 250;  // Service latency budget.
  options.cbo.local_samples = 80;
  auto pstorm =
      core::PStorM::Create(&simulator, &env, "/service-store", options);
  if (!pstorm.ok()) return 1;
  const core::PStorM& service = **pstorm;

  const std::vector<Submission> stream = TenantStream();

  // A warm standby on its own "disk" tails the service's profile store:
  // if the primary store dies, the tuning history fails over instead of
  // being recollected one profiled run at a time (see the README failover
  // runbook).
  storage::InMemoryEnv standby_env;
  auto standby = hstore::HTableReplica::Open(
      (*pstorm)->store().table(), &standby_env, "/standby-store");
  if (!standby.ok()) {
    std::fprintf(stderr, "standby open failed: %s\n",
                 standby.status().ToString().c_str());
    return 1;
  }

  // Phase 1 — warm-up: each tenant's first submission runs cold and
  // single-threaded, profiled, and lands in the store.
  std::printf("=== Shared-cluster tuning service ===\n\n");
  std::printf("--- warm-up (serial, cold submissions) ---\n");
  std::printf("%-14s %-28s %-8s %s\n", "tenant", "job", "match?", "runtime");
  double total_untuned = 0, total_with_pstorm = 0;
  uint64_t seed = 100;
  for (const Submission& s : stream) {
    const auto data = jobs::FindDataSet(s.data_set).value();
    auto outcome =
        service.SubmitJob(s.job, data, mrsim::Configuration{}, ++seed);
    if (!outcome.ok()) {
      std::printf("submission failed: %s\n",
                  outcome.status().ToString().c_str());
      return 1;
    }
    auto untuned = simulator.RunJob(s.job.spec, data, mrsim::Configuration{},
                                    {.seed = seed});
    if (!untuned.ok()) return 1;
    total_with_pstorm += outcome->runtime_s + outcome->sample_runtime_s;
    total_untuned += untuned->runtime_s;
    std::printf("%-14s %-28s %-8s %s\n", s.tenant, s.job.spec.name.c_str(),
                outcome->matched ? "yes" : "no",
                HumanDuration(outcome->runtime_s).c_str());
  }

  // Phase 2 — the rush hour: every client thread replays the tenant mix
  // against the warmed store, all at once, through the same reentrant
  // SubmitJob. Matched submissions don't mutate the store, so any
  // interleaving must produce the same per-submission outcomes.
  std::printf("\n--- concurrent phase: %d threads x %d submissions ---\n",
              num_threads, per_thread);
  std::atomic<int> matches{0};
  std::atomic<int> failures{0};
  std::atomic<long> tuned_ms{0};
  std::atomic<long> untuned_ms{0};
  std::mutex print_mu;
  std::vector<std::thread> clients;
  for (int t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < per_thread; ++k) {
        const Submission& s = stream[(t + k) % stream.size()];
        const auto data = jobs::FindDataSet(s.data_set).value();
        const uint64_t sub_seed = 1000 + t * 97 + k;
        auto outcome =
            service.SubmitJob(s.job, data, mrsim::Configuration{}, sub_seed);
        if (!outcome.ok()) {
          std::lock_guard<std::mutex> lock(print_mu);
          std::printf("client %d: submission failed: %s\n", t,
                      outcome.status().ToString().c_str());
          failures.fetch_add(1);
          continue;
        }
        auto untuned = simulator.RunJob(s.job.spec, data,
                                        mrsim::Configuration{},
                                        {.seed = sub_seed});
        if (untuned.ok()) {
          tuned_ms.fetch_add(static_cast<long>(
              1e3 * (outcome->runtime_s + outcome->sample_runtime_s)));
          untuned_ms.fetch_add(static_cast<long>(1e3 * untuned->runtime_s));
        }
        if (outcome->matched) matches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  if (failures.load() != 0) return 1;

  const int total = num_threads * per_thread;
  total_with_pstorm += tuned_ms.load() / 1e3;
  total_untuned += untuned_ms.load() / 1e3;
  std::printf("concurrent submissions: %d   matched: %d/%d\n", total,
              matches.load(), total);

  // How far behind did the standby end up, and what moved over the wire?
  // (Matched submissions don't write, so the lag is whatever the warm-up
  // stores left; one sync drains it.)
  {
    const unsigned long long live_lag = (*standby)->lag();
    if (!(*standby)->Sync().ok()) return 1;
    const storage::ReplicationStats repl = (*standby)->stats();
    std::printf(
        "standby replica: lag %llu -> %llu records after sync; "
        "%llu records / %llu batches shipped, %llu checkpoint bootstraps\n",
        live_lag, static_cast<unsigned long long>((*standby)->lag()),
        static_cast<unsigned long long>(repl.shipped_records),
        static_cast<unsigned long long>(repl.shipped_batches),
        static_cast<unsigned long long>(repl.checkpoint_ships));
  }

  std::printf("\nstore profiles: %zu\n", service.store().num_profiles());
  std::printf("cluster time, always untuned:  %s\n",
              HumanDuration(total_untuned).c_str());
  std::printf("cluster time, via PStorM:      %s (incl. sampling)\n",
              HumanDuration(total_with_pstorm).c_str());
  std::printf("aggregate saving:              %.1f%%\n",
              100.0 * (1.0 - total_with_pstorm / total_untuned));

  // Phase 3 — postmortem: replay one warm submission with a trace attached
  // to show what one SubmitJob actually did, then dump the process-wide
  // metrics the whole run accumulated.
  {
    const Submission& s = stream[0];
    const auto data = jobs::FindDataSet(s.data_set).value();
    obs::SubmissionTrace trace;
    auto outcome = service.SubmitJob(s.job, data, mrsim::Configuration{},
                                     ++seed, &trace);
    if (!outcome.ok()) return 1;
    std::printf("\n--- trace of one %s submission ---\n%s",
                s.tenant, trace.ToString().c_str());
  }
  // The block cache sits under every profile read the service just
  // served; its hit rate is the one-number summary of how much of the
  // read path ran from decoded memory instead of decompressing sstable
  // blocks again.
  {
    const uint64_t cache_hits =
        obs::MetricsRegistry::Global()
            .GetCounter("pstorm_block_cache_hits_total")
            .Value();
    const uint64_t cache_misses =
        obs::MetricsRegistry::Global()
            .GetCounter("pstorm_block_cache_misses_total")
            .Value();
    const uint64_t lookups = cache_hits + cache_misses;
    std::printf("\nblock cache: %llu hits / %llu lookups (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(lookups),
                lookups == 0 ? 0.0 : 100.0 * cache_hits / lookups);
  }
  std::printf("\n--- end-of-run metrics dump ---\n%s",
              obs::MetricsRegistry::Global().Dump().c_str());
  return 0;
}
