// Scenario: PStorM as a shared tuning service on a multi-tenant cluster
// (thesis chapter 1: "PStorM can be deployed on the cluster of a cloud
// provider offering Hadoop as a service").
//
// A mixed stream of jobs from different "tenants" hits the cluster over
// time. Every submission goes through the PStorM workflow; the store
// warms up, the match rate climbs, and the aggregate time saved versus
// always running untuned is reported — including tenants whose jobs are
// variants of other tenants' code.
//
// Build & run:  cmake --build build && ./build/examples/shared_cluster_service

#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "core/pstorm.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"

using namespace pstorm;

int main() {
  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;
  core::PStormOptions options;
  options.cbo.global_samples = 250;  // Service latency budget.
  options.cbo.local_samples = 80;
  auto pstorm =
      core::PStorM::Create(&simulator, &env, "/service-store", options);
  if (!pstorm.ok()) return 1;
  core::PStorM& service = **pstorm;

  struct Submission {
    const char* tenant;
    jobs::BenchmarkJob job;
    const char* data_set;
  };
  const std::vector<Submission> stream = {
      {"search-team", jobs::InvertedIndex(), jobs::kRandomText1Gb},
      {"nlp-team", jobs::BigramRelativeFrequency(), jobs::kRandomText1Gb},
      {"bi-team", jobs::TpchJoin(), jobs::kTpch1Gb},
      {"search-team", jobs::InvertedIndex(), jobs::kRandomText1Gb},
      {"nlp-team", jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {"analytics", jobs::WordCount(), jobs::kRandomText1Gb},
      {"bi-team", jobs::TpchJoin(), jobs::kTpch1Gb},
      {"analytics", jobs::WordCount(), jobs::kRandomText1Gb},
      {"nlp-team", jobs::WordCooccurrencePairs(2), jobs::kRandomText1Gb},
      {"ml-team", jobs::ItemBasedCollaborativeFiltering(),
       jobs::kMovieLens10M},
  };

  std::printf("=== Shared-cluster tuning service ===\n\n");
  std::printf("%-14s %-28s %-8s %-22s %s\n", "tenant", "job", "match?",
              "profile source", "runtime");

  double total_with_pstorm = 0, total_untuned = 0;
  int matches = 0;
  uint64_t seed = 100;
  for (const Submission& s : stream) {
    const auto data = jobs::FindDataSet(s.data_set).value();
    auto outcome =
        service.SubmitJob(s.job, data, mrsim::Configuration{}, ++seed);
    if (!outcome.ok()) {
      std::printf("submission failed: %s\n",
                  outcome.status().ToString().c_str());
      return 1;
    }
    auto untuned = simulator.RunJob(s.job.spec, data, mrsim::Configuration{},
                                    {.seed = seed});
    if (!untuned.ok()) return 1;

    total_with_pstorm += outcome->runtime_s + outcome->sample_runtime_s;
    total_untuned += untuned->runtime_s;
    matches += outcome->matched ? 1 : 0;
    std::printf("%-14s %-28s %-8s %-22s %s\n", s.tenant,
                s.job.spec.name.c_str(), outcome->matched ? "yes" : "no",
                outcome->matched ? outcome->profile_source.c_str() : "-",
                HumanDuration(outcome->runtime_s).c_str());
  }

  std::printf("\nstore profiles: %zu   match rate: %d/%zu\n",
              service.store().num_profiles(), matches, stream.size());
  std::printf("cluster time, always untuned:  %s\n",
              HumanDuration(total_untuned).c_str());
  std::printf("cluster time, via PStorM:      %s (incl. sampling)\n",
              HumanDuration(total_with_pstorm).c_str());
  std::printf("aggregate saving:              %.1f%%\n",
              100.0 * (1.0 - total_with_pstorm / total_untuned));
  return 0;
}
