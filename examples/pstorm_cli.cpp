// pstorm_cli — command-line driver over the library, in the spirit of a
// cluster operator's tool:
//
//   pstorm_cli workload                      list jobs and data sets
//   pstorm_cli run <job> <dataset> [N]       simulate under defaults
//                                            (optional reducer count N)
//   pstorm_cli tune <job> <dataset>          profile + CBO, show speedup
//   pstorm_cli explain <jobA> <dsA> <jobB> <dsB>
//                                            PerfXplain-style report

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"
#include "core/explain.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "profiler/profiler.h"
#include "whatif/whatif_engine.h"

using namespace pstorm;

namespace {

Result<jobs::BenchmarkJob> FindJob(const std::string& name) {
  for (const jobs::BenchmarkJob& job : jobs::AllBenchmarkJobs()) {
    if (job.spec.name == name) return job;
  }
  if (name == "grep") return jobs::Grep();
  return Status::NotFound("unknown job: " + name +
                          " (try `pstorm_cli workload`)");
}

int CmdWorkload() {
  std::printf("%-30s %-28s %s\n", "job", "domain", "data sets");
  for (const jobs::BenchmarkJob& job : jobs::AllBenchmarkJobs()) {
    std::printf("%-30s %-28s %s\n", job.spec.name.c_str(),
                job.application_domain.c_str(),
                StrJoin(job.data_sets, ", ").c_str());
  }
  std::printf("\n%-18s %-10s %s\n", "data set", "size", "splits");
  for (const auto& d : jobs::DataSetCatalogue()) {
    std::printf("%-18s %-10s %llu\n", d.name.c_str(),
                HumanBytes(d.size_bytes).c_str(),
                static_cast<unsigned long long>(d.num_splits()));
  }
  return 0;
}

int CmdRun(const std::string& job_name, const std::string& data_name,
           int reducers) {
  auto job = FindJob(job_name);
  auto data = jobs::FindDataSet(data_name);
  if (!job.ok() || !data.ok()) {
    std::fprintf(stderr, "%s\n",
                 (job.ok() ? data.status() : job.status()).ToString().c_str());
    return 1;
  }
  mrsim::Configuration config;
  if (reducers > 0) config.num_reduce_tasks = reducers;
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto result = sim.RunJob(job->spec, *data, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("job:       %s on %s\n", job_name.c_str(), data_name.c_str());
  std::printf("config:    %s\n", config.ToString().c_str());
  std::printf("runtime:   %s  (map phase %s)\n",
              HumanDuration(result->runtime_s).c_str(),
              HumanDuration(result->map_phase_end_s).c_str());
  std::printf("map tasks: %zu   reduce tasks: %zu\n",
              result->map_tasks.size(), result->reduce_tasks.size());
  std::printf("shuffled:  %s\n",
              HumanBytes(static_cast<uint64_t>(
                  result->total_map_output_wire_bytes))
                  .c_str());
  return 0;
}

int CmdTune(const std::string& job_name, const std::string& data_name) {
  auto job = FindJob(job_name);
  auto data = jobs::FindDataSet(data_name);
  if (!job.ok() || !data.ok()) {
    std::fprintf(stderr, "%s\n",
                 (job.ok() ? data.status() : job.status()).ToString().c_str());
    return 1;
  }
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const optimizer::CostBasedOptimizer cbo(&engine);

  auto before = sim.RunJob(job->spec, *data, mrsim::Configuration{});
  auto profiled =
      prof.ProfileFullRun(job->spec, *data, mrsim::Configuration{}, 1);
  if (!before.ok() || !profiled.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 (before.ok() ? profiled.status() : before.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  auto rec = cbo.Optimize(profiled->profile, *data);
  if (!rec.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }
  auto after = sim.RunJob(job->spec, *data, rec->config);
  if (!after.ok()) {
    std::fprintf(stderr, "tuned run failed: %s\n",
                 after.status().ToString().c_str());
    return 1;
  }
  std::printf("default:     %s\n", HumanDuration(before->runtime_s).c_str());
  std::printf("recommended: %s\n", rec->config.ToString().c_str());
  std::printf("predicted:   %s   (%d candidates evaluated)\n",
              HumanDuration(rec->predicted_runtime_s).c_str(),
              rec->candidates_evaluated);
  std::printf("tuned:       %s\n", HumanDuration(after->runtime_s).c_str());
  std::printf("speedup:     %.2fx\n",
              before->runtime_s / after->runtime_s);
  return 0;
}

int CmdExplain(const std::string& job_a, const std::string& data_a,
               const std::string& job_b, const std::string& data_b) {
  auto ja = FindJob(job_a);
  auto jb = FindJob(job_b);
  auto da = jobs::FindDataSet(data_a);
  auto db = jobs::FindDataSet(data_b);
  if (!ja.ok() || !jb.ok() || !da.ok() || !db.ok()) {
    std::fprintf(stderr, "bad job or data set name\n");
    return 1;
  }
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  auto pa = prof.ProfileFullRun(ja->spec, *da, mrsim::Configuration{}, 1);
  auto pb = prof.ProfileFullRun(jb->spec, *db, mrsim::Configuration{}, 2);
  if (!pa.ok() || !pb.ok()) {
    std::fprintf(stderr, "profiling failed\n");
    return 1;
  }
  const auto explanations = core::ExplainPerformanceDifference(
      pa->profile, staticanalysis::ExtractStaticFeatures(ja->program),
      pb->profile, staticanalysis::ExtractStaticFeatures(jb->program));
  std::printf("%s", core::RenderExplanations(job_a, job_b, explanations)
                        .c_str());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pstorm_cli workload\n"
               "  pstorm_cli run <job> <dataset> [reducers]\n"
               "  pstorm_cli tune <job> <dataset>\n"
               "  pstorm_cli explain <jobA> <dsA> <jobB> <dsB>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "workload") return CmdWorkload();
  if (command == "run" && (argc == 4 || argc == 5)) {
    return CmdRun(argv[2], argv[3], argc == 5 ? std::atoi(argv[4]) : 0);
  }
  if (command == "tune" && argc == 4) return CmdTune(argv[2], argv[3]);
  if (command == "explain" && argc == 6) {
    return CmdExplain(argv[2], argv[3], argv[4], argv[5]);
  }
  Usage();
  return 2;
}
