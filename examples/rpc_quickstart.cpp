// Scenario: PStorM as a network service. Starts an in-process RPC server
// (two shards, in-memory stores), connects the rpc::Client, and walks the
// wire API end to end: Echo, a cold SubmitJob that stores a profile, a
// warm resubmission that matches it, and GetStats showing where tenants
// landed.
//
// Build & run:  cmake --build build && ./build/examples/rpc_quickstart
//
// For a real deployment the server side is the pstorm_server binary
// (tools/pstorm_server_main.cc); the client side is exactly this code.

#include <cstdio>

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "mrsim/cluster.h"
#include "mrsim/simulator.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/shard_router.h"
#include "storage/env.h"

using namespace pstorm;

int main() {
  // --- Server side: shard router over two PStorM instances + reactor. ---
  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;
  rpc::ShardRouterOptions router_options;
  router_options.num_shards = 2;
  auto router = rpc::ShardRouter::Create(&simulator, &env, "/pstorm",
                                         router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "router: %s\n", router.status().ToString().c_str());
    return 1;
  }
  auto server = rpc::Server::Start(router->get());  // Kernel-picked port.
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", (*server)->port());

  // --- Client side: everything below only touches the wire API. ---
  auto client = rpc::Client::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }

  auto echoed = (*client)->Echo("hello pstorm");
  if (!echoed.ok()) return 1;
  std::printf("echo: %s\n\n", echoed->c_str());

  // A submission travels as the job's catalogue name plus the data set's
  // statistical spec; the server resolves, samples, matches, and tunes.
  rpc::SubmitJobRequest request;
  request.tenant = "nlp-team";
  request.job_name = "word-count";
  request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  request.seed = 42;

  auto cold = (*client)->SubmitJob(request);
  if (!cold.ok()) {
    std::fprintf(stderr, "submit: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  std::printf("cold submission (shard %u): matched=%s stored=%s runtime=%s\n",
              cold->shard, cold->matched ? "yes" : "no",
              cold->stored_new_profile ? "yes" : "no",
              HumanDuration(cold->runtime_s).c_str());

  request.seed = 43;
  auto warm = (*client)->SubmitJob(request);
  if (!warm.ok()) return 1;
  std::printf("warm submission (shard %u): matched=%s source=%s runtime=%s\n",
              warm->shard, warm->matched ? "yes" : "no",
              warm->profile_source.c_str(),
              HumanDuration(warm->runtime_s).c_str());

  // A second tenant may hash to the other shard — its store starts cold.
  request.tenant = "bi-team";
  request.job_name = "tpch-join";
  request.data = jobs::FindDataSet(jobs::kTpch1Gb).value();
  request.seed = 44;
  auto other = (*client)->SubmitJob(request);
  if (!other.ok()) return 1;
  std::printf("bi-team submission landed on shard %u\n\n", other->shard);

  auto stats = (*client)->GetStats();
  if (!stats.ok()) return 1;
  std::printf("requests served: %llu\n",
              static_cast<unsigned long long>(stats->requests_served));
  for (const rpc::ShardStatsEntry& shard : stats->shards) {
    std::printf("shard %u [start '%s']: %llu profiles, %llu submissions\n",
                shard.shard, shard.start_key.c_str(),
                static_cast<unsigned long long>(shard.num_profiles),
                static_cast<unsigned long long>(shard.submissions));
  }

  (*server)->Stop();
  return 0;
}
