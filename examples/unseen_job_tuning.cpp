// Scenario: tuning a previously *unseen* job via profile reuse — the
// motivating example of the thesis (chapter 1).
//
// An NLP team has been running the bigram-relative-frequency job over the
// Wikipedia corpus for weeks; its profile sits in the store. A new analyst
// submits the word co-occurrence pairs job for the first time. PStorM
// recognizes (from a 1-map-task sample) that the new job behaves like the
// bigram job, hands the Starfish CBO the stored profile, and the very
// first run of the new job executes with near-optimal settings.
//
// Build & run:  cmake --build build && ./build/examples/unseen_job_tuning

#include <cstdio>

#include "common/strings.h"
#include "core/pstorm.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"

using namespace pstorm;

int main() {
  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;
  auto pstorm = core::PStorM::Create(&simulator, &env, "/profile-store");
  if (!pstorm.ok()) return 1;
  core::PStorM& system = **pstorm;

  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  const mrsim::Configuration default_config;

  std::printf("=== Tuning an unseen job from another job's profile ===\n\n");

  // Week 1: the bigram job runs (and is profiled) as part of normal
  // operations.
  auto seeding = system.SubmitJob(jobs::BigramRelativeFrequency(), data,
                                  default_config, 10);
  if (!seeding.ok()) return 1;
  std::printf("bigram-relative-frequency profiled and stored "
              "(runtime %s)\n\n",
              HumanDuration(seeding->runtime_s).c_str());

  // Week 2: the new analyst's job arrives. Never executed here before.
  const jobs::BenchmarkJob cooc = jobs::WordCooccurrencePairs(2);
  auto outcome = system.SubmitJob(cooc, data, default_config, 11);
  if (!outcome.ok()) return 1;

  // What the analyst would have suffered without PStorM:
  auto untuned = simulator.RunJob(cooc.spec, data, default_config);
  if (!untuned.ok()) return 1;

  std::printf("word-cooccurrence-pairs (first ever submission):\n");
  std::printf("  matched profile:   %s\n",
              outcome->matched ? outcome->profile_source.c_str() : "(none)");
  std::printf("  sampling cost:     %s\n",
              HumanDuration(outcome->sample_runtime_s).c_str());
  std::printf("  tuned runtime:     %s\n",
              HumanDuration(outcome->runtime_s).c_str());
  std::printf("  untuned runtime:   %s\n",
              HumanDuration(untuned->runtime_s).c_str());
  std::printf("  first-run speedup: %.2fx\n\n",
              untuned->runtime_s / outcome->runtime_s);

  if (!outcome->matched) {
    std::printf("unexpected: no match found\n");
    return 1;
  }
  std::printf(
      "The job was tuned before its first full execution — the overhead was\n"
      "one map slot for the sample, versus a complete profiled run.\n");
  return 0;
}
