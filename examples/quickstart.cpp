// Quickstart: the PStorM submission workflow end to end.
//
// A fresh cluster with an empty profile store receives the word-count job
// three times. The first submission finds no matching profile, runs with
// profiling on, and stores the collected profile. The second submission
// matches the stored profile, gets tuned by the CBO, and runs much faster.
// The third submission is a *different* job (inverted index): PStorM
// detects there is nothing usable and collects a new profile for it.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "common/strings.h"
#include "core/pstorm.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"

using namespace pstorm;

namespace {

void Report(const char* label, const core::PStorM::SubmissionOutcome& o) {
  std::printf("%s\n", label);
  std::printf("  matched:         %s\n", o.matched ? "yes" : "no");
  if (o.matched) {
    std::printf("  profile source:  %s%s\n", o.profile_source.c_str(),
                o.composite ? " (composite)" : "");
    std::printf("  tuned config:    %s\n", o.config_used.ToString().c_str());
  }
  std::printf("  sampling cost:   %s (one map task + reducers)\n",
              HumanDuration(o.sample_runtime_s).c_str());
  std::printf("  job runtime:     %s\n\n",
              HumanDuration(o.runtime_s).c_str());
}

}  // namespace

int main() {
  // The simulated 16-node Hadoop cluster of the thesis evaluation.
  const mrsim::Simulator simulator(mrsim::ThesisCluster());
  storage::InMemoryEnv env;

  auto pstorm = core::PStorM::Create(&simulator, &env, "/profile-store");
  if (!pstorm.ok()) {
    std::fprintf(stderr, "failed to start PStorM: %s\n",
                 pstorm.status().ToString().c_str());
    return 1;
  }
  core::PStorM& system = **pstorm;

  const jobs::BenchmarkJob word_count = jobs::WordCount();
  const jobs::BenchmarkJob inverted_index = jobs::InvertedIndex();
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  const mrsim::Configuration default_config;

  std::printf("=== PStorM quickstart (35GB Wikipedia, empty store) ===\n\n");

  auto first = system.SubmitJob(word_count, data, default_config, 1);
  if (!first.ok()) return 1;
  Report("[1] word-count, first submission (cold store):", *first);

  auto second = system.SubmitJob(word_count, data, default_config, 2);
  if (!second.ok()) return 1;
  Report("[2] word-count, second submission (profile reuse + CBO):",
         *second);

  auto third = system.SubmitJob(inverted_index, data, default_config, 3);
  if (!third.ok()) return 1;
  Report("[3] inverted-index, first submission:", *third);

  std::printf("store now holds %zu profiles\n", system.store().num_profiles());
  std::printf("speedup from tuning word-count: %.2fx\n",
              first->runtime_s / second->runtime_s);
  return 0;
}
