// Demonstrates the thesis's §7.2 future-work directions, implemented as
// extensions:
//   §7.2.1 user parameters in the static feature vector (sample-free
//          matching)
//   §7.2.2 call-flow-graph matching
//   §7.2.3/§7.2.6 cross-cluster profile transfer
//   §7.2.4 PerfXplain-style explanations enriched with static features
//   §7.2.5 tuning a dataflow program (the FIM 3-job chain) stage by stage

#include <cmath>

#include "common/strings.h"
#include "core/explain.h"
#include "core/matcher.h"
#include "core/profile_store.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/cbo.h"
#include "profiler/profiler.h"
#include "report.h"
#include "whatif/cluster_transfer.h"

using namespace pstorm;

namespace {

void SectionUserParams(const mrsim::Simulator& sim) {
  bench::PrintSubHeader(
      "7.2.1 - user parameters: sample-free static-only matching");
  const profiler::Profiler prof(&sim);
  storage::InMemoryEnv env;
  auto store = core::ProfileStore::Open(&env, "/fw-params").value();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  for (int window : {2, 4, 6}) {
    const auto job = jobs::WordCooccurrencePairs(window);
    auto profiled =
        prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, window);
    PSTORM_CHECK_OK(profiled.status());
    PSTORM_CHECK_OK(store->PutProfile(
        job.spec.name, profiled->profile,
        staticanalysis::ExtractStaticFeatures(job.program)));
  }
  core::MatchOptions options;
  options.static_only = true;
  options.include_user_parameters = true;
  core::MultiStageMatcher matcher(store.get(), options);
  int correct = 0;
  for (int window : {2, 4, 6}) {
    const auto job = jobs::WordCooccurrencePairs(window);
    // No sample run at all: the probe is built from an empty profile plus
    // the static features.
    profiler::ExecutionProfile no_sample;
    const auto probe = core::BuildFeatureVector(
        no_sample, staticanalysis::ExtractStaticFeatures(job.program));
    auto match = matcher.Match(probe);
    PSTORM_CHECK_OK(match.status());
    const bool ok = match->found && match->map_source == job.spec.name;
    correct += ok;
    std::printf("  window=%d -> %s %s\n", window,
                match->found ? match->map_source.c_str() : "(none)",
                ok ? "" : "(WRONG)");
  }
  std::printf("  %d/3 matched with zero sampling overhead\n", correct);
}

void SectionCrossCluster(const mrsim::Simulator& old_sim) {
  bench::PrintSubHeader(
      "7.2.3/7.2.6 - bootstrapping a new cluster from old profiles");
  mrsim::ClusterSpec new_cluster = mrsim::ThesisCluster();
  new_cluster.num_worker_nodes = 30;
  new_cluster.hdfs_read_ns_per_byte = 5.0;
  new_cluster.hdfs_write_ns_per_byte = 10.0;
  new_cluster.local_read_ns_per_byte = 3.0;
  new_cluster.local_write_ns_per_byte = 4.0;
  new_cluster.network_ns_per_byte = 6.0;
  new_cluster.cpu_cost_factor = 0.5;
  const mrsim::Simulator new_sim(new_cluster);
  const whatif::WhatIfEngine new_engine(new_cluster);

  const profiler::Profiler prof(&old_sim);
  const auto job = jobs::BigramRelativeFrequency();
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  auto profiled =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 3);
  PSTORM_CHECK_OK(profiled.status());

  auto tune_and_run = [&](const profiler::ExecutionProfile& profile) {
    optimizer::CostBasedOptimizer cbo(&new_engine);
    auto rec = cbo.Optimize(profile, data).value();
    return new_sim.RunJob(job.spec, data, rec.config).value().runtime_s;
  };
  const double untuned =
      new_sim.RunJob(job.spec, data, mrsim::Configuration{})
          .value()
          .runtime_s;
  const double raw_tuned = tune_and_run(profiled->profile);
  const auto adjusted = whatif::AdjustProfileForCluster(
      profiled->profile, old_sim.cluster(), new_cluster);
  const double adjusted_tuned = tune_and_run(adjusted);
  std::printf("  new cluster, default config:           %s\n",
              HumanDuration(untuned).c_str());
  std::printf("  tuned with RAW old-cluster profile:    %s (%.2fx)\n",
              HumanDuration(raw_tuned).c_str(), untuned / raw_tuned);
  std::printf("  tuned with ADJUSTED profile:           %s (%.2fx)\n",
              HumanDuration(adjusted_tuned).c_str(),
              untuned / adjusted_tuned);
}

void SectionChainTuning(const mrsim::Simulator& sim) {
  bench::PrintSubHeader(
      "7.2.5 - tuning a dataflow program: the FIM 3-job chain");
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const optimizer::CostBasedOptimizer cbo(&engine);

  const auto chain = jobs::FrequentItemsetMiningChain();
  mrsim::DataSetSpec stage_input =
      jobs::FindDataSet(jobs::kWebdocs).value();

  double total_default = 0, total_tuned = 0;
  for (size_t stage = 0; stage < chain.size(); ++stage) {
    const auto& job = chain[stage];
    auto default_run =
        sim.RunJob(job.spec, stage_input, mrsim::Configuration{});
    PSTORM_CHECK_OK(default_run.status());
    auto profiled = prof.ProfileFullRun(job.spec, stage_input,
                                        mrsim::Configuration{}, 40 + stage);
    PSTORM_CHECK_OK(profiled.status());
    auto rec = cbo.Optimize(profiled->profile, stage_input).value();
    auto tuned_run = sim.RunJob(job.spec, stage_input, rec.config);
    PSTORM_CHECK_OK(tuned_run.status());
    std::printf("  %-28s default %-9s tuned %-9s (%.2fx)\n",
                job.spec.name.c_str(),
                HumanDuration(default_run->runtime_s).c_str(),
                HumanDuration(tuned_run->runtime_s).c_str(),
                default_run->runtime_s / tuned_run->runtime_s);
    total_default += default_run->runtime_s;
    total_tuned += tuned_run->runtime_s;

    // The next stage consumes this stage's output.
    mrsim::DataSetSpec next = stage_input;
    next.name = job.spec.name + "-output";
    next.size_bytes = std::max<uint64_t>(
        1 << 20, static_cast<uint64_t>(tuned_run->total_output_bytes));
    next.avg_record_bytes = 60.0;
    stage_input = next;
  }
  std::printf("  chain total: default %s -> tuned %s (%.2fx end to end)\n",
              HumanDuration(total_default).c_str(),
              HumanDuration(total_tuned).c_str(),
              total_default / total_tuned);
}

void SectionExplain(const mrsim::Simulator& sim) {
  bench::PrintSubHeader(
      "7.2.4 - PerfXplain integration: explanations with static causes");
  const profiler::Profiler prof(&sim);
  const auto wc = jobs::WordCount();
  const auto cooc = jobs::WordCooccurrencePairs(2);
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  auto a = prof.ProfileFullRun(wc.spec, data, mrsim::Configuration{}, 7);
  auto b = prof.ProfileFullRun(cooc.spec, data, mrsim::Configuration{}, 8);
  PSTORM_CHECK_OK(a.status());
  PSTORM_CHECK_OK(b.status());
  const auto explanations = core::ExplainPerformanceDifference(
      a->profile, staticanalysis::ExtractStaticFeatures(wc.program),
      b->profile, staticanalysis::ExtractStaticFeatures(cooc.program));
  std::printf("%s",
              core::RenderExplanations("word-count",
                                       "word-cooccurrence-pairs",
                                       explanations)
                  .c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 7.2 future-work directions, implemented as extensions");
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  SectionUserParams(sim);
  SectionCrossCluster(sim);
  SectionChainTuning(sim);
  SectionExplain(sim);
  return 0;
}
