// Reproduces thesis Figure 4.1: the overhead of collecting a Starfish
// 10%-profile versus PStorM's 1-task sample, (a) as a fraction of the job
// runtime under the RBO-recommended configuration without profiling, and
// (b) in map slots consumed (57 vs 1 on the 571-split Wikipedia set).

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "optimizer/rbo.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Figure 4.1 - 10% profiling vs 1-task sampling (35GB Wikipedia)");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();

  const std::vector<jobs::BenchmarkJob> suite = {
      jobs::WordCount(), jobs::InvertedIndex(),
      jobs::BigramRelativeFrequency(), jobs::WordCooccurrencePairs(2),
      jobs::Grep(0.01)};

  bench::TablePrinter table({"Job", "RBO runtime", "10% overhead",
                             "1-task overhead", "10% slots",
                             "1-task slots"});
  std::vector<std::pair<std::string, double>> ten_pct_bars, one_task_bars;

  for (const jobs::BenchmarkJob& job : suite) {
    optimizer::RboHints hints;
    hints.expect_large_intermediate_data =
        job.spec.map.size_selectivity >= 1.0;
    hints.reduce_is_associative = job.spec.combine.defined;
    const auto rbo_config =
        optimizer::RuleBasedOptimizer().Recommend(sim.cluster(), hints);

    auto baseline = sim.RunJob(job.spec, data, rbo_config);
    if (!baseline.ok()) {
      std::printf("%s baseline failed: %s\n", job.spec.name.c_str(),
                  baseline.status().ToString().c_str());
      continue;
    }
    auto ten_pct = prof.ProfileSample(job.spec, data, rbo_config, 0.10, 5);
    auto one_task = prof.ProfileOneTask(job.spec, data, rbo_config, 5);
    if (!ten_pct.ok() || !one_task.ok()) continue;

    const double ten_pct_overhead =
        ten_pct->run.runtime_s / baseline->runtime_s;
    const double one_task_overhead =
        one_task->run.runtime_s / baseline->runtime_s;
    table.AddRow({job.spec.name, HumanDuration(baseline->runtime_s),
                  bench::Num(100.0 * ten_pct_overhead, 1) + "%",
                  bench::Num(100.0 * one_task_overhead, 1) + "%",
                  std::to_string(ten_pct->run.map_tasks.size()),
                  std::to_string(one_task->run.map_tasks.size())});
    ten_pct_bars.emplace_back(job.spec.name, 100.0 * ten_pct_overhead);
    one_task_bars.emplace_back(job.spec.name, 100.0 * one_task_overhead);
  }
  table.Print();
  bench::PrintBarChart("(a) 10% profiling overhead (% of RBO runtime)",
                       ten_pct_bars, "%");
  bench::PrintBarChart("(a) 1-task sampling overhead (% of RBO runtime)",
                       one_task_bars, "%");
  std::printf(
      "\n(b) Map slots consumed: 10%% profiling uses 57 of the cluster's 30\n"
      "concurrent slots (two waves); 1-task sampling uses exactly 1 slot,\n"
      "leaving cluster throughput untouched (thesis Figure 4.1(b)).\n");
  return 0;
}
