// Reproduces thesis Figure 6.1: matching accuracy of PStorM compared to
// the generic feature-selection alternatives (P-features and SP-features)
// in both store content states (SD: same job + same data stored; DD: only
// the profile twin on different data stored), reported separately for the
// map and reduce sides.

#include "core/evaluator.h"
#include "report.h"

int main() {
  using namespace pstorm;
  using core::BaselineFeatures;
  using core::StoreState;

  bench::PrintHeader("Figure 6.1 - Matching accuracy: PStorM vs P-features "
                     "vs SP-features");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto corpus = core::BuildEvaluationCorpus(sim, mrsim::Configuration{}, 11);
  if (!corpus.ok()) {
    std::printf("corpus failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("Profile corpus: %zu (job, data set) executions\n",
              corpus->items.size());
  storage::InMemoryEnv env;
  core::MatcherEvaluator evaluator(&env, std::move(corpus).value());

  struct Approach {
    const char* name;
    core::AccuracyReport sd;
    core::AccuracyReport dd;
  };
  std::vector<Approach> approaches;

  auto pstorm_sd = evaluator.EvaluatePStorM(StoreState::kSameData);
  auto pstorm_dd = evaluator.EvaluatePStorM(StoreState::kDifferentData);
  auto p_sd = evaluator.EvaluateBaseline(StoreState::kSameData,
                                         BaselineFeatures::kProfileOnly);
  auto p_dd = evaluator.EvaluateBaseline(StoreState::kDifferentData,
                                         BaselineFeatures::kProfileOnly);
  auto sp_sd = evaluator.EvaluateBaseline(
      StoreState::kSameData, BaselineFeatures::kStaticPlusProfile);
  auto sp_dd = evaluator.EvaluateBaseline(
      StoreState::kDifferentData, BaselineFeatures::kStaticPlusProfile);
  for (const auto* r : {&pstorm_sd, &pstorm_dd, &p_sd, &p_dd, &sp_sd,
                        &sp_dd}) {
    if (!r->ok()) {
      std::printf("evaluation failed: %s\n",
                  r->status().ToString().c_str());
      return 1;
    }
  }
  approaches.push_back({"PStorM", pstorm_sd.value(), pstorm_dd.value()});
  approaches.push_back({"P-features", p_sd.value(), p_dd.value()});
  approaches.push_back({"SP-features", sp_sd.value(), sp_dd.value()});

  bench::TablePrinter table({"Approach", "SD map", "SD reduce", "DD map",
                             "DD reduce"});
  for (const Approach& a : approaches) {
    table.AddRow({a.name, bench::Num(100 * a.sd.map_accuracy(), 1) + "%",
                  bench::Num(100 * a.sd.reduce_accuracy(), 1) + "%",
                  bench::Num(100 * a.dd.map_accuracy(), 1) + "%",
                  bench::Num(100 * a.dd.reduce_accuracy(), 1) + "%"});
  }
  table.Print();

  for (bool same_data : {true, false}) {
    std::vector<std::pair<std::string, double>> map_bars, reduce_bars;
    for (const Approach& a : approaches) {
      const core::AccuracyReport& r = same_data ? a.sd : a.dd;
      map_bars.emplace_back(a.name, 100 * r.map_accuracy());
      reduce_bars.emplace_back(a.name, 100 * r.reduce_accuracy());
    }
    const char* state = same_data ? "SD (same data)" : "DD (different data)";
    bench::PrintBarChart(std::string("Map-side accuracy, ") + state,
                         map_bars, "%");
    bench::PrintBarChart(std::string("Reduce-side accuracy, ") + state,
                         reduce_bars, "%");
  }
  std::printf(
      "\nThesis shape: PStorM ~100%% in SD and high in DD (the residual DD\n"
      "errors include the four profiles without twins); both generic\n"
      "feature-selection baselines fail for >35%% of submissions.\n");
  return 0;
}
