// Reproduces thesis Table 6.2: runtimes of four jobs on the 35GB Wikipedia
// data set under the default Hadoop configuration. Absolute numbers come
// from the simulator's calibration; the *ordering* (co-occurrence >>
// bigram >> inverted index >> word count) is the reproduction target.

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "mrsim/simulator.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Table 6.2 - Runtimes with the default Hadoop configuration "
      "(35GB Wikipedia)");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  const mrsim::Configuration default_config;

  struct PaperRow {
    jobs::BenchmarkJob job;
    double paper_minutes;
  };
  const std::vector<PaperRow> rows = {
      {jobs::WordCount(), 12},
      {jobs::WordCooccurrencePairs(2), 824},
      {jobs::InvertedIndex(), 100},
      {jobs::BigramRelativeFrequency(), 302},
  };

  bench::TablePrinter table({"Job", "Simulated runtime", "Simulated (min)",
                             "Thesis (min)"});
  for (const PaperRow& row : rows) {
    auto result = sim.RunJob(row.job.spec, data, default_config);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", row.job.spec.name.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({row.job.spec.name, HumanDuration(result->runtime_s),
                  bench::Num(result->runtime_s / 60.0, 0),
                  bench::Num(row.paper_minutes, 0)});
  }
  table.Print();
  std::printf(
      "\nShape check: word count is fastest; co-occurrence pairs is the\n"
      "slowest by a wide margin (its huge intermediate output funnels\n"
      "through the default single reducer); bigram sits in between.\n");
  return 0;
}
