#ifndef PSTORM_BENCH_REPORT_H_
#define PSTORM_BENCH_REPORT_H_

#include <string>
#include <vector>

namespace pstorm::bench {

/// Prints a boxed section header.
void PrintHeader(const std::string& title);

/// Prints a secondary header.
void PrintSubHeader(const std::string& title);

/// Simple aligned-column table printer for the table/figure benches.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar chart (the stand-in for the thesis's
/// figures). `max_width` is the bar length of the largest value.
void PrintBarChart(const std::string& title,
                   const std::vector<std::pair<std::string, double>>& bars,
                   const std::string& unit, int max_width = 50);

/// Formats a double with the given number of decimals.
std::string Num(double value, int decimals = 2);

}  // namespace pstorm::bench

#endif  // PSTORM_BENCH_REPORT_H_
