// Reproduces thesis Figure 4.6: the shuffle times of the word
// co-occurrence job differ strongly across input data set sizes — the
// rationale for the matcher's tie-breaking rule on input data size.

#include <algorithm>

#include "common/strings.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Figure 4.6 - Word co-occurrence shuffle times on different data "
      "sets");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const jobs::BenchmarkJob cooc = jobs::WordCooccurrencePairs(2);
  mrsim::Configuration config;
  config.num_reduce_tasks = 27;

  std::vector<std::pair<std::string, double>> shuffle_bars;
  bench::TablePrinter table({"Data set", "shuffle (s/task)", "sort (s/task)",
                             "reduce (s/task)", "shuffled bytes/task"});
  for (const char* data_name :
       {jobs::kRandomText1Gb, jobs::kWikipedia35Gb}) {
    const auto data = jobs::FindDataSet(data_name).value();
    auto profiled = prof.ProfileFullRun(cooc.spec, data, config, 9);
    if (!profiled.ok()) {
      std::printf("failed: %s\n", profiled.status().ToString().c_str());
      return 1;
    }
    const auto& r = profiled->profile.reduce_side;
    table.AddRow({data_name, bench::Num(r.shuffle_s), bench::Num(r.sort_s),
                  bench::Num(r.reduce_s),
                  HumanBytes(static_cast<uint64_t>(
                      r.input_bytes / std::max(1, r.num_tasks)))});
    shuffle_bars.emplace_back(data_name, r.shuffle_s);
  }
  table.Print();
  bench::PrintBarChart("Shuffle time per reduce task", shuffle_bars, "s");
  std::printf(
      "\nShape check: the same job on the larger data set shuffles far\n"
      "more per reducer, so its reduce profile is not interchangeable with\n"
      "the small-data profile -> tie-break on input size (thesis p. 32).\n");
  return 0;
}
