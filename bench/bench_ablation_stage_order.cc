// Ablations of the matcher design decisions the thesis argues for:
//  (1) stage order: the dynamic filter runs before the static filters
//      (Section 4.3 / 7.2.1) — reversing it must not help, and it loses
//      the parameter-sensitivity property;
//  (2) the cost-factor fallback filter: disabling it kills matching for
//      previously unseen jobs;
//  (3) user-parameter sensitivity: the same co-occurrence code at
//      different window sizes must match the right window's profile.

#include "core/evaluator.h"
#include "jobs/datasets.h"
#include "report.h"

int main() {
  using namespace pstorm;
  using core::MatchOptions;
  using core::StoreState;

  bench::PrintHeader("Ablation - matcher design decisions");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  auto corpus = core::BuildEvaluationCorpus(sim, mrsim::Configuration{}, 31);
  if (!corpus.ok()) {
    std::printf("corpus failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  storage::InMemoryEnv env;
  core::MatcherEvaluator evaluator(&env, std::move(corpus).value());

  bench::PrintSubHeader("(1) Stage order + (2) cost-factor fallback");
  bench::TablePrinter table({"Variant", "SD map", "SD reduce", "DD map",
                             "DD reduce"});
  struct Variant {
    const char* name;
    MatchOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"dynamic-first (thesis)", MatchOptions{}});
  {
    MatchOptions o;
    o.static_filters_first = true;
    variants.push_back({"static-first (ablation)", o});
  }
  {
    MatchOptions o;
    o.use_cost_factor_fallback = false;
    variants.push_back({"no cost fallback", o});
  }
  for (const Variant& v : variants) {
    auto sd = evaluator.EvaluatePStorM(StoreState::kSameData, v.options);
    auto dd = evaluator.EvaluatePStorM(StoreState::kDifferentData,
                                       v.options);
    if (!sd.ok() || !dd.ok()) {
      std::printf("%s failed\n", v.name);
      continue;
    }
    table.AddRow({v.name, bench::Num(100 * sd->map_accuracy(), 1) + "%",
                  bench::Num(100 * sd->reduce_accuracy(), 1) + "%",
                  bench::Num(100 * dd->map_accuracy(), 1) + "%",
                  bench::Num(100 * dd->reduce_accuracy(), 1) + "%"});
  }
  table.Print();

  bench::PrintSubHeader(
      "(3) User-parameter sensitivity (Section 7.2.1): co-occurrence "
      "windows");
  const profiler::Profiler prof(&sim);
  auto store = core::ProfileStore::Open(&env, "/window-store").value();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  for (int window : {2, 4, 6}) {
    const auto job = jobs::WordCooccurrencePairs(window);
    auto profiled =
        prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, window);
    PSTORM_CHECK_OK(profiled.status());
    PSTORM_CHECK_OK(store->PutProfile(
        job.spec.name, profiled->profile,
        staticanalysis::ExtractStaticFeatures(job.program)));
  }
  bench::TablePrinter window_table({"Submitted window", "Matched profile",
                                    "Correct?"});
  int correct = 0;
  for (int window : {2, 4, 6}) {
    const auto job = jobs::WordCooccurrencePairs(window);
    auto sample = prof.ProfileOneTask(job.spec, data, mrsim::Configuration{},
                                      100 + window);
    PSTORM_CHECK_OK(sample.status());
    const auto probe = core::BuildFeatureVector(
        sample->profile, staticanalysis::ExtractStaticFeatures(job.program));
    core::MultiStageMatcher matcher(store.get());
    auto match = matcher.Match(probe);
    PSTORM_CHECK_OK(match.status());
    const bool ok = match->found && match->map_source == job.spec.name;
    correct += ok ? 1 : 0;
    window_table.AddRow({std::to_string(window),
                         match->found ? match->map_source : "(none)",
                         ok ? "yes" : "NO"});
  }
  window_table.Print();
  std::printf(
      "\nAll static features tie across windows (same code!); only the\n"
      "dynamic-first stage order separates them: %d/3 matched correctly.\n",
      correct);
  return 0;
}
