// Reproduces thesis Figure 6.3: end-to-end speedups over the default
// Hadoop configuration for four jobs on the 35GB Wikipedia data set, tuned
// by the RBO and by the Starfish CBO fed with PStorM profiles under the
// three store content states:
//   SD - the job's own complete profile (same data) is stored
//   DD - only the job's profile on the *other* data set is stored
//   NJ - no profile of the job exists: PStorM must return a composite /
//        behaviourally-similar profile.

#include "common/strings.h"
#include "core/evaluator.h"
#include "jobs/datasets.h"
#include "core/matcher.h"
#include "core/pstorm.h"
#include "optimizer/rbo.h"
#include "report.h"

namespace {

using namespace pstorm;

struct BenchContext {
  const mrsim::Simulator* sim;
  const whatif::WhatIfEngine* engine;
  core::ProfileStore* store;
  const core::Corpus* corpus;
};

/// PStorM flow for one submission under the current store contents:
/// 1-task sample -> match -> CBO -> simulated run. Returns the runtime
/// (falls back to the default-config runtime when no match is found).
double PStormTunedRuntime(const BenchContext& ctx,
                          const core::CorpusItem& item,
                          std::string* source) {
  profiler::Profiler prof(ctx.sim);
  auto sample = prof.ProfileOneTask(item.entry.job.spec, item.data,
                                    mrsim::Configuration{}, 23);
  if (!sample.ok()) return -1;
  const core::JobFeatureVector probe =
      core::BuildFeatureVector(sample->profile, item.statics);
  core::MultiStageMatcher matcher(ctx.store);
  auto match = matcher.Match(probe);
  if (!match.ok()) return -1;
  if (!match->found) {
    *source = "(no match: ran untuned)";
    auto run = ctx.sim->RunJob(item.entry.job.spec, item.data,
                               mrsim::Configuration{});
    return run.ok() ? run->runtime_s : -1;
  }
  *source = match->composite
                ? match->map_source + "+" + match->reduce_source
                : match->map_source;
  optimizer::CostBasedOptimizer cbo(ctx.engine);
  auto rec = cbo.Optimize(match->profile, item.data);
  if (!rec.ok()) return -1;
  auto run = ctx.sim->RunJob(item.entry.job.spec, item.data, rec->config);
  return run.ok() ? run->runtime_s : -1;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 6.3 - Speedups of different MR jobs with different "
      "configuration settings (35GB Wikipedia)");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const whatif::WhatIfEngine engine(sim.cluster());
  auto corpus = core::BuildEvaluationCorpus(sim, mrsim::Configuration{}, 19);
  if (!corpus.ok()) {
    std::printf("corpus failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  storage::InMemoryEnv env;
  core::MatcherEvaluator evaluator(&env, corpus.value());
  auto store = evaluator.BuildFullStore("/fig63-store");
  if (!store.ok()) {
    std::printf("store failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  BenchContext ctx{&sim, &engine, store->get(), &corpus.value()};

  const std::vector<std::string> target_jobs = {
      "word-count", "word-cooccurrence-pairs-w2", "inverted-index",
      "bigram-relative-frequency"};

  bench::TablePrinter table({"Job", "default", "RBO", "PStorM SD",
                             "PStorM DD", "PStorM NJ"});
  std::vector<std::vector<std::pair<std::string, double>>> charts;

  for (const std::string& job_name : target_jobs) {
    // Locate the corpus item for this job on Wikipedia.
    const core::CorpusItem* item = nullptr;
    for (const auto& candidate : ctx.corpus->items) {
      if (candidate.entry.job.spec.name == job_name &&
          candidate.entry.data_set == jobs::kWikipedia35Gb) {
        item = &candidate;
      }
    }
    if (item == nullptr) continue;
    const int twin_index = -1;  // Resolved below via job-name scan.

    auto default_run =
        sim.RunJob(item->entry.job.spec, item->data, mrsim::Configuration{});
    if (!default_run.ok()) continue;
    const double baseline = default_run->runtime_s;

    // RBO.
    optimizer::RboHints hints;
    hints.expect_large_intermediate_data =
        item->entry.job.spec.map.size_selectivity >= 1.0;
    hints.reduce_is_associative = item->entry.job.spec.combine.defined;
    const auto rbo_config =
        optimizer::RuleBasedOptimizer().Recommend(sim.cluster(), hints);
    auto rbo_run = sim.RunJob(item->entry.job.spec, item->data, rbo_config);
    const double rbo_speedup =
        rbo_run.ok() ? baseline / rbo_run->runtime_s : 0;

    std::string source_sd, source_dd, source_nj;

    // SD: the store holds everything.
    const double sd_runtime = PStormTunedRuntime(ctx, *item, &source_sd);

    // DD: remove this (job, data set)'s own profile.
    (void)twin_index;
    PSTORM_CHECK_OK(ctx.store->DeleteProfile(item->job_key));
    const double dd_runtime = PStormTunedRuntime(ctx, *item, &source_dd);

    // NJ: additionally remove the twin — no profile of this job at all.
    std::string twin_key;
    for (const auto& candidate : ctx.corpus->items) {
      if (candidate.entry.job.spec.name == job_name &&
          candidate.job_key != item->job_key) {
        twin_key = candidate.job_key;
      }
    }
    if (!twin_key.empty()) {
      PSTORM_CHECK_OK(ctx.store->DeleteProfile(twin_key));
    }
    const double nj_runtime = PStormTunedRuntime(ctx, *item, &source_nj);

    // Restore the store for the next job.
    for (const auto& candidate : ctx.corpus->items) {
      if (candidate.entry.job.spec.name == job_name) {
        PSTORM_CHECK_OK(ctx.store->PutProfile(
            candidate.job_key, candidate.complete, candidate.statics));
      }
    }

    auto speedup = [baseline](double runtime) {
      return runtime > 0 ? baseline / runtime : 0.0;
    };
    table.AddRow({job_name, HumanDuration(baseline),
                  bench::Num(rbo_speedup, 2) + "x",
                  bench::Num(speedup(sd_runtime), 2) + "x",
                  bench::Num(speedup(dd_runtime), 2) + "x",
                  bench::Num(speedup(nj_runtime), 2) + "x"});
    charts.push_back({{"RBO", rbo_speedup},
                      {"PStorM SD", speedup(sd_runtime)},
                      {"PStorM DD", speedup(dd_runtime)},
                      {"PStorM NJ", speedup(nj_runtime)}});
    std::printf("%s profile sources: SD=%s DD=%s NJ=%s\n", job_name.c_str(),
                source_sd.c_str(), source_dd.c_str(), source_nj.c_str());
    bench::PrintBarChart("Speedup over default: " + job_name, charts.back(),
                         "x");
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nThesis shape: PStorM beats the RBO everywhere; DD and NJ speedups\n"
      "stay close to SD; inverted index barely improves (defaults suit it);\n"
      "co-occurrence pairs reaches the largest speedup (~9x in the "
      "thesis).\n");
  return 0;
}
