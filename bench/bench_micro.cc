// Google-benchmark micro-benchmarks of the performance-critical pieces:
// the storage engine, the hstore scan path, CFG extraction/matching, the
// task models, the what-if engine, and end-to-end profile matching.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/matcher.h"
#include "core/profile_store.h"
#include "core/pstorm.h"
#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "mrsim/cluster.h"
#include "mrsim/simulator.h"
#include "obs/metrics.h"
#include "optimizer/cbo.h"
#include "profiler/profiler.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/shard_router.h"
#include "staticanalysis/cfg_matcher.h"
#include "storage/block_cache.h"
#include "storage/db.h"
#include "storage/replication.h"
#include "storage/wal.h"
#include "tools/synthetic_corpus.h"
#include "whatif/whatif_engine.h"

namespace {

using namespace pstorm;

// ---------------------------------------------------------------- storage

void BM_StorageDbPut(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto db = storage::Db::Open(&env, "/bm-db").value();
  int i = 0;
  std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Put("key" + std::to_string(i++), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorageDbPut);

// The headline number of the background-maintenance work: per-Put latency
// while the store is continuously flushing and compacting. Arg(0) runs
// maintenance inline (a Put periodically pays a whole flush or L0→L1
// compaction under writer_mu_); Arg(1) runs it on a background pool, so a
// Put pays only the WAL append + memtable insert (+ an occasional memtable
// swap), and the worst-case latency drops from O(compaction) to
// O(memtable append). Compare the two rows' max/stddev, not just means.
void BM_PutDuringCompaction(benchmark::State& state) {
  const bool background = state.range(0) != 0;
  storage::InMemoryEnv env;
  common::ThreadPool pool(2);
  storage::DbOptions options;
  options.memtable_flush_bytes = 16u << 10;  // Constant churn.
  options.l0_compaction_trigger = 4;
  options.maintenance_pool = background ? &pool : nullptr;
  auto db = storage::Db::Open(&env, "/bm-db-compact", options).value();
  int i = 0;
  const std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Put("key" + std::to_string(i++ % 4096), value));
  }
  PSTORM_CHECK_OK(db->WaitForIdle());
  state.SetItemsProcessed(state.iterations());
  state.counters["flushes"] =
      static_cast<double>(db->stats().flushes);
  state.counters["stalls"] =
      static_cast<double>(db->stats().write_stalls);
}
BENCHMARK(BM_PutDuringCompaction)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"background"});

void BM_StorageDbGet(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto db = storage::Db::Open(&env, "/bm-db").value();
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    PSTORM_CHECK_OK(db->Put("key" + std::to_string(i), std::string(128, 'v')));
  }
  PSTORM_CHECK_OK(db->Flush());
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i++ % n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorageDbGet)->Arg(1000)->Arg(10000);

void BM_StorageDbScan(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto db = storage::Db::Open(&env, "/bm-db").value();
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    PSTORM_CHECK_OK(db->Put("key" + std::to_string(i), std::string(64, 'v')));
  }
  PSTORM_CHECK_OK(db->CompactAll());
  for (auto _ : state) {
    size_t count = 0;
    auto it = db->NewIterator();
    for (it->SeekToFirst(); it->Valid(); it->Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StorageDbScan)->Arg(10000);

// The snapshot-isolated read path under contention: every benchmark
// thread hammers Get against one shared Db. Readers pin an immutable
// Version and search it lock-free, so the Threads(8)/Threads(1)
// items-per-second ratio is the headline scaling number of the
// concurrent-serving work (flat on a 1-core container; near-linear on
// real CI hardware).
void BM_DbGetParallel(benchmark::State& state) {
  static storage::InMemoryEnv* env = nullptr;
  static storage::Db* db = nullptr;
  constexpr int kKeys = 10000;
  if (state.thread_index() == 0 && db == nullptr) {
    env = new storage::InMemoryEnv();
    db = storage::Db::Open(env, "/bm-db-parallel").value().release();
    for (int i = 0; i < kKeys; ++i) {
      PSTORM_CHECK_OK(
          db->Put("key" + std::to_string(i), std::string(128, 'v')));
    }
    PSTORM_CHECK_OK(db->CompactAll());
  }
  int i = state.thread_index() * 7919;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i++ % kKeys)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGetParallel)->Threads(1)->Threads(8)->UseRealTime();

// The WAL append is the new cost on every Put (one frame encode + one
// appending write): this is the price of crash durability per mutation.
void BM_WalAppend(benchmark::State& state) {
  storage::InMemoryEnv env;
  storage::WalWriter wal(&env, "/bm-wal");
  int i = 0;
  const std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.AppendPut("key" + std::to_string(i++), value));
    if (i % 4096 == 0) {
      state.PauseTiming();
      PSTORM_CHECK_OK(wal.Truncate());  // Keep the log from ballooning.
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

// The price of per-block compression without the block cache: every Get
// re-extracts, decompresses, and re-parses its data block. This is the
// denominator of the cache's headline number — compare with BM_DbGetHot.
void BM_DbGetCold(benchmark::State& state) {
  storage::InMemoryEnv env;
  storage::DbOptions options;
  options.block_cache_bytes = 0;  // No cache: decode on every read.
  auto db = storage::Db::Open(&env, "/bm-db-cold", options).value();
  constexpr int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    PSTORM_CHECK_OK(db->Put("key" + std::to_string(i), std::string(128, 'v')));
  }
  PSTORM_CHECK_OK(db->CompactAll());
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i++ % kKeys)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGetCold);

// The same working set with the sharded block cache holding every decoded
// block: a Get is a cache hit plus an in-block binary search, skipping the
// decompress+parse entirely. The BM_DbGetCold / BM_DbGetHot cpu-time ratio
// is the headline number of the block-cache work (target ≥5x).
void BM_DbGetHot(benchmark::State& state) {
  storage::InMemoryEnv env;
  storage::DbOptions options;  // Default 4 MiB cache fits the working set.
  auto db = storage::Db::Open(&env, "/bm-db-hot", options).value();
  constexpr int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    PSTORM_CHECK_OK(db->Put("key" + std::to_string(i), std::string(128, 'v')));
  }
  PSTORM_CHECK_OK(db->CompactAll());
  for (int i = 0; i < kKeys; ++i) {  // Warm every block into the cache.
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i)));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("key" + std::to_string(i++ % kKeys)));
  }
  state.SetItemsProcessed(state.iterations());
  const storage::BlockCache::Stats cache = db->block_cache()->GetStats();
  state.counters["cache_hit_rate"] =
      static_cast<double>(cache.hits) /
      static_cast<double>(cache.hits + cache.misses);
}
BENCHMARK(BM_DbGetHot);

// An Env whose appends cost what a real fsync costs. The InMemoryEnv
// appends in nanoseconds, which makes group commit pointless (there is
// nothing to amortize); a ~20us sync is the cheap end of real hardware
// and lets the coalescing show up in records_per_sync and items/s. The
// sleep burns real time, not cpu time, so the cpu-time perf gate is not
// measuring the simulated latency.
class SyncLatencyEnv final : public storage::Env {
 public:
  explicit SyncLatencyEnv(storage::Env* target) : target_(target) {}
  Status CreateDir(const std::string& path) override {
    return target_->CreateDir(path);
  }
  bool FileExists(const std::string& path) const override {
    return target_->FileExists(path);
  }
  Status WriteFile(const std::string& path, const std::string& data) override {
    return target_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, const std::string& data) override {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    return target_->AppendFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) const override {
    return target_->ReadFile(path);
  }
  Status DeleteFile(const std::string& path) override {
    return target_->DeleteFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return target_->RenameFile(from, to);
  }
  Result<std::vector<std::string>> ListDir(
      const std::string& dir) const override {
    return target_->ListDir(dir);
  }

 private:
  storage::Env* target_;
};

// Group commit under write contention: eight threads hammer Put against
// one Db, and the leader/follower handoff folds the queued records into
// shared WAL syncs. records_per_sync > 1 is the proof the coalescing
// engages; the counter is the acceptance check (syncs < appends).
void BM_GroupCommit(benchmark::State& state) {
  static storage::InMemoryEnv* base_env = nullptr;
  static SyncLatencyEnv* env = nullptr;
  static storage::Db* db = nullptr;
  if (state.thread_index() == 0 && db == nullptr) {
    base_env = new storage::InMemoryEnv();
    env = new SyncLatencyEnv(base_env);
    storage::DbOptions options;
    options.memtable_flush_bytes = 64u << 20;  // Keep flushes off the path.
    db = storage::Db::Open(env, "/bm-db-group", options).value().release();
  }
  int i = state.thread_index() * 7919;
  const std::string value(128, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Put("key" + std::to_string(i++ % 4096), value));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const storage::DbStats stats = db->stats();
    state.counters["wal_appends"] = static_cast<double>(stats.wal_appends);
    state.counters["wal_syncs"] = static_cast<double>(stats.wal_syncs);
    state.counters["records_per_sync"] =
        static_cast<double>(stats.wal_appends) /
        static_cast<double>(std::max<uint64_t>(stats.wal_syncs, 1));
  }
}
BENCHMARK(BM_GroupCommit)->Threads(8)->UseRealTime();

// Recovery cost: reopening a Db whose last run "crashed" with range(0)
// unflushed records in the log — the WAL replay path end to end.
void BM_DbReopenAfterCrash(benchmark::State& state) {
  storage::InMemoryEnv env;
  const int n = static_cast<int>(state.range(0));
  storage::DbOptions options;
  options.memtable_flush_bytes = 64u << 20;  // No auto-flush: all WAL.
  {
    auto db = storage::Db::Open(&env, "/bm-db", options).value();
    for (int i = 0; i < n; ++i) {
      PSTORM_CHECK_OK(db->Put("key" + std::to_string(i), std::string(128, 'v')));
    }
    // Dropped without a flush: the records survive only in the WAL.
  }
  for (auto _ : state) {
    auto db = storage::Db::Open(&env, "/bm-db", options);
    PSTORM_CHECK_OK(db.status());
    PSTORM_CHECK(db.value()->stats().wal_records_replayed ==
                 static_cast<uint64_t>(n));
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DbReopenAfterCrash)->Arg(1000)->Arg(10000);

// Steady-state WAL shipping: the per-record cost of moving a committed
// batch from the primary's log onto a warm follower (fetch + CRC verify +
// sequence check + replicated apply). This is the tax a standby adds per
// committed write in async mode.
void BM_WalShip(benchmark::State& state) {
  storage::InMemoryEnv env;
  storage::DbOptions primary_options;
  primary_options.memtable_flush_bytes = 64u << 20;
  auto primary =
      storage::Db::Open(&env, "/bm-primary", primary_options).value();
  storage::ReplicaSession::Options options;
  options.follower_db.memtable_flush_bytes = 64u << 20;
  auto session =
      storage::ReplicaSession::Open(primary.get(), &env, "/bm-follower",
                                    options)
          .value();
  int i = 0;
  int rounds = 0;
  const std::string value(128, 'v');
  constexpr int kBatch = 64;
  for (auto _ : state) {
    state.PauseTiming();
    if (++rounds % 16 == 0) {
      // Keep the primary's log short so each fetch reads the delta, not an
      // ever-growing file. Flushing before the round's puts only truncates
      // records the follower already has, so shipping stays incremental —
      // no checkpoint demand.
      PSTORM_CHECK_OK(primary->Flush());
    }
    for (int j = 0; j < kBatch; ++j) {
      PSTORM_CHECK_OK(primary->Put("key" + std::to_string(i++ % 4096), value));
    }
    state.ResumeTiming();
    PSTORM_CHECK_OK(session->CatchUp());
  }
  PSTORM_CHECK(session->lag() == 0);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_WalShip);

// Cold-standby bootstrap: a brand-new follower joining a primary with
// range(0) committed records and catching all the way up (checkpoint or
// WAL replay, then delta shipping). This bounds the recovery-time side of
// failover: how fast a replacement standby becomes promotable.
void BM_ReplicaCatchup(benchmark::State& state) {
  storage::InMemoryEnv env;
  const int n = static_cast<int>(state.range(0));
  storage::DbOptions options;
  options.memtable_flush_bytes = 64u << 20;  // Keep the history in the WAL.
  auto primary = storage::Db::Open(&env, "/bm-primary", options).value();
  for (int i = 0; i < n; ++i) {
    PSTORM_CHECK_OK(primary->Put("key" + std::to_string(i), std::string(128, 'v')));
  }
  storage::ReplicaSession::Options session_options;
  session_options.follower_db.memtable_flush_bytes = 64u << 20;
  int round = 0;
  for (auto _ : state) {
    // A fresh follower directory per round: each open pays the full join.
    auto session = storage::ReplicaSession::Open(
        primary.get(), &env, "/bm-follower-" + std::to_string(round++),
        session_options);
    PSTORM_CHECK_OK(session.status());
    PSTORM_CHECK_OK((*session)->CatchUp());
    PSTORM_CHECK((*session)->lag() == 0);
    benchmark::DoNotOptimize(session);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReplicaCatchup)->Arg(1000)->Arg(10000);

// ----------------------------------------------------------- static analysis

void BM_CfgBuild(benchmark::State& state) {
  const auto program = jobs::WordCooccurrencePairs(2).program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(staticanalysis::BuildCfg(program.map_function));
  }
}
BENCHMARK(BM_CfgBuild);

void BM_CfgMatch(benchmark::State& state) {
  const auto a = staticanalysis::BuildCfg(
      jobs::WordCooccurrencePairs(2).program.map_function);
  const auto b = staticanalysis::BuildCfg(
      jobs::BigramRelativeFrequency().program.map_function);
  for (auto _ : state) {
    benchmark::DoNotOptimize(staticanalysis::MatchCfgs(a, a));
    benchmark::DoNotOptimize(staticanalysis::MatchCfgs(a, b));
  }
}
BENCHMARK(BM_CfgMatch);

// ----------------------------------------------------------------- simulator

void BM_SimulatorRunJob(benchmark::State& state) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  mrsim::Configuration config;
  config.num_reduce_tasks = 27;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunJob(job.spec, data, config));
  }
}
BENCHMARK(BM_SimulatorRunJob);

void BM_WhatIfPredict(benchmark::State& state) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  const auto profile =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1)
          .value()
          .profile;
  mrsim::Configuration config;
  config.num_reduce_tasks = 27;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Predict(profile, data, config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhatIfPredict);

// ---------------------------------------------------------------- optimizer

// The parallel CBO search: Arg is the thread count, so the Arg(4)/Arg(1)
// real-time ratio is the headline speedup of the shared-thread-pool work.
void BM_CboOptimize(benchmark::State& state) {
  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const whatif::WhatIfEngine engine(sim.cluster());
  const auto job = jobs::WordCooccurrencePairs(2);
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  const auto profile =
      prof.ProfileFullRun(job.spec, data, mrsim::Configuration{}, 1)
          .value()
          .profile;
  optimizer::CostBasedOptimizer::Options options;
  options.num_threads = static_cast<int>(state.range(0));
  const optimizer::CostBasedOptimizer cbo(&engine, options);
  int evaluated = 0;
  for (auto _ : state) {
    auto rec = cbo.Optimize(profile, data);
    PSTORM_CHECK_OK(rec.status());
    evaluated = rec->candidates_evaluated;
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations() * evaluated);
}
BENCHMARK(BM_CboOptimize)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------------- matching

class MatcherFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (store_ != nullptr) return;
    env_ = std::make_unique<storage::InMemoryEnv>();
    sim_ = std::make_unique<mrsim::Simulator>(mrsim::ThesisCluster());
    profiler_ = std::make_unique<profiler::Profiler>(sim_.get());
    store_ = core::ProfileStore::Open(env_.get(), "/bm-store").value();

    // Populate with replicated workload profiles to reach `range(0)` rows.
    const auto workload = jobs::Table61Workload();
    const size_t target = static_cast<size_t>(state.range(0));
    size_t added = 0, round = 0;
    while (added < target) {
      for (const auto& entry : workload) {
        if (added >= target) break;
        const auto data = jobs::FindDataSet(entry.data_set).value();
        auto profiled = profiler_->ProfileFullRun(
            entry.job.spec, data, mrsim::Configuration{}, added + 1);
        PSTORM_CHECK_OK(profiled.status());
        PSTORM_CHECK_OK(store_->PutProfile(
            entry.job.spec.name + "@" + entry.data_set + "#" +
                std::to_string(round),
            profiled->profile,
            staticanalysis::ExtractStaticFeatures(entry.job.program)));
        ++added;
      }
      ++round;
    }

    const auto job = jobs::WordCount();
    const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
    auto sample =
        profiler_->ProfileOneTask(job.spec, data, mrsim::Configuration{}, 7);
    PSTORM_CHECK_OK(sample.status());
    probe_ = core::BuildFeatureVector(
        sample->profile,
        staticanalysis::ExtractStaticFeatures(job.program));
  }

  void TearDown(const benchmark::State&) override {}

  std::unique_ptr<storage::InMemoryEnv> env_;
  std::unique_ptr<mrsim::Simulator> sim_;
  std::unique_ptr<profiler::Profiler> profiler_;
  std::unique_ptr<core::ProfileStore> store_;
  core::JobFeatureVector probe_;
};

BENCHMARK_DEFINE_F(MatcherFixture, BM_MatchProfile)
(benchmark::State& state) {
  core::MultiStageMatcher matcher(store_.get());
  for (auto _ : state) {
    auto match = matcher.Match(probe_);
    PSTORM_CHECK_OK(match.status());
    benchmark::DoNotOptimize(match);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_REGISTER_F(MatcherFixture, BM_MatchProfile)
    ->Arg(54)
    ->Arg(216)
    ->Unit(benchmark::kMillisecond);

// Tie-break over every stored profile: with the decoded-entry cache this
// is pure scoring after the first iteration instead of one payload
// deserialization (+ two CFG parses) per candidate per call.
BENCHMARK_DEFINE_F(MatcherFixture, BM_MatcherTieBreak)
(benchmark::State& state) {
  core::MultiStageMatcher matcher(store_.get());
  const auto candidates = store_->ListJobKeys().value();
  for (auto _ : state) {
    auto key = matcher.TieBreak(core::Side::kMap, candidates,
                                probe_.map_categorical, probe_.map_dynamic,
                                probe_.input_data_bytes);
    PSTORM_CHECK_OK(key.status());
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK_REGISTER_F(MatcherFixture, BM_MatcherTieBreak)
    ->Arg(54)
    ->Arg(216)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------- indexed matching at scale

// One synthetic store per corpus size, shared across benchmark variants
// (loading 10^4+ profiles dwarfs any single measurement). Deliberately
// leaked: google-benchmark may outlive static destructors' ordering.
struct ScaleStore {
  storage::InMemoryEnv env;
  std::unique_ptr<tools::SyntheticCorpus> corpus;
  std::unique_ptr<core::ProfileStore> store;
  std::vector<core::JobFeatureVector> probes;
};

ScaleStore& GetScaleStore(size_t n) {
  static auto* cache = new std::map<size_t, ScaleStore*>();
  auto it = cache->find(n);
  if (it != cache->end()) return *it->second;
  auto* s = new ScaleStore();
  tools::SyntheticCorpusOptions corpus_options;
  corpus_options.num_profiles = n;
  s->corpus = std::make_unique<tools::SyntheticCorpus>(corpus_options);
  core::ProfileStoreOptions options;
  options.eager_flush = false;
  s->store = core::ProfileStore::Open(&s->env, "/bm-scale", options).value();
  PSTORM_CHECK_OK(s->corpus->LoadInto(s->store.get(), 0));
  for (size_t q = 0; q < 16; ++q) {
    const auto probe = s->corpus->MakeProbe((q * 131) % n);
    s->probes.push_back(core::BuildFeatureVector(probe.profile,
                                                 probe.statics));
  }
  (*cache)[n] = s;
  return *s;
}

// The stage-1 funnel at corpus scale, indexed vs exhaustive. The probe
// radius is a selective 10% of the thesis default — a probe near its own
// archetype cluster, the regime the index exists for (at the full default
// radius on this corpus the true stage-1 answer is most of the store, and
// no candidate pruning is possible). The funnel_identity counter is the
// accuracy check: over every probe, the indexed funnel's best match and
// candidate counts equal the exhaustive funnel's exactly — by
// construction the index is a pushdown, not an approximation, so accuracy
// is identical (not merely within noise) at every store size.
void BM_MatcherFunnelAtScale(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool indexed = state.range(1) != 0;
  ScaleStore& s = GetScaleStore(n);
  core::MatchOptions options;
  options.use_index = indexed;
  options.theta_euclidean_override = 0.1;
  core::MultiStageMatcher matcher(s.store.get(), options);

  double identity = 1.0;
  {
    core::MatchOptions exhaustive_options = options;
    exhaustive_options.use_index = false;
    core::MultiStageMatcher exhaustive(s.store.get(), exhaustive_options);
    for (const auto& probe : s.probes) {
      const auto a = matcher.Match(probe);
      const auto b = exhaustive.Match(probe);
      PSTORM_CHECK_OK(a.status());
      PSTORM_CHECK_OK(b.status());
      if (a->found != b->found || a->map_source != b->map_source ||
          a->reduce_source != b->reduce_source) {
        identity = 0.0;
      }
    }
  }

  size_t q = 0;
  for (auto _ : state) {
    auto match = matcher.Match(s.probes[q++ % s.probes.size()]);
    PSTORM_CHECK_OK(match.status());
    benchmark::DoNotOptimize(match);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["funnel_identity"] = identity;
}
BENCHMARK(BM_MatcherFunnelAtScale)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->ArgNames({"profiles", "indexed"})
    ->Unit(benchmark::kMillisecond);

// Steady-state PutProfile throughput with and without incremental index
// maintenance: the indexed:1/indexed:0 delta is the per-put price of
// keeping the secondary index current (cell hashing + four SoA appends).
void BM_IndexedPut(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  storage::InMemoryEnv env;
  core::ProfileStoreOptions options;
  options.eager_flush = false;
  options.enable_match_index = indexed;
  auto store = core::ProfileStore::Open(&env, "/bm-put", options).value();
  tools::SyntheticCorpusOptions corpus_options;
  corpus_options.num_profiles = 4000000;  // Key space, not preloaded rows.
  const tools::SyntheticCorpus corpus(corpus_options);
  size_t i = 0;
  for (auto _ : state) {
    const auto p = corpus.Make(i++);
    PSTORM_CHECK_OK(store->PutProfile(p.job_key, p.profile, p.statics));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPut)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"indexed"})
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------- end to end

// Whole submissions through the reentrant PStorM::SubmitJob from N
// threads at once against a pre-warmed store: sample run, matcher probe,
// CBO, tuned run — the full serving path under contention. Matched
// submissions leave the store untouched, so every thread exercises the
// concurrent read path.
void BM_ConcurrentSubmit(benchmark::State& state) {
  static mrsim::Simulator* sim = nullptr;
  static storage::InMemoryEnv* env = nullptr;
  static core::PStorM* system = nullptr;
  if (state.thread_index() == 0 && system == nullptr) {
    sim = new mrsim::Simulator(mrsim::ThesisCluster());
    env = new storage::InMemoryEnv();
    core::PStormOptions options;
    options.cbo.global_samples = 60;  // Keep one submission quick.
    options.cbo.local_samples = 20;
    options.cbo.refinement_rounds = 1;
    // Serve like production: store maintenance on the shared pool, off
    // the submission path.
    options.store.table.db_options.maintenance_pool = common::ThreadPool::Shared();
    system = core::PStorM::Create(sim, env, "/bm-submit", options)
                 .value()
                 .release();
    const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
    auto cold = system->SubmitJob(jobs::WordCount(), data,
                                  mrsim::Configuration{}, 1);
    PSTORM_CHECK_OK(cold.status());
    PSTORM_CHECK(cold->stored_new_profile);
  }
  const auto job = jobs::WordCount();
  const auto data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  uint64_t seed = 100 + state.thread_index() * 1000003;
  for (auto _ : state) {
    auto outcome = system->SubmitJob(job, data, mrsim::Configuration{},
                                     ++seed);
    PSTORM_CHECK_OK(outcome.status());
    PSTORM_CHECK(outcome->matched);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentSubmit)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- rpc

// One live server (epoll reactor + workers) per process, shared across
// both RPC benchmarks; the client speaks real TCP over loopback. Echo is
// the wire floor — framing, checksum, reactor hop, worker hop, response
// flush — with no PStorM work behind it.
struct RpcBenchServer {
  mrsim::Simulator simulator{mrsim::ThesisCluster()};
  storage::InMemoryEnv env;
  std::unique_ptr<rpc::ShardRouter> router;
  std::unique_ptr<rpc::Server> server;

  RpcBenchServer() {
    router = rpc::ShardRouter::Create(&simulator, &env, "/bm-rpc", {})
                 .value();
    server = rpc::Server::Start(router.get()).value();
    // Warm word-count so BM_RpcSubmitJob measures matched serving, the
    // same path BM_ConcurrentSubmit measures in-process.
    auto client = rpc::Client::Connect("127.0.0.1", server->port()).value();
    rpc::SubmitJobRequest request;
    request.tenant = "bench";
    request.job_name = "word-count";
    request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
    request.seed = 1;
    auto cold = client->SubmitJob(request);
    PSTORM_CHECK_OK(cold.status());
    PSTORM_CHECK(cold->stored_new_profile);
  }

  static RpcBenchServer& Get() {
    static RpcBenchServer instance;
    return instance;
  }
};

void BM_RpcEcho(benchmark::State& state) {
  RpcBenchServer& shared = RpcBenchServer::Get();
  auto client =
      rpc::Client::Connect("127.0.0.1", shared.server->port()).value();
  const std::string payload(128, 'x');
  for (auto _ : state) {
    auto echoed = client->Echo(payload);
    PSTORM_CHECK_OK(echoed.status());
    benchmark::DoNotOptimize(echoed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcEcho)->Unit(benchmark::kMicrosecond);

// A full matched submission over the wire: BM_ConcurrentSubmit plus the
// serialization round trip and the reactor/worker handoff. The spread
// between this and BM_ConcurrentSubmit/threads:1 is the RPC tax.
void BM_RpcSubmitJob(benchmark::State& state) {
  RpcBenchServer& shared = RpcBenchServer::Get();
  auto client =
      rpc::Client::Connect("127.0.0.1", shared.server->port()).value();
  rpc::SubmitJobRequest request;
  request.tenant = "bench";
  request.job_name = "word-count";
  request.data = jobs::FindDataSet(jobs::kRandomText1Gb).value();
  uint64_t seed = 100 + state.thread_index() * 1000003;
  for (auto _ : state) {
    request.seed = ++seed;
    auto outcome = client->SubmitJob(request);
    PSTORM_CHECK_OK(outcome.status());
    PSTORM_CHECK(outcome->matched);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcSubmitJob)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), plus: when $PSTORM_METRICS_DUMP names a file, the
// process-wide metrics accumulated across all benchmarks are written there
// on exit. CI's smoke job runs a filtered benchmark pass and then asserts
// known-hot counters are nonzero in that dump — a regression test for the
// instrumentation itself (a refactor that silently stops incrementing a
// counter shows up as a zero).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("PSTORM_METRICS_DUMP");
      path != nullptr && path[0] != '\0') {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics dump to %s\n", path);
      return 1;
    }
    const std::string dump = pstorm::obs::MetricsRegistry::Global().Dump();
    std::fwrite(dump.data(), 1, dump.size(), f);
    std::fclose(f);
  }
  return 0;
}
