// Reproduces thesis Figure 4.5: the word co-occurrence pairs job and the
// bigram relative frequency job have relatively similar phase times when
// executed on the same 35GB Wikipedia data — the basis for reusing the
// bigram profile to tune co-occurrence (Figure 1.3).

#include <cmath>

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Figure 4.5 - Phase-time similarity: co-occurrence pairs vs bigram "
      "relative frequency (35GB Wikipedia)");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  mrsim::Configuration config;
  config.num_reduce_tasks = 27;  // Same tuned setting for both jobs.

  struct Row {
    std::string name;
    profiler::ExecutionProfile profile;
  };
  std::vector<Row> rows;
  for (const jobs::BenchmarkJob& job :
       {jobs::WordCooccurrencePairs(2), jobs::BigramRelativeFrequency()}) {
    auto profiled = prof.ProfileFullRun(job.spec, data, config, 7);
    if (!profiled.ok()) {
      std::printf("%s failed: %s\n", job.spec.name.c_str(),
                  profiled.status().ToString().c_str());
      return 1;
    }
    rows.push_back({job.spec.name, profiled->profile});
  }

  bench::TablePrinter table({"Phase", rows[0].name, rows[1].name,
                             "relative gap"});
  auto add = [&](const char* phase, double a, double b) {
    const double gap = a + b > 0 ? std::fabs(a - b) / (0.5 * (a + b)) : 0.0;
    table.AddRow({phase, bench::Num(a), bench::Num(b),
                  bench::Num(100.0 * gap, 1) + "%"});
  };
  const auto& m0 = rows[0].profile.map_side;
  const auto& m1 = rows[1].profile.map_side;
  add("map: read (s)", m0.read_s, m1.read_s);
  add("map: map (s)", m0.map_s, m1.map_s);
  add("map: collect (s)", m0.collect_s, m1.collect_s);
  add("map: spill (s)", m0.spill_s, m1.spill_s);
  add("map: merge (s)", m0.merge_s, m1.merge_s);
  const auto& r0 = rows[0].profile.reduce_side;
  const auto& r1 = rows[1].profile.reduce_side;
  add("reduce: shuffle (s)", r0.shuffle_s, r1.shuffle_s);
  add("reduce: sort (s)", r0.sort_s, r1.sort_s);
  add("reduce: reduce (s)", r0.reduce_s, r1.reduce_s);
  add("reduce: write (s)", r0.write_s, r1.write_s);
  table.Print();

  bench::PrintSubHeader("Data-flow statistics (Table 4.1) side by side");
  bench::TablePrinter dyn({"Feature", rows[0].name, rows[1].name});
  const auto names = profiler::DynamicFeatureNames();
  const auto v0 = rows[0].profile.DynamicVector();
  const auto v1 = rows[1].profile.DynamicVector();
  for (size_t i = 0; i < names.size(); ++i) {
    dyn.AddRow({names[i], bench::Num(v0[i], 3), bench::Num(v1[i], 3)});
  }
  dyn.Print();
  return 0;
}
