// Reproduces thesis Figure 4.3: the map-phase time breakdowns of the Word
// Count and Word Co-occurrence jobs differ because their map functions
// behave differently — the behaviour the CFG captures statically.

#include "jobs/benchmark_jobs.h"
#include "jobs/datasets.h"
#include "profiler/profiler.h"
#include "report.h"

int main() {
  using namespace pstorm;

  bench::PrintHeader(
      "Figure 4.3 - Map-phase times of Word Count vs Word Co-occurrence "
      "(35GB Wikipedia)");

  const mrsim::Simulator sim(mrsim::ThesisCluster());
  const profiler::Profiler prof(&sim);
  const auto data = jobs::FindDataSet(jobs::kWikipedia35Gb).value();
  mrsim::Configuration config;  // Default Hadoop configuration.

  bench::TablePrinter table({"Job", "read (s)", "map (s)", "collect (s)",
                             "spill (s)", "merge (s)", "total/task (s)"});
  for (const jobs::BenchmarkJob& job :
       {jobs::WordCount(), jobs::WordCooccurrencePairs(2)}) {
    auto profiled = prof.ProfileFullRun(job.spec, data, config, 42);
    if (!profiled.ok()) {
      std::printf("%s failed: %s\n", job.spec.name.c_str(),
                  profiled.status().ToString().c_str());
      return 1;
    }
    const profiler::MapSideProfile& m = profiled->profile.map_side;
    table.AddRow({job.spec.name, bench::Num(m.read_s), bench::Num(m.map_s),
                  bench::Num(m.collect_s), bench::Num(m.spill_s),
                  bench::Num(m.merge_s),
                  bench::Num(m.read_s + m.map_s + m.collect_s + m.spill_s +
                             m.merge_s)});

    bench::PrintBarChart(job.spec.name + " map phases",
                         {{"read", m.read_s},
                          {"map", m.map_s},
                          {"collect", m.collect_s},
                          {"spill", m.spill_s},
                          {"merge", m.merge_s}},
                         "s");
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nShape check: the co-occurrence map phase is dominated by the much\n"
      "larger intermediate output (collect/spill/merge), per the thesis.\n");
  return 0;
}
