#include "report.h"

#include <algorithm>
#include <cstdio>

namespace pstorm::bench {

void PrintHeader(const std::string& title) {
  const std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n| %s |\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void PrintSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  print_row(columns_);
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("%s\n", rule.c_str());
}

void PrintBarChart(const std::string& title,
                   const std::vector<std::pair<std::string, double>>& bars,
                   const std::string& unit, int max_width) {
  PrintSubHeader(title);
  size_t label_width = 0;
  double max_value = 0;
  for (const auto& [label, value] : bars) {
    label_width = std::max(label_width, label.size());
    max_value = std::max(max_value, value);
  }
  if (max_value <= 0) max_value = 1;
  for (const auto& [label, value] : bars) {
    const int width = static_cast<int>(value / max_value * max_width + 0.5);
    std::printf("  %-*s | %s %.2f %s\n", static_cast<int>(label_width),
                label.c_str(), std::string(std::max(width, 0), '#').c_str(),
                value, unit.c_str());
  }
}

std::string Num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace pstorm::bench
